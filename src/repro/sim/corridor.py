"""Arterial corridor simulation: vehicles traversing many lights.

The city driver (:mod:`repro.sim.engine`) simulates approaches
independently — enough for per-light identification, but real taxis
traverse *sequences* of intersections, which is what makes corridor
analyses (green-wave progression, §IX-adjacent applications) and
multi-segment trace statistics possible.

This module chains single-approach simulations along a one-way
arterial: the vehicles exiting light *i* become, in order, the arrivals
of approach *i+1* (FIFO is preserved because the lane model forbids
overtaking).  Each vehicle keeps its identity across the whole journey,
so the trace generator can emit one continuous taxi trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, as_rng, check_positive
from ..lights.intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
)
from ..network.geometry import LocalFrame
from ..network.roadnet import Intersection, RoadNetwork, Segment
from .arrivals import PoissonArrivals
from .queueing import ApproachConfig, SignalizedApproachSim
from .vehicle import VehicleParams, VehicleTrack

__all__ = ["CorridorSpec", "CorridorResult", "build_corridor", "simulate_corridor"]


@dataclass(frozen=True)
class _FixedArrivals:
    """Arrival process replaying explicit times (the upstream exits)."""

    times: Tuple[float, ...]

    def sample(self, t0: float, t1: float, rng=None) -> np.ndarray:
        t = np.asarray(self.times, dtype=float)
        return np.sort(t[(t >= t0) & (t < t1)])

    def mean_rate(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self.sample(t0, t1).size / ((t1 - t0) / 3600.0)


@dataclass(frozen=True)
class CorridorSpec:
    """Parameters of a one-way signalized arterial.

    Parameters
    ----------
    n_lights:
        Number of signalized intersections along the corridor.
    segment_length_m:
        Length of each approach.
    entry_rate_per_hour:
        Poisson demand entering at the upstream end.
    cycle_s, red_s:
        Shared signal timing (coordinated arterials share a cycle).
    offsets_s:
        Per-light red-start offsets.  ``None`` builds a green wave: each
        light's schedule lags its upstream neighbour by the free-flow
        travel time.
    params:
        Driver population.
    """

    n_lights: int = 5
    segment_length_m: float = 500.0
    entry_rate_per_hour: float = 400.0
    cycle_s: float = 100.0
    red_s: float = 45.0
    offsets_s: Optional[Tuple[float, ...]] = None
    params: VehicleParams = field(default_factory=VehicleParams)

    def __post_init__(self) -> None:
        if self.n_lights < 1:
            raise ValueError("n_lights must be >= 1")
        check_positive("segment_length_m", self.segment_length_m)
        check_positive("cycle_s", self.cycle_s)
        if not 0 < self.red_s < self.cycle_s:
            raise ValueError("red_s must lie strictly inside the cycle")
        if self.offsets_s is not None and len(self.offsets_s) != self.n_lights:
            raise ValueError(
                f"offsets_s needs {self.n_lights} entries, got {len(self.offsets_s)}"
            )

    def green_wave_offsets(self) -> Tuple[float, ...]:
        """Offsets giving perfect progression at the free-flow speed."""
        tt = self.segment_length_m / self.params.free_speed_mps
        return tuple(i * tt for i in range(self.n_lights))

    def resolved_offsets(self) -> Tuple[float, ...]:
        return self.offsets_s if self.offsets_s is not None else self.green_wave_offsets()


@dataclass
class CorridorResult:
    """Output of :func:`simulate_corridor`.

    Attributes
    ----------
    net, signals, plans:
        The corridor's network and ground truth.
    journeys:
        One entry per vehicle: its ordered per-segment tracks, all
        carrying the same ``vehicle_id``.
    """

    net: RoadNetwork
    signals: Dict[int, IntersectionSignals]
    plans: Dict[int, List[SignalPlan]]
    journeys: List[List[VehicleTrack]]

    def tracks_by_segment(self) -> Dict[int, List[VehicleTrack]]:
        """Regroup journey legs per segment (engine-compatible view)."""
        out: Dict[int, List[VehicleTrack]] = {}
        for legs in self.journeys:
            for tr in legs:
                out.setdefault(tr.segment_id, []).append(tr)
        for lst in out.values():
            lst.sort(key=lambda tr: tr.entered_at)
        return out

    def corridor_travel_times(self) -> np.ndarray:
        """End-to-end travel time of every completed journey."""
        out = []
        for legs in self.journeys:
            if len(legs) == self.n_complete_legs():
                out.append(legs[-1].exited_at - legs[0].entered_at)
        return np.asarray(out)

    def n_complete_legs(self) -> int:
        return max((len(legs) for legs in self.journeys), default=0)


def build_corridor(
    spec: CorridorSpec, frame: Optional[LocalFrame] = None
) -> Tuple[RoadNetwork, Dict[int, List[SignalPlan]]]:
    """A west→east arterial: N signalized nodes plus entry/exit feeders.

    Intersection ids ``0..N-1`` are the lights (west to east); segment
    ``i`` is the eastbound approach into light ``i``.
    """
    L = spec.segment_length_m
    intersections: List[Intersection] = [
        Intersection(id=i, x=(i + 1) * L, y=0.0, signalized=True, name=f"L{i}")
        for i in range(spec.n_lights)
    ]
    entry = Intersection(
        id=spec.n_lights, x=0.0, y=0.0, signalized=False, name="entry"
    )
    exit_node = Intersection(
        id=spec.n_lights + 1, x=(spec.n_lights + 1) * L, y=0.0,
        signalized=False, name="exit",
    )
    intersections += [entry, exit_node]

    segments: List[Segment] = []
    prev = entry
    for i in range(spec.n_lights):
        node = intersections[i]
        segments.append(
            Segment(
                id=i, from_id=prev.id, to_id=node.id,
                ax=prev.x, ay=prev.y, bx=node.x, by=node.y,
                name=f"approach L{i}",
            )
        )
        prev = node
    segments.append(
        Segment(
            id=spec.n_lights, from_id=prev.id, to_id=exit_node.id,
            ax=prev.x, ay=prev.y, bx=exit_node.x, by=exit_node.y,
            name="exit leg",
        )
    )
    net = RoadNetwork(intersections, segments, frame=frame or LocalFrame())

    offsets = spec.resolved_offsets()
    plans = {
        i: [SignalPlan(spec.cycle_s, spec.cycle_s - spec.red_s, offsets[i])]
        for i in range(spec.n_lights)
    }
    # Eastbound approaches are EW segments; SignalPlan's ns_red is the
    # NS group's red, so the EW group (our corridor) sees `spec.red_s`.
    return net, plans


def simulate_corridor(
    spec: CorridorSpec,
    t0: float,
    t1: float,
    *,
    seed: RngLike = 0,
    config: Optional[ApproachConfig] = None,
) -> CorridorResult:
    """Simulate the corridor over ``[t0, t1)``.

    Vehicles enter at the west end and traverse every light in order;
    the journey list preserves vehicle identity across segments.
    """
    rng = as_rng(seed)
    net, plans = build_corridor(spec)
    signals = attach_signals_to_network(net, plans)
    base_cfg = config or ApproachConfig(segment_length_m=spec.segment_length_m)
    cfg = ApproachConfig(
        segment_length_m=min(base_cfg.segment_length_m, spec.segment_length_m),
        taxi_fraction=1.0,            # journey-level taxi-ness is decided later
        dwell_probability=base_cfg.dwell_probability,
        dwell_duration_range_s=base_cfg.dwell_duration_range_s,
        record_all_vehicles=True,
        params=spec.params,
    )

    arrivals = PoissonArrivals(spec.entry_rate_per_hour)
    journeys: List[List[VehicleTrack]] = []
    # maps the current approach's track index -> journey index
    track_to_journey: List[int] = []
    upstream_exits: Optional[List[float]] = None

    for i in range(spec.n_lights):
        seg = net.segments[i]
        controller = signals[i].controller_for_segment(seg)
        proc = (
            arrivals if upstream_exits is None
            else _FixedArrivals(tuple(upstream_exits))
        )
        sim = SignalizedApproachSim(controller, proc, cfg, segment_id=i)
        tracks = sim.run(t0, t1, rng=rng)  # sorted by entry time

        if i == 0:
            journeys = [[tr] for tr in tracks]
            track_to_journey = list(range(len(tracks)))
        else:
            # arrival order == spawn order == entry order (FIFO lane),
            # so this approach's j-th track extends the journey that
            # produced the j-th upstream exit
            for j, tr in enumerate(tracks):
                journeys[track_to_journey[j]].append(tr)

        # completers, in exit order, feed the next approach
        completed = [
            (k, tr) for k, tr in enumerate(tracks)
            if tr.dist_to_stopline_m[-1] <= 0.5 and tr.exited_at < t1 - 1.0
        ]
        completed.sort(key=lambda kt: kt[1].exited_at)
        upstream_exits = [tr.exited_at for _, tr in completed]
        track_to_journey = [track_to_journey[k] for k, _ in completed]

    return CorridorResult(net=net, signals=signals, plans=plans, journeys=journeys)
