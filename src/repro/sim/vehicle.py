"""Vehicle state and recorded tracks for the microsimulator.

The simulator's unit of output is a :class:`VehicleTrack`: the exact
1 Hz motion of one (taxi) vehicle along one approach segment.  The taxi
fleet layer later *samples* these tracks at each taxi's low reporting
frequency and adds GPS noise — reproducing the paper's raw-trace
properties from ground-truth motion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .._util import RngLike, as_rng, check_nonnegative, check_positive

__all__ = ["DwellPlan", "VehicleParams", "VehicleTrack"]


@dataclass(frozen=True)
class VehicleParams:
    """Driver/vehicle population parameters (single lane, FIFO).

    Defaults produce urban-arterial behaviour consistent with the
    paper's Fig. 2: free speeds around 40 km/h, ≈ 2 s discharge
    headways, 7 m jam spacing.
    """

    free_speed_mps: float = 11.0       # ~40 km/h mean desired speed
    free_speed_sd: float = 2.0         # desired-speed spread across drivers
    min_speed_mps: float = 4.0         # floor for sampled desired speed
    accel_mps2: float = 2.0            # max acceleration
    jam_gap_m: float = 7.0             # bumper-to-bumper spacing in queue

    def __post_init__(self) -> None:
        check_positive("free_speed_mps", self.free_speed_mps)
        check_nonnegative("free_speed_sd", self.free_speed_sd)
        check_positive("min_speed_mps", self.min_speed_mps)
        check_positive("accel_mps2", self.accel_mps2)
        check_positive("jam_gap_m", self.jam_gap_m)

    def sample_desired_speed(self, rng: RngLike = None) -> float:
        """Draw one driver's desired speed (truncated normal)."""
        rng = as_rng(rng)
        return float(max(self.min_speed_mps, rng.normal(self.free_speed_mps, self.free_speed_sd)))


@dataclass(frozen=True)
class DwellPlan:
    """A scheduled passenger pick-up/drop-off stop for a taxi.

    The taxi halts when it first reaches ``at_distance_m`` from the stop
    line, stays for ``duration_s``, and its passenger flag flips when
    the dwell ends.  These curbside stops are the main error source the
    paper's red-duration filters (§VI.A) must reject.
    """

    at_distance_m: float
    duration_s: float

    def __post_init__(self) -> None:
        check_nonnegative("at_distance_m", self.at_distance_m)
        check_positive("duration_s", self.duration_s)


@dataclass
class VehicleTrack:
    """Recorded 1 Hz motion of one vehicle on one approach segment.

    Attributes
    ----------
    vehicle_id:
        Unique id within the simulation run.
    segment_id:
        The directed segment travelled.
    t:
        Absolute times, seconds, strictly increasing at 1 s steps.
    dist_to_stopline_m:
        Distance remaining to the downstream stop line (≥ 0,
        non-increasing except for float fuzz).
    speed_mps:
        Instantaneous speed.
    passenger:
        Occupancy flag per step (Table I field 11).
    is_taxi:
        Whether this vehicle reports GPS (only taxis reach the trace
        generator; ambient cars still shape the queues).
    """

    vehicle_id: int
    segment_id: int
    t: np.ndarray
    dist_to_stopline_m: np.ndarray
    speed_mps: np.ndarray
    passenger: np.ndarray
    is_taxi: bool = True

    def __post_init__(self) -> None:
        n = len(self.t)
        for name in ("dist_to_stopline_m", "speed_mps", "passenger"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length != t length")

    def __len__(self) -> int:
        return len(self.t)

    @property
    def entered_at(self) -> float:
        """First recorded second."""
        return float(self.t[0])

    @property
    def exited_at(self) -> float:
        """Last recorded second (stop-line crossing, if completed)."""
        return float(self.t[-1])

    def stopped_mask(self, speed_eps: float = 0.15) -> np.ndarray:
        """Boolean mask of seconds where the vehicle is (nearly) still."""
        return self.speed_mps <= speed_eps

    def stop_intervals(self, speed_eps: float = 0.15) -> List[Tuple[float, float]]:
        """Maximal ``(start, end)`` stillness intervals, in seconds.

        ``end`` is the last still second, so duration = ``end - start``.
        """
        mask = self.stopped_mask(speed_eps)
        if not mask.any():
            return []
        edges = np.flatnonzero(np.diff(mask.astype(np.int8)))
        starts = [0] if mask[0] else []
        starts += [int(i) + 1 for i in edges if not mask[i] and mask[i + 1]]
        ends = [int(i) for i in edges if mask[i] and not mask[i + 1]]
        if mask[-1]:
            ends.append(len(mask) - 1)
        return [(float(self.t[s]), float(self.t[e])) for s, e in zip(starts, ends)]
