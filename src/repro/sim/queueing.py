"""Single-approach signalized queue simulation.

This is the kernel of the trace substrate: one directed road segment
feeding one traffic light, simulated at 1 s resolution with a FIFO
single-lane car-following model.  It produces exactly the phenomena the
paper's algorithms key on:

* vehicles stack up behind the stop line while the light is red and the
  queue discharges with ≈ 2 s headways on green — so "longest stop
  duration ≈ red duration" (§VI.A) holds;
* mean approach speed oscillates with the signal period — the
  periodicity the DFT step (§V) extracts;
* taxis additionally make curbside passenger stops (dwells) that
  corrupt the stop-duration statistics the way the paper describes.

The model is deliberately *per-approach*: the paper partitions all data
by nearest traffic light and processes lights independently, so no
cross-intersection coupling is needed to exercise its pipeline.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .._util import RngLike, as_rng, check_in_range, check_positive
from ..lights.controller import AdaptiveController, DemandSignal, LightController
from .arrivals import PoissonArrivals
from .vehicle import DwellPlan, VehicleParams, VehicleTrack

__all__ = ["ApproachConfig", "ApproachDemandRecorder", "SignalizedApproachSim"]


class ApproachDemandRecorder:
    """Per-approach demand log — the live feedback source for adaptive
    controllers.

    The sim appends one queue sample per step and one entry per admitted
    vehicle; :meth:`signal` summarizes a half-open window ``[t0, t1)``
    as the :class:`DemandSignal` an adaptive controller consumes.  The
    controller only ever asks about windows strictly before the cycle it
    is deciding, and the sim records step ``t`` before any query needs
    it, so the feedback loop stays causal.
    """

    def __init__(self) -> None:
        self._step_t: List[float] = []
        self._queue: List[int] = []
        self._arrival_t: List[float] = []

    def record_step(self, t: float, queue_len: int) -> None:
        """Record the queue length observed at step ``t`` (appended in
        time order by the sim loop)."""
        self._step_t.append(t)
        self._queue.append(queue_len)

    def record_arrival(self, t: float) -> None:
        """Record one vehicle admitted to the segment at ``t``."""
        self._arrival_t.append(t)

    def signal(self, t0: float, t1: float) -> DemandSignal:
        """Demand over ``[t0, t1)``: peak queue length and mean arrival
        headway (``inf`` with fewer than two arrivals)."""
        lo = bisect_left(self._step_t, t0)
        hi = bisect_left(self._step_t, t1)
        queue = float(max(self._queue[lo:hi], default=0))
        a_lo = bisect_left(self._arrival_t, t0)
        a_hi = bisect_left(self._arrival_t, t1)
        arrivals = self._arrival_t[a_lo:a_hi]
        if len(arrivals) >= 2:
            headway = max((arrivals[-1] - arrivals[0]) / (len(arrivals) - 1), 1e-6)
        else:
            headway = math.inf
        return DemandSignal(queue_len=queue, headway_s=headway)


@dataclass(frozen=True)
class ApproachConfig:
    """Configuration of one simulated approach.

    Parameters
    ----------
    segment_length_m:
        Distance from segment entry to the stop line.
    taxi_fraction:
        Share of vehicles that are GPS-reporting taxis (the rest are
        ambient cars that shape queues but emit no records).
    dwell_probability:
        Probability that a taxi makes one passenger stop on this
        segment.
    dwell_duration_range_s:
        Uniform range of dwell lengths.
    record_all_vehicles:
        Keep tracks for ambient cars too (tests use this; the trace
        generator does not).
    """

    segment_length_m: float = 400.0
    taxi_fraction: float = 0.85
    dwell_probability: float = 0.08
    dwell_duration_range_s: Tuple[float, float] = (15.0, 90.0)
    record_all_vehicles: bool = False
    params: VehicleParams = field(default_factory=VehicleParams)

    def __post_init__(self) -> None:
        check_positive("segment_length_m", self.segment_length_m)
        check_in_range("taxi_fraction", self.taxi_fraction, 0.0, 1.0)
        check_in_range("dwell_probability", self.dwell_probability, 0.0, 1.0)
        lo, hi = self.dwell_duration_range_s
        if not (0 < lo <= hi):
            raise ValueError("dwell_duration_range_s must satisfy 0 < lo <= hi")


class _Active:
    """Mutable state of one vehicle currently on the segment."""

    __slots__ = (
        "vid", "pos", "speed", "desired", "passenger", "is_taxi",
        "dwell", "dwell_until", "dwell_done",
        "ts", "xs", "vs", "ps",
    )

    def __init__(self, vid: int, pos: float, desired: float, passenger: bool,
                 is_taxi: bool, dwell: Optional[DwellPlan]) -> None:
        self.vid = vid
        self.pos = pos
        self.speed = desired
        self.desired = desired
        self.passenger = passenger
        self.is_taxi = is_taxi
        self.dwell = dwell
        self.dwell_until = -np.inf
        self.dwell_done = dwell is None
        self.ts: List[float] = []
        self.xs: List[float] = []
        self.vs: List[float] = []
        self.ps: List[bool] = []


class SignalizedApproachSim:
    """Simulate one approach over a time window.

    Parameters
    ----------
    controller:
        The light controller governing this approach's stop line.
    arrivals:
        Arrival process (e.g. :class:`PoissonArrivals`).
    config:
        Approach configuration.
    segment_id:
        Id stamped on emitted tracks.
    """

    DT = 1.0  # simulation step, seconds

    def __init__(
        self,
        controller: LightController,
        arrivals,
        config: Optional[ApproachConfig] = None,
        segment_id: int = 0,
    ) -> None:
        self.controller = controller
        self.arrivals = arrivals
        self.config = ApproachConfig() if config is None else config
        self.segment_id = segment_id
        #: Live demand log of the most recent :meth:`run`; only set when
        #: the controller is adaptive and asked for feedback.
        self.demand_recorder: Optional[ApproachDemandRecorder] = None

    # ------------------------------------------------------------------
    def _spawn(self, vid: int, rng: np.random.Generator) -> _Active:
        cfg = self.config
        is_taxi = bool(rng.uniform() < cfg.taxi_fraction)
        dwell: Optional[DwellPlan] = None
        if is_taxi and rng.uniform() < cfg.dwell_probability:
            lo, hi = cfg.dwell_duration_range_s
            dwell = DwellPlan(
                at_distance_m=float(rng.uniform(0.0, cfg.segment_length_m)),
                duration_s=float(rng.uniform(lo, hi)),
            )
        return _Active(
            vid=vid,
            pos=cfg.segment_length_m,
            desired=cfg.params.sample_desired_speed(rng),
            passenger=bool(rng.uniform() < 0.5),
            is_taxi=is_taxi,
            dwell=dwell,
        )

    def run(self, t0: float, t1: float, rng: RngLike = None) -> List[VehicleTrack]:
        """Simulate ``[t0, t1)`` and return completed + in-flight tracks.

        Only taxi tracks are returned unless
        ``config.record_all_vehicles`` is set.
        """
        if t1 <= t0:
            raise ValueError("t1 must be greater than t0")
        rng = as_rng(rng)
        cfg = self.config
        p = cfg.params
        dt = self.DT

        arrival_times = self.arrivals.sample(t0, t1, rng)
        next_arrival = 0
        active: List[_Active] = []   # FIFO: index 0 is closest to stop line
        finished: List[_Active] = []
        vid_counter = 0

        # Adaptive controllers that need live feedback get this run's
        # demand recorder bound (re-anchored at t0, restarting their
        # realized timeline for this run); a recorder left over from a
        # previous run is stale and gets replaced the same way.
        recorder: Optional[ApproachDemandRecorder] = None
        if isinstance(self.controller, AdaptiveController) and (
            self.controller.needs_feedback or self.controller.sim_bound
        ):
            recorder = ApproachDemandRecorder()
            self.controller.bind_sim_demand(recorder.signal, anchor_t=t0)
        self.demand_recorder = recorder

        n_steps = int(np.ceil((t1 - t0) / dt))
        for step in range(n_steps):
            t = t0 + step * dt
            # -- spawn vehicles whose arrival time has come and whose
            #    entry is not blocked by queue spillback.
            while next_arrival < len(arrival_times) and arrival_times[next_arrival] <= t:
                entry_clear = (not active) or (
                    active[-1].pos < cfg.segment_length_m - p.jam_gap_m
                )
                if not entry_clear:
                    break  # spillback: retry next second
                if recorder is not None:
                    recorder.record_arrival(float(arrival_times[next_arrival]))
                veh = self._spawn(vid_counter, rng)
                vid_counter += 1
                active.append(veh)
                next_arrival += 1

            if not active:
                if recorder is not None:
                    recorder.record_step(t, 0)
                continue

            red = self.controller.is_red(t)

            # Dwelling taxis pull over to the curb, so traffic passes
            # them (urban roads are multi-lane); order by position so
            # the leader constraint matches the physical lane order
            # after a dweller rejoins behind vehicles that passed it.
            active.sort(key=lambda veh: veh.pos)

            # -- movement: front-to-back with leader constraint
            prev_new_pos: Optional[float] = None
            exited: List[int] = []
            for i, veh in enumerate(active):
                if t < veh.dwell_until:
                    # parked at curbside: not part of the lane queue
                    veh.speed = 0.0
                    veh.ts.append(t)
                    veh.xs.append(max(veh.pos, 0.0))
                    veh.vs.append(0.0)
                    veh.ps.append(veh.passenger)
                    continue
                if not veh.dwell_done and t >= veh.dwell_until > -np.inf:
                    # dwell just completed: toggle occupancy, rejoin lane
                    veh.passenger = not veh.passenger
                    veh.dwell_done = True
                v_target = min(veh.speed + p.accel_mps2 * dt, veh.desired)
                new_pos = veh.pos - v_target * dt
                if red:
                    new_pos = max(new_pos, 0.0)
                if prev_new_pos is not None:
                    new_pos = max(new_pos, prev_new_pos + p.jam_gap_m)
                    new_pos = min(new_pos, veh.pos)  # never move backwards
                # dwell trigger: first time at/below the planned curb point
                if (not veh.dwell_done) and veh.dwell_until == -np.inf \
                        and new_pos <= veh.dwell.at_distance_m:
                    veh.dwell_until = t + veh.dwell.duration_s

                veh.speed = (veh.pos - new_pos) / dt
                veh.pos = new_pos
                prev_new_pos = new_pos

                veh.ts.append(t)
                veh.xs.append(max(new_pos, 0.0))
                veh.vs.append(veh.speed)
                veh.ps.append(veh.passenger)

                if new_pos <= 0.0 and not red:
                    exited.append(i)

            # -- remove stop-line crossers (front of FIFO only, in order)
            for i in reversed(exited):
                finished.append(active.pop(i))

            if recorder is not None:
                queued = sum(
                    1 for veh in active
                    if veh.speed < 0.5 and not t < veh.dwell_until
                )
                recorder.record_step(t, queued)

        finished.extend(active)  # in-flight at window end
        out: List[VehicleTrack] = []
        for veh in finished:
            if not veh.ts:
                continue
            if not (veh.is_taxi or cfg.record_all_vehicles):
                continue
            out.append(
                VehicleTrack(
                    vehicle_id=veh.vid,
                    segment_id=self.segment_id,
                    t=np.asarray(veh.ts),
                    dist_to_stopline_m=np.asarray(veh.xs),
                    speed_mps=np.asarray(veh.vs),
                    passenger=np.asarray(veh.ps, dtype=bool),
                    is_taxi=veh.is_taxi,
                )
            )
        out.sort(key=lambda tr: tr.entered_at)
        return out
