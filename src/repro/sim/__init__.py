"""Traffic microsimulator substrate.

Generates ground-truth vehicle motion at signalized approaches so the
taxi-trace layer can sample it the way Shenzhen's fleet samples reality.
"""

from .arrivals import DAY_PROFILE_SHENZHEN, PoissonArrivals, TimeVaryingArrivals
from .corridor import CorridorResult, CorridorSpec, build_corridor, simulate_corridor
from .engine import ApproachSpec, CitySimulation, SimulationResult
from .queueing import ApproachConfig, ApproachDemandRecorder, SignalizedApproachSim
from .vehicle import DwellPlan, VehicleParams, VehicleTrack

__all__ = [
    "DAY_PROFILE_SHENZHEN",
    "PoissonArrivals",
    "TimeVaryingArrivals",
    "CorridorResult",
    "CorridorSpec",
    "build_corridor",
    "simulate_corridor",
    "ApproachSpec",
    "CitySimulation",
    "SimulationResult",
    "ApproachConfig",
    "ApproachDemandRecorder",
    "SignalizedApproachSim",
    "DwellPlan",
    "VehicleParams",
    "VehicleTrack",
]
