"""City-scale simulation driver.

Runs one :class:`~repro.sim.queueing.SignalizedApproachSim` per incoming
segment of every signalized intersection, optionally fanning out over a
process pool (the approaches are independent by construction, mirroring
the paper's per-light data partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._util import RngLike, check_nonnegative
from ..lights.intersection import IntersectionSignals
from ..network.roadnet import RoadNetwork, Segment
from ..parallel.pool import pmap_seeded
from .arrivals import PoissonArrivals, TimeVaryingArrivals
from .queueing import ApproachConfig, SignalizedApproachSim
from .vehicle import VehicleTrack

__all__ = ["ApproachSpec", "SimulationResult", "CitySimulation"]


@dataclass(frozen=True)
class ApproachSpec:
    """Everything needed to simulate one approach in a worker process."""

    segment_id: int
    intersection_id: int
    approach: str
    arrivals: object  # PoissonArrivals | TimeVaryingArrivals
    controller: object  # LightController
    config: ApproachConfig
    t0: float
    t1: float


@dataclass
class SimulationResult:
    """Tracks produced by a city run, indexed by segment.

    Attributes
    ----------
    tracks_by_segment:
        ``{segment_id: [VehicleTrack, ...]}`` sorted by entry time.
    t0, t1:
        Simulated window.
    """

    tracks_by_segment: Dict[int, List[VehicleTrack]]
    t0: float
    t1: float

    def all_tracks(self) -> List[VehicleTrack]:
        """All tracks across segments (segment order, then entry time)."""
        out: List[VehicleTrack] = []
        for sid in sorted(self.tracks_by_segment):
            out.extend(self.tracks_by_segment[sid])
        return out

    def tracks_for_segments(self, segment_ids: Sequence[int]) -> List[VehicleTrack]:
        """Tracks on a subset of segments."""
        out: List[VehicleTrack] = []
        for sid in segment_ids:
            out.extend(self.tracks_by_segment.get(sid, []))
        return out

    def n_vehicles(self) -> int:
        """Total vehicles recorded."""
        return sum(len(v) for v in self.tracks_by_segment.values())


def _run_approach(spec: ApproachSpec, rng: np.random.Generator) -> tuple:
    """Worker: simulate one approach (top-level for picklability)."""
    sim = SignalizedApproachSim(
        controller=spec.controller,
        arrivals=spec.arrivals,
        config=spec.config,
        segment_id=spec.segment_id,
    )
    return spec.segment_id, sim.run(spec.t0, spec.t1, rng=rng)


class CitySimulation:
    """Simulate all signalized approaches of a road network.

    Parameters
    ----------
    net:
        The road network.
    signals:
        ``{intersection_id: IntersectionSignals}`` (see
        :func:`repro.lights.attach_signals_to_network`).
    rate_per_segment:
        Arrival rate (vehicles/hour) for each simulated segment.
        Segments absent from the mapping are skipped — scenarios only
        simulate the approaches they care about, like the paper only
        monitors its 9 chosen intersections.
    config:
        Shared approach configuration; ``config_per_segment`` overrides
        individual segments.
    hourly_profile:
        Optional 24-entry relative day profile (Fig. 2(a) shape).  When
        given, arrivals are time-varying.
    """

    def __init__(
        self,
        net: RoadNetwork,
        signals: Dict[int, IntersectionSignals],
        rate_per_segment: Dict[int, float],
        config: Optional[ApproachConfig] = None,
        config_per_segment: Optional[Dict[int, ApproachConfig]] = None,
        hourly_profile: Optional[Sequence[float]] = None,
    ) -> None:
        self.net = net
        self.signals = signals
        self.rate_per_segment = {
            sid: check_nonnegative(f"rate_per_segment[{sid}]", r)
            for sid, r in rate_per_segment.items()
        }
        self.config = ApproachConfig() if config is None else config
        self.config_per_segment = dict(config_per_segment or {})
        self.hourly_profile = None if hourly_profile is None else np.asarray(hourly_profile, float)
        for sid in self.rate_per_segment:
            seg = net.segments[sid]
            if seg.to_id not in signals:
                raise ValueError(
                    f"segment {sid} ends at unsignalized/uncontrolled intersection {seg.to_id}"
                )

    def _make_arrivals(self, rate: float):
        if self.hourly_profile is not None:
            return TimeVaryingArrivals(rate, self.hourly_profile)
        return PoissonArrivals(rate)

    def specs(self, t0: float, t1: float) -> List[ApproachSpec]:
        """Build per-approach work specs for the window."""
        out: List[ApproachSpec] = []
        for sid in sorted(self.rate_per_segment):
            seg: Segment = self.net.segments[sid]
            controller = self.signals[seg.to_id].controller_for_segment(seg)
            cfg = self.config_per_segment.get(sid, self.config)
            if abs(cfg.segment_length_m - seg.length) > 1e-6:
                # Clamp the simulated run-up to the physical segment.
                cfg = ApproachConfig(
                    segment_length_m=min(cfg.segment_length_m, seg.length),
                    taxi_fraction=cfg.taxi_fraction,
                    dwell_probability=cfg.dwell_probability,
                    dwell_duration_range_s=cfg.dwell_duration_range_s,
                    record_all_vehicles=cfg.record_all_vehicles,
                    params=cfg.params,
                )
            out.append(
                ApproachSpec(
                    segment_id=sid,
                    intersection_id=seg.to_id,
                    approach=seg.approach,
                    arrivals=self._make_arrivals(self.rate_per_segment[sid]),
                    controller=controller,
                    config=cfg,
                    t0=t0,
                    t1=t1,
                )
            )
        return out

    def run(
        self,
        t0: float,
        t1: float,
        *,
        seed: int = 0,
        max_workers: Optional[int] = None,
        serial: bool = False,
    ) -> SimulationResult:
        """Simulate ``[t0, t1)`` across all configured approaches.

        Deterministic for a given ``seed`` regardless of worker count.
        """
        specs = self.specs(t0, t1)
        results = pmap_seeded(
            _run_approach, specs, base_seed=seed, max_workers=max_workers, serial=serial
        )
        by_segment = {sid: tracks for sid, tracks in results}
        return SimulationResult(tracks_by_segment=by_segment, t0=t0, t1=t1)
