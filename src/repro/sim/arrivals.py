"""Vehicle arrival processes for the traffic microsimulator.

The paper's taxi flow is wildly unbalanced — Table II shows a 25×
record-rate gap between the busiest and idlest intersection, and
Fig. 2(a) shows a strong time-of-day profile.  These processes let a
scenario dial in both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._util import RngLike, as_rng, check_1d, check_nonnegative, check_positive

__all__ = ["PoissonArrivals", "TimeVaryingArrivals", "DAY_PROFILE_SHENZHEN"]


#: A 24-entry relative intensity profile shaped like the paper's
#: Fig. 2(a): overnight lull (driver shifting dips around 04:00 and a
#: smaller one near 16:00 shift change), morning rise, sustained daytime
#: plateau, evening peak.
DAY_PROFILE_SHENZHEN = np.array(
    [
        0.55, 0.45, 0.38, 0.30, 0.28, 0.35,  # 00-05
        0.55, 0.85, 1.10, 1.15, 1.10, 1.05,  # 06-11
        1.00, 1.00, 1.05, 0.90, 0.70, 0.95,  # 12-17 (16h shift-change dip)
        1.15, 1.20, 1.15, 1.05, 0.90, 0.70,  # 18-23
    ]
)


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals.

    Parameters
    ----------
    rate_per_hour:
        Expected vehicle arrivals per hour (≥ 0).
    """

    rate_per_hour: float

    def __post_init__(self) -> None:
        check_nonnegative("rate_per_hour", self.rate_per_hour)

    def sample(self, t0: float, t1: float, rng: RngLike = None) -> np.ndarray:
        """Sorted arrival times in ``[t0, t1)``."""
        if t1 <= t0 or self.rate_per_hour == 0.0:
            return np.empty(0)
        rng = as_rng(rng)
        lam = self.rate_per_hour / 3600.0
        n = rng.poisson(lam * (t1 - t0))
        return np.sort(rng.uniform(t0, t1, size=n))

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average arrivals/hour over the window (constant here)."""
        return self.rate_per_hour


class TimeVaryingArrivals:
    """Inhomogeneous Poisson arrivals from an hourly intensity profile.

    Sampling uses thinning against the peak rate, so the generated
    process is exact for the piecewise-constant intensity.

    Parameters
    ----------
    base_rate_per_hour:
        Rate multiplied by the profile.
    hourly_profile:
        24 relative intensities; entry ``h`` applies to time-of-day hour
        ``h`` (absolute time modulo 24 h).  Defaults to the
        Shenzhen-like profile.
    """

    def __init__(
        self,
        base_rate_per_hour: float,
        hourly_profile: Sequence[float] = DAY_PROFILE_SHENZHEN,
    ) -> None:
        self.base_rate_per_hour = check_nonnegative("base_rate_per_hour", base_rate_per_hour)
        prof = check_1d("hourly_profile", hourly_profile, min_len=24)
        if prof.shape[0] != 24:
            raise ValueError(f"hourly_profile must have 24 entries, got {prof.shape[0]}")
        if np.any(prof < 0):
            raise ValueError("hourly_profile entries must be non-negative")
        self.hourly_profile = prof

    def rate_at(self, t) -> np.ndarray:
        """Instantaneous rate (arrivals/hour) at absolute time(s) ``t``."""
        hour = (np.asarray(t, dtype=float) // 3600.0).astype(np.int64) % 24
        return self.base_rate_per_hour * self.hourly_profile[hour]

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average arrivals/hour over ``[t0, t1)`` (1 s quadrature)."""
        if t1 <= t0:
            return 0.0
        ts = np.arange(t0, t1, 3600.0 / 4)
        return float(np.mean(self.rate_at(ts)))

    def sample(self, t0: float, t1: float, rng: RngLike = None) -> np.ndarray:
        """Sorted arrival times in ``[t0, t1)`` (thinning)."""
        if t1 <= t0 or self.base_rate_per_hour == 0.0:
            return np.empty(0)
        rng = as_rng(rng)
        peak = self.base_rate_per_hour * float(self.hourly_profile.max())
        if peak == 0.0:
            return np.empty(0)
        lam = peak / 3600.0
        n = rng.poisson(lam * (t1 - t0))
        cand = rng.uniform(t0, t1, size=n)
        keep = rng.uniform(0.0, peak, size=n) < self.rate_at(cand)
        return np.sort(cand[keep])
