"""Road-network model: intersections + directed road segments.

Substitutes for the paper's OpenStreetMap layer (§IV).  A network is a
set of :class:`Intersection` nodes and directed :class:`Segment` edges.
Each directed segment represents one driving direction of a road and is
an *approach* to the traffic light at its downstream intersection —
exactly the unit the paper partitions taxi data by ("a traffic light at
a road intersection only controls the taxis on the nearest segments").

Coordinates are local meters (see :mod:`repro.network.geometry`);
networks carry a :class:`~repro.network.geometry.LocalFrame` so traces
can be emitted in the geographic (lon, lat) Table I format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import check_positive
from .geometry import LocalFrame, heading_of_vector

__all__ = [
    "Approach",
    "Intersection",
    "Segment",
    "RoadNetwork",
    "grid_network",
]


#: Cardinal approach groups at an intersection.  The paper's
#: intersection-based enhancement (§V.B) mirrors "North-South" vs
#: "East-West" perpendicular flows; we classify every directed segment
#: into one of these two groups by its heading.
class Approach:
    NS = "NS"
    EW = "EW"

    @staticmethod
    def of_heading(heading_deg: float) -> str:
        """Classify a travel heading into the NS or EW approach group."""
        h = float(heading_deg) % 360.0
        # Within 45° of due north or due south → NS; otherwise EW.
        return Approach.NS if min(abs(h - 0.0), abs(h - 360.0), abs(h - 180.0)) <= 45.0 else Approach.EW


@dataclass(frozen=True)
class Intersection:
    """A network node, optionally signalized.

    Attributes
    ----------
    id:
        Dense integer identifier (index into ``RoadNetwork.intersections``).
    x, y:
        Position in local meters.
    signalized:
        Whether a traffic light is installed here.
    name:
        Optional human-readable label (e.g. Table II road names).
    """

    id: int
    x: float
    y: float
    signalized: bool = True
    name: str = ""


@dataclass(frozen=True)
class Segment:
    """A directed road segment from one intersection to another.

    The downstream end (``to_id``) is where the controlling traffic
    light stands; ``heading`` is the direction of travel along the
    segment in degrees clockwise from north.
    """

    id: int
    from_id: int
    to_id: int
    ax: float
    ay: float
    bx: float
    by: float
    name: str = ""

    @property
    def length(self) -> float:
        """Segment length in meters."""
        return float(np.hypot(self.bx - self.ax, self.by - self.ay))

    @property
    def heading(self) -> float:
        """Travel heading (deg clockwise from north)."""
        return float(heading_of_vector(self.bx - self.ax, self.by - self.ay))

    @property
    def approach(self) -> str:
        """Cardinal approach group (``"NS"`` or ``"EW"``)."""
        return Approach.of_heading(self.heading)

    def point_at(self, distance_from_stopline: float) -> Tuple[float, float]:
        """(x, y) of the point *distance_from_stopline* meters upstream
        of the downstream stop line, clamped into the segment."""
        L = self.length
        if L <= 0:
            return self.bx, self.by
        t = 1.0 - min(max(distance_from_stopline, 0.0), L) / L
        return self.ax + t * (self.bx - self.ax), self.ay + t * (self.by - self.ay)


class RoadNetwork:
    """A directed road network with vectorized geometry tables.

    Parameters
    ----------
    intersections:
        Sequence of :class:`Intersection`; ids must equal their index.
    segments:
        Sequence of :class:`Segment`; ids must equal their index.
    frame:
        Geographic registration for (lon, lat) emission.
    """

    def __init__(
        self,
        intersections: Sequence[Intersection],
        segments: Sequence[Segment],
        frame: Optional[LocalFrame] = None,
    ) -> None:
        self.intersections: List[Intersection] = list(intersections)
        self.segments: List[Segment] = list(segments)
        self.frame = frame if frame is not None else LocalFrame()
        for i, node in enumerate(self.intersections):
            if node.id != i:
                raise ValueError(f"intersection id {node.id} at index {i}: ids must be dense")
        for i, seg in enumerate(self.segments):
            if seg.id != i:
                raise ValueError(f"segment id {seg.id} at index {i}: ids must be dense")
            n = len(self.intersections)
            if not (0 <= seg.from_id < n and 0 <= seg.to_id < n):
                raise ValueError(f"segment {i} references unknown intersection")

        # Struct-of-arrays geometry tables for vectorized map matching.
        if self.segments:
            self.seg_ax = np.array([s.ax for s in self.segments])
            self.seg_ay = np.array([s.ay for s in self.segments])
            self.seg_bx = np.array([s.bx for s in self.segments])
            self.seg_by = np.array([s.by for s in self.segments])
            self.seg_heading = np.array([s.heading for s in self.segments])
            self.seg_to = np.array([s.to_id for s in self.segments], dtype=np.int64)
            self.seg_from = np.array([s.from_id for s in self.segments], dtype=np.int64)
        else:  # pragma: no cover - degenerate but kept consistent
            self.seg_ax = self.seg_ay = self.seg_bx = self.seg_by = np.empty(0)
            self.seg_heading = np.empty(0)
            self.seg_to = self.seg_from = np.empty(0, dtype=np.int64)

        self._out: Dict[int, List[int]] = {i: [] for i in range(len(self.intersections))}
        self._in: Dict[int, List[int]] = {i: [] for i in range(len(self.intersections))}
        for s in self.segments:
            self._out[s.from_id].append(s.id)
            self._in[s.to_id].append(s.id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def outgoing(self, intersection_id: int) -> List[Segment]:
        """Directed segments leaving an intersection."""
        return [self.segments[i] for i in self._out[intersection_id]]

    def incoming(self, intersection_id: int) -> List[Segment]:
        """Directed segments arriving at (controlled by) an intersection."""
        return [self.segments[i] for i in self._in[intersection_id]]

    def approaches(self, intersection_id: int) -> Dict[str, List[Segment]]:
        """Incoming segments grouped into NS/EW approach groups."""
        groups: Dict[str, List[Segment]] = {Approach.NS: [], Approach.EW: []}
        for seg in self.incoming(intersection_id):
            groups[seg.approach].append(seg)
        return groups

    def signalized_intersections(self) -> List[Intersection]:
        """All intersections that carry a traffic light."""
        return [n for n in self.intersections if n.signalized]

    def segment_between(self, from_id: int, to_id: int) -> Optional[Segment]:
        """The directed segment from→to, or ``None``."""
        for sid in self._out[from_id]:
            if self.segments[sid].to_id == to_id:
                return self.segments[sid]
        return None

    def neighbors(self, intersection_id: int) -> List[int]:
        """Downstream intersection ids reachable in one segment."""
        return [self.segments[sid].to_id for sid in self._out[intersection_id]]

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (edge attr: segment id, length)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self.intersections:
            g.add_node(node.id, x=node.x, y=node.y, signalized=node.signalized)
        for seg in self.segments:
            g.add_edge(seg.from_id, seg.to_id, segment_id=seg.id, length=seg.length)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoadNetwork({len(self.intersections)} intersections, "
            f"{len(self.segments)} segments)"
        )


def grid_network(
    n_cols: int,
    n_rows: int,
    spacing_m: float = 1000.0,
    *,
    frame: Optional[LocalFrame] = None,
    signalized: bool = True,
) -> RoadNetwork:
    """Build a rectangular grid network.

    This is the topology of the paper's navigation demo (Fig. 15): a
    regular grid whose shortest road segment is 1 km.  Every adjacent
    pair of intersections is connected by two directed segments (one per
    driving direction).

    Parameters
    ----------
    n_cols, n_rows:
        Grid dimensions (number of intersections per axis), each ≥ 2.
    spacing_m:
        Edge length in meters (paper: 1000 m).
    signalized:
        Whether every intersection carries a light.
    """
    if n_cols < 2 or n_rows < 2:
        raise ValueError("grid_network requires n_cols >= 2 and n_rows >= 2")
    spacing_m = check_positive("spacing_m", spacing_m)

    intersections: List[Intersection] = []
    for r in range(n_rows):
        for c in range(n_cols):
            intersections.append(
                Intersection(
                    id=r * n_cols + c,
                    x=c * spacing_m,
                    y=r * spacing_m,
                    signalized=signalized,
                    name=f"I({c},{r})",
                )
            )

    segments: List[Segment] = []

    def _add_bidir(a: Intersection, b: Intersection) -> None:
        for u, v in ((a, b), (b, a)):
            segments.append(
                Segment(
                    id=len(segments),
                    from_id=u.id,
                    to_id=v.id,
                    ax=u.x,
                    ay=u.y,
                    bx=v.x,
                    by=v.y,
                    name=f"{u.name}->{v.name}",
                )
            )

    for r in range(n_rows):
        for c in range(n_cols):
            node = intersections[r * n_cols + c]
            if c + 1 < n_cols:
                _add_bidir(node, intersections[r * n_cols + c + 1])
            if r + 1 < n_rows:
                _add_bidir(node, intersections[(r + 1) * n_cols + c])

    return RoadNetwork(intersections, segments, frame=frame)
