"""Road-network substrate: geometry frames, intersections, segments.

Substitutes for the paper's OpenStreetMap layer.  See
:mod:`repro.network.geometry` for coordinate conventions and
:mod:`repro.network.roadnet` for the network model and grid builder.
"""

from .geometry import (
    EARTH_RADIUS_M,
    SHENZHEN_ORIGIN,
    LocalFrame,
    heading_difference,
    heading_of_vector,
    point_segment_distance,
    project_onto_segment,
    unit_vector_of_heading,
)
from .osm import DRIVABLE_HIGHWAYS, parse_osm
from .roadnet import Approach, Intersection, RoadNetwork, Segment, grid_network
from .serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    plans_from_dict,
    plans_to_dict,
    save_network,
)

__all__ = [
    "EARTH_RADIUS_M",
    "SHENZHEN_ORIGIN",
    "LocalFrame",
    "heading_difference",
    "heading_of_vector",
    "point_segment_distance",
    "project_onto_segment",
    "unit_vector_of_heading",
    "Approach",
    "Intersection",
    "RoadNetwork",
    "Segment",
    "DRIVABLE_HIGHWAYS",
    "parse_osm",
    "grid_network",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "plans_from_dict",
    "plans_to_dict",
    "save_network",
]
