"""JSON serialization of road networks and signal plans.

Lets a scenario built once (e.g. from survey data or an OSM extract) be
saved and shared: the network's geometry, the geographic frame, and
optionally the per-intersection :class:`~repro.lights.intersection.SignalPlan`
lists that define ground truth.  The format is plain JSON — stable,
diff-able, and readable by non-Python consumers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from typing import TYPE_CHECKING

from .geometry import LocalFrame
from .roadnet import Intersection, RoadNetwork, Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lights.intersection import SignalPlan

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "plans_to_dict",
    "plans_from_dict",
    "save_network",
    "load_network",
]

FORMAT_VERSION = 1


def network_to_dict(net: RoadNetwork) -> dict:
    """Serialize a network to a JSON-compatible dict."""
    return {
        "format": "repro-roadnet",
        "version": FORMAT_VERSION,
        "frame": {
            "origin_lon": net.frame.origin_lon,
            "origin_lat": net.frame.origin_lat,
        },
        "intersections": [
            {
                "id": n.id,
                "x": n.x,
                "y": n.y,
                "signalized": n.signalized,
                "name": n.name,
            }
            for n in net.intersections
        ],
        "segments": [
            {
                "id": s.id,
                "from": s.from_id,
                "to": s.to_id,
                "ax": s.ax,
                "ay": s.ay,
                "bx": s.bx,
                "by": s.by,
                "name": s.name,
            }
            for s in net.segments
        ],
    }


def network_from_dict(data: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_dict` (validates format/version)."""
    if data.get("format") != "repro-roadnet":
        raise ValueError(f"not a repro road network: format={data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    frame = LocalFrame(
        origin_lon=data["frame"]["origin_lon"],
        origin_lat=data["frame"]["origin_lat"],
    )
    intersections = [
        Intersection(
            id=n["id"], x=n["x"], y=n["y"],
            signalized=n["signalized"], name=n.get("name", ""),
        )
        for n in data["intersections"]
    ]
    segments = [
        Segment(
            id=s["id"], from_id=s["from"], to_id=s["to"],
            ax=s["ax"], ay=s["ay"], bx=s["bx"], by=s["by"],
            name=s.get("name", ""),
        )
        for s in data["segments"]
    ]
    return RoadNetwork(intersections, segments, frame=frame)


def plans_to_dict(plans: Dict[int, List["SignalPlan"]]) -> dict:
    """Serialize ground-truth signal plans keyed by intersection id."""
    return {
        str(iid): [
            {
                "cycle_s": p.cycle_s,
                "ns_red_s": p.ns_red_s,
                "offset_s": p.offset_s,
                "start_second_of_day": p.start_second_of_day,
            }
            for p in plan_list
        ]
        for iid, plan_list in plans.items()
    }


def plans_from_dict(data: dict) -> Dict[int, List["SignalPlan"]]:
    """Inverse of :func:`plans_to_dict`."""
    # deferred import: repro.lights depends on repro.network, not vice versa
    from ..lights.intersection import SignalPlan

    return {
        int(iid): [
            SignalPlan(
                cycle_s=p["cycle_s"],
                ns_red_s=p["ns_red_s"],
                offset_s=p.get("offset_s", 0.0),
                start_second_of_day=p.get("start_second_of_day", 0.0),
            )
            for p in plan_list
        ]
        for iid, plan_list in data.items()
    }


def save_network(
    net: RoadNetwork,
    fp: TextIO,
    plans: Optional[Dict[int, List["SignalPlan"]]] = None,
) -> None:
    """Write a network (and optional plans) as JSON to an open file."""
    doc = network_to_dict(net)
    if plans is not None:
        doc["signal_plans"] = plans_to_dict(plans)
    json.dump(doc, fp, indent=1)


def load_network(fp: TextIO) -> Tuple[RoadNetwork, Optional[Dict[int, List["SignalPlan"]]]]:
    """Read a network (and plans, when present) from an open JSON file."""
    doc = json.load(fp)
    net = network_from_dict(doc)
    plans = plans_from_dict(doc["signal_plans"]) if "signal_plans" in doc else None
    return net, plans
