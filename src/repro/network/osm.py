"""OpenStreetMap XML import (§IV: "We utilize OpenStreetMap [17]").

Builds a :class:`~repro.network.roadnet.RoadNetwork` from an OSM XML
document: highway ways become directed segments (both directions unless
``oneway=yes``), intersections appear wherever ways share a node, and
nodes tagged ``highway=traffic_signals`` become signalized.

The parser covers the subset of OSM that matters for this system —
nodes, ways, ``highway``/``oneway``/``name`` tags — and deliberately
ignores the rest (relations, turn restrictions, lanes).  Everything it
produces feeds the exact same pipeline as the synthetic builders.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Set, TextIO, Union

from .geometry import LocalFrame
from .roadnet import Intersection, RoadNetwork, Segment

__all__ = ["parse_osm", "DRIVABLE_HIGHWAYS"]

#: ``highway=`` values treated as drivable roads.
DRIVABLE_HIGHWAYS = frozenset(
    {
        "motorway", "trunk", "primary", "secondary", "tertiary",
        "unclassified", "residential", "living_street", "service",
        "motorway_link", "trunk_link", "primary_link", "secondary_link",
        "tertiary_link",
    }
)


def _way_tags(way: ET.Element) -> Dict[str, str]:
    return {t.get("k", ""): t.get("v", "") for t in way.findall("tag")}


def parse_osm(
    source: Union[str, TextIO],
    *,
    frame: Optional[LocalFrame] = None,
    drivable: frozenset = DRIVABLE_HIGHWAYS,
) -> RoadNetwork:
    """Parse OSM XML into a road network.

    Parameters
    ----------
    source:
        XML text, or an open file object.
    frame:
        Local projection; defaults to a frame anchored at the mean of
        the document's node coordinates (so imports far from Shenzhen
        stay numerically well-conditioned).
    drivable:
        ``highway=`` values to keep.

    Notes
    -----
    Graph nodes are OSM nodes that either (a) appear in more than one
    kept way, (b) are a kept way's endpoint, or (c) carry
    ``highway=traffic_signals``.  Way geometry between graph nodes is
    collapsed to a straight segment (the identification pipeline only
    needs lengths, orientations, and the stop-line position).
    """
    text = source if isinstance(source, str) else source.read()
    root = ET.fromstring(text)
    if root.tag != "osm":
        raise ValueError(f"not an OSM document (root <{root.tag}>)")

    node_lon: Dict[str, float] = {}
    node_lat: Dict[str, float] = {}
    signalized: Set[str] = set()
    for nd in root.findall("node"):
        nid = nd.get("id")
        if nid is None or nd.get("lon") is None or nd.get("lat") is None:
            continue
        node_lon[nid] = float(nd.get("lon"))
        node_lat[nid] = float(nd.get("lat"))
        for tag in nd.findall("tag"):
            if tag.get("k") == "highway" and tag.get("v") == "traffic_signals":
                signalized.add(nid)

    ways = []
    usage: Dict[str, int] = {}
    for way in root.findall("way"):
        tags = _way_tags(way)
        if tags.get("highway") not in drivable:
            continue
        refs = [nd.get("ref") for nd in way.findall("nd")]
        refs = [r for r in refs if r in node_lon]
        if len(refs) < 2:
            continue
        ways.append((refs, tags))
        for r in refs:
            usage[r] = usage.get(r, 0) + 1
        usage[refs[0]] += 1  # endpoints always become graph nodes
        usage[refs[-1]] += 1

    if not ways:
        raise ValueError("no drivable ways found in the OSM document")

    graph_nodes = {r for r, n in usage.items() if n > 1} | signalized

    if frame is None:
        lons = [node_lon[r] for refs, _ in ways for r in refs]
        lats = [node_lat[r] for refs, _ in ways for r in refs]
        frame = LocalFrame(
            origin_lon=sum(lons) / len(lons), origin_lat=sum(lats) / len(lats)
        )

    # assign dense ids to graph nodes in stable (sorted OSM id) order
    ordered = sorted(graph_nodes, key=lambda r: (len(r), r))
    osm_to_id = {r: i for i, r in enumerate(ordered)}
    intersections: List[Intersection] = []
    for r in ordered:
        x, y = frame.to_local(node_lon[r], node_lat[r])
        intersections.append(
            Intersection(
                id=osm_to_id[r],
                x=float(x),
                y=float(y),
                signalized=r in signalized,
                name=f"osm:{r}",
            )
        )

    segments: List[Segment] = []

    def add_segment(a: str, b: str, name: str) -> None:
        ia, ib = intersections[osm_to_id[a]], intersections[osm_to_id[b]]
        segments.append(
            Segment(
                id=len(segments),
                from_id=ia.id,
                to_id=ib.id,
                ax=ia.x, ay=ia.y, bx=ib.x, by=ib.y,
                name=name,
            )
        )

    for refs, tags in ways:
        name = tags.get("name", tags.get("highway", "road"))
        oneway = tags.get("oneway") in ("yes", "1", "true")
        # split the way at graph nodes
        breakpoints = [i for i, r in enumerate(refs) if r in graph_nodes]
        for i0, i1 in zip(breakpoints[:-1], breakpoints[1:]):
            a, b = refs[i0], refs[i1]
            if a == b:
                continue
            add_segment(a, b, name)
            if not oneway:
                add_segment(b, a, name)

    return RoadNetwork(intersections, segments, frame=frame)
