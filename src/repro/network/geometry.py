"""Planar/geodesic geometry for the road-network substrate.

The paper's traces are (longitude, latitude) pairs around Shenzhen
(≈ 114.05 °E, 22.54 °N).  All identification math happens in a local
tangent-plane frame measured in meters; this module provides the
conversion between the two plus heading/segment primitives used by the
map matcher (Fig. 5 of the paper).

Conventions
-----------
* Headings follow the taxi-record convention (Table I, field 7):
  degrees clockwise from north, in ``[0, 360)``.
* Local coordinates are ``(x, y)`` meters East/North of a reference
  origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import numpy.typing as npt

from .._util import check_in_range

__all__ = [
    "EARTH_RADIUS_M",
    "SHENZHEN_ORIGIN",
    "LocalFrame",
    "heading_of_vector",
    "heading_difference",
    "unit_vector_of_heading",
    "point_segment_distance",
    "project_onto_segment",
]

#: Mean Earth radius in meters (spherical approximation is plenty for a
#: city-scale tangent plane).
EARTH_RADIUS_M = 6_371_000.0

#: (lon, lat) used as the default local-frame origin: central Shenzhen,
#: the area covered by Table II of the paper.
SHENZHEN_ORIGIN = (114.05, 22.54)


@dataclass(frozen=True)
class LocalFrame:
    """Equirectangular tangent-plane projection anchored at ``origin``.

    Accurate to centimeters over a ~50 km urban extent, which dwarfs the
    paper's ~100 m GPS error budget.

    Parameters
    ----------
    origin_lon, origin_lat:
        Geographic anchor in degrees.
    """

    origin_lon: float = SHENZHEN_ORIGIN[0]
    origin_lat: float = SHENZHEN_ORIGIN[1]

    def __post_init__(self) -> None:
        check_in_range("origin_lon", self.origin_lon, -180.0, 180.0)
        check_in_range("origin_lat", self.origin_lat, -89.0, 89.0)

    @property
    def meters_per_deg_lat(self) -> float:
        """Meters of northing per degree of latitude."""
        return np.pi * EARTH_RADIUS_M / 180.0

    @property
    def meters_per_deg_lon(self) -> float:
        """Meters of easting per degree of longitude at the origin."""
        return self.meters_per_deg_lat * float(np.cos(np.deg2rad(self.origin_lat)))

    def to_local(
        self, lon: npt.ArrayLike, lat: npt.ArrayLike
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert geographic degrees to local (x, y) meters; vectorized."""
        lon = np.asarray(lon, dtype=float)
        lat = np.asarray(lat, dtype=float)
        x = (lon - self.origin_lon) * self.meters_per_deg_lon
        y = (lat - self.origin_lat) * self.meters_per_deg_lat
        return x, y

    def to_geographic(
        self, x: npt.ArrayLike, y: npt.ArrayLike
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert local (x, y) meters back to (lon, lat) degrees."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        lon = self.origin_lon + x / self.meters_per_deg_lon
        lat = self.origin_lat + y / self.meters_per_deg_lat
        return lon, lat


def heading_of_vector(dx: npt.ArrayLike, dy: npt.ArrayLike) -> np.ndarray:
    """Heading (deg clockwise from north) of displacement ``(dx, dy)``.

    ``(0, 1)`` (due north) → 0; ``(1, 0)`` (due east) → 90.  Vectorized.
    """
    ang = np.rad2deg(np.arctan2(np.asarray(dx, float), np.asarray(dy, float)))
    return np.mod(ang, 360.0)


def unit_vector_of_heading(
    heading_deg: npt.ArrayLike,
) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`heading_of_vector`: unit (dx, dy) for a heading."""
    rad = np.deg2rad(np.asarray(heading_deg, dtype=float))
    return np.sin(rad), np.cos(rad)


def heading_difference(a: npt.ArrayLike, b: npt.ArrayLike) -> np.ndarray:
    """Absolute angular difference between two headings, in ``[0, 180]``."""
    d = np.abs(np.mod(np.asarray(a, float) - np.asarray(b, float) + 180.0, 360.0) - 180.0)
    return d


def project_onto_segment(
    px: npt.ArrayLike,
    py: npt.ArrayLike,
    ax: npt.ArrayLike,
    ay: npt.ArrayLike,
    bx: npt.ArrayLike,
    by: npt.ArrayLike,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project points onto segment ``A→B``.

    Returns ``(t, qx, qy)`` where ``t`` is the clamped arc parameter in
    ``[0, 1]`` and ``(qx, qy)`` the closest point on the segment.
    Vectorized over points.
    """
    px = np.asarray(px, float)
    py = np.asarray(py, float)
    ax = np.asarray(ax, float)
    ay = np.asarray(ay, float)
    bx = np.asarray(bx, float)
    by = np.asarray(by, float)
    vx, vy = bx - ax, by - ay
    seg_len2 = vx * vx + vy * vy
    t = ((px - ax) * vx + (py - ay) * vy) / np.where(seg_len2 > 0.0, seg_len2, 1.0)
    t = np.where(seg_len2 > 0.0, np.clip(t, 0.0, 1.0), 0.0)
    return t, ax + t * vx, ay + t * vy


def point_segment_distance(
    px: npt.ArrayLike,
    py: npt.ArrayLike,
    ax: npt.ArrayLike,
    ay: npt.ArrayLike,
    bx: npt.ArrayLike,
    by: npt.ArrayLike,
) -> np.ndarray:
    """Euclidean distance from points to segment ``A→B``; vectorized."""
    _, qx, qy = project_onto_segment(px, py, ax, ay, bx, by)
    return np.hypot(np.asarray(px, float) - qx, np.asarray(py, float) - qy)
