"""Traffic-light schedule model (Fig. 3 of the paper).

A :class:`LightSchedule` captures the three parameters the paper's
system identifies for a single light:

* **cycle length** — duration of one full red+green cycle;
* **red duration** (yellow folded into red, per the paper's convention);
* **offset** — the absolute time at which a red phase starts, which
  fixes the **signal change times** (red→green and green→red).

All queries are pure functions of absolute time, so schedules are
immutable and safely shared across simulator workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
import numpy.typing as npt

from .._util import check_nonnegative, check_positive, wrap_mod

__all__ = ["Phase", "LightSchedule"]


class Phase:
    """Signal phase constants."""

    RED = "RED"
    GREEN = "GREEN"


@dataclass(frozen=True)
class LightSchedule:
    """Fixed-time schedule of one traffic light.

    The light is **red** on ``[offset + k*cycle, offset + k*cycle + red)``
    for every integer ``k``, and green otherwise.

    Parameters
    ----------
    cycle_s:
        Full cycle length in seconds (> 0).
    red_s:
        Red duration in seconds, ``0 < red_s < cycle_s``.
    offset_s:
        Absolute time at which (one of) the red phases begins.
    """

    cycle_s: float
    red_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive("cycle_s", self.cycle_s)
        check_positive("red_s", self.red_s)
        if not self.red_s < self.cycle_s:
            raise ValueError(
                f"red_s ({self.red_s}) must be strictly less than cycle_s ({self.cycle_s})"
            )
        check_nonnegative("offset_s + cycle_s", self.offset_s + self.cycle_s)

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def green_s(self) -> float:
        """Green duration = cycle − red."""
        return self.cycle_s - self.red_s

    @property
    def green_to_red_in_cycle(self) -> float:
        """In-cycle second at which green turns red (start of red)."""
        return float(wrap_mod(self.offset_s, self.cycle_s))

    @property
    def red_to_green_in_cycle(self) -> float:
        """In-cycle second at which red turns green (end of red)."""
        return float(wrap_mod(self.offset_s + self.red_s, self.cycle_s))

    # ------------------------------------------------------------------
    # Phase queries (vectorized over t)
    # ------------------------------------------------------------------
    def time_in_cycle(self, t: npt.ArrayLike) -> Union[float, np.ndarray]:
        """Seconds into the current cycle at absolute time(s) ``t``,
        measured from the start of red.  In ``[0, cycle_s)``."""
        if type(t) is float or type(t) is int:
            # fast scalar path: the 1 Hz simulator calls this per step,
            # and numpy scalar dispatch costs ~25% of a whole sim run
            r = (t - self.offset_s) % self.cycle_s
            return r if r < self.cycle_s else 0.0
        return wrap_mod(np.asarray(t, dtype=float) - self.offset_s, self.cycle_s)

    def is_red(self, t: npt.ArrayLike) -> Union[bool, np.ndarray]:
        """True where the light is red at absolute time(s) ``t``."""
        return self.time_in_cycle(t) < self.red_s

    def is_green(self, t: npt.ArrayLike) -> Union[bool, np.ndarray]:
        """True where the light is green at absolute time(s) ``t``."""
        red = self.is_red(t)
        # `~` is only correct on boolean *arrays*; on a scalar-path
        # Python bool it would bit-flip to -2/-1 (both truthy)
        return not red if type(red) is bool else np.logical_not(red)

    def phase(self, t: float) -> str:
        """``Phase.RED`` or ``Phase.GREEN`` at scalar time ``t``."""
        return Phase.RED if bool(self.is_red(t)) else Phase.GREEN

    # ------------------------------------------------------------------
    # Change-time queries
    # ------------------------------------------------------------------
    def next_change(self, t: float) -> Tuple[float, str]:
        """Absolute time of the next signal change strictly after ``t``
        and the phase that begins then.

        Returns
        -------
        (time, new_phase):
            ``new_phase`` is :data:`Phase.GREEN` if red ends at ``time``,
            else :data:`Phase.RED`.
        """
        local = float(self.time_in_cycle(t))
        if local < self.red_s:
            return t + (self.red_s - local), Phase.GREEN
        return t + (self.cycle_s - local), Phase.RED

    def wait_if_arriving(self, t: float) -> float:
        """Red waiting time for a vehicle reaching the stop line at ``t``.

        Zero when green; otherwise the remaining red time.  This is the
        quantity the navigation application (§VIII.B) adds to link
        travel times.
        """
        local = float(self.time_in_cycle(t))
        return self.red_s - local if local < self.red_s else 0.0

    def red_intervals(self, t0: float, t1: float) -> np.ndarray:
        """All red intervals ``[start, end)`` overlapping ``[t0, t1)``.

        Returned as an ``(n, 2)`` float array, clipped to the window.
        Useful for plotting ground truth (Figs. 10, 11, 13).
        """
        if t1 <= t0:
            return np.empty((0, 2))
        k0 = int(np.floor((t0 - self.offset_s) / self.cycle_s))
        k1 = int(np.ceil((t1 - self.offset_s) / self.cycle_s))
        starts = self.offset_s + np.arange(k0, k1 + 1) * self.cycle_s
        ends = starts + self.red_s
        keep = (ends > t0) & (starts < t1)
        starts, ends = starts[keep], ends[keep]
        return np.column_stack([np.maximum(starts, t0), np.minimum(ends, t1)])

    def shifted(self, dt: float) -> "LightSchedule":
        """A copy whose offset is shifted by ``dt`` seconds."""
        return LightSchedule(self.cycle_s, self.red_s, self.offset_s + dt)

    def complement(self) -> "LightSchedule":
        """The perpendicular approach's schedule at the same intersection.

        Green exactly while this light is red and vice versa (yellow and
        all-red clearance folded into red, per the paper's convention).
        Shares the cycle length — the fact §V.B's enhancement exploits.
        """
        return LightSchedule(
            cycle_s=self.cycle_s,
            red_s=self.green_s,
            offset_s=self.offset_s + self.red_s,
        )

    def describes_same_signal(self, other: "LightSchedule", tol_s: float = 1e-6) -> bool:
        """Whether two parameterizations describe the same physical signal
        (equal cycles/reds and offsets congruent modulo the cycle)."""
        if abs(self.cycle_s - other.cycle_s) > tol_s:
            return False
        if abs(self.red_s - other.red_s) > tol_s:
            return False
        d = wrap_mod(self.offset_s - other.offset_s, self.cycle_s)
        return bool(min(d, self.cycle_s - d) <= tol_s)
