"""Traffic-light controllers: the three categories of §III.

1. :class:`StaticController` — one fixed schedule, never changes
   (the majority of Shenzhen lights, per the paper's police interview).
2. :class:`PreProgrammedController` — multiple time-of-day plans
   (e.g. peak vs off-peak), switching at fixed seconds-of-day.
3. :class:`ManualController` — a pre-programmed base plus ad-hoc manual
   override windows (police-controlled arterials).  The paper's system
   targets the first two; the manual controller exists so the evaluation
   can show what its traces look like.

A controller answers ``schedule_at(t)`` — the :class:`LightSchedule` in
force at absolute time ``t`` — plus convenience phase queries that
delegate to it.  Absolute time ``t=0`` is midnight of simulation day 0;
time-of-day is ``t mod 86400``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .._util import check_in_range
from .schedule import LightSchedule, Phase

__all__ = [
    "SECONDS_PER_DAY",
    "LightController",
    "StaticController",
    "PreProgrammedController",
    "ManualController",
    "PlanSwitch",
]

SECONDS_PER_DAY = 86_400.0


class LightController:
    """Abstract controller interface."""

    def schedule_at(self, t: float) -> LightSchedule:
        """The schedule in force at absolute time ``t``."""
        raise NotImplementedError

    # -- delegating phase helpers --------------------------------------
    def is_red(self, t: float) -> bool:
        """Whether the light is red at absolute time ``t``."""
        return bool(self.schedule_at(t).is_red(t))

    def is_green(self, t: float) -> bool:
        """Whether the light is green at absolute time ``t``."""
        return not self.is_red(t)

    def phase(self, t: float) -> str:
        """Phase constant at absolute time ``t``."""
        return Phase.RED if self.is_red(t) else Phase.GREEN

    def wait_if_arriving(self, t: float) -> float:
        """Remaining red time for an arrival at ``t`` (0 when green)."""
        return self.schedule_at(t).wait_if_arriving(t)

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        """Absolute times in ``[t0, t1)`` at which the scheduling *plan*
        changes — the ground truth for §VII's scheduling-change
        identification.  Static lights return ``[]``."""
        return []


@dataclass(frozen=True)
class StaticController(LightController):
    """Category 1: a single schedule forever."""

    schedule: LightSchedule

    def schedule_at(self, t: float) -> LightSchedule:
        return self.schedule


@dataclass(frozen=True)
class PlanSwitch:
    """One time-of-day plan entry: *schedule* applies from
    ``start_second_of_day`` until the next entry's start."""

    start_second_of_day: float
    schedule: LightSchedule

    def __post_init__(self) -> None:
        check_in_range("start_second_of_day", self.start_second_of_day, 0.0, SECONDS_PER_DAY, inclusive=True)


class PreProgrammedController(LightController):
    """Category 2: time-of-day plans repeating every day.

    Parameters
    ----------
    plans:
        Plan entries sorted (or sortable) by ``start_second_of_day``.
        The plan with the latest start wraps around past midnight: if
        the first entry starts at 07:00, times in [00:00, 07:00) use the
        last entry's schedule.
    """

    def __init__(self, plans: Sequence[PlanSwitch]) -> None:
        if not plans:
            raise ValueError("PreProgrammedController requires at least one plan")
        self.plans: List[PlanSwitch] = sorted(plans, key=lambda p: p.start_second_of_day)
        starts = [p.start_second_of_day for p in self.plans]
        if len(set(starts)) != len(starts):
            raise ValueError("plan start times must be distinct")
        self._starts = np.asarray(starts, dtype=float)

    def schedule_at(self, t: float) -> LightSchedule:
        tod = float(t) % SECONDS_PER_DAY
        idx = int(np.searchsorted(self._starts, tod, side="right")) - 1
        return self.plans[idx].schedule  # idx == -1 wraps to the last plan

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        if len(self.plans) < 2:
            return []
        out: List[float] = []
        day0 = int(np.floor(t0 / SECONDS_PER_DAY))
        day1 = int(np.floor(t1 / SECONDS_PER_DAY))
        for day in range(day0, day1 + 1):
            base = day * SECONDS_PER_DAY
            for p in self.plans:
                abs_t = base + p.start_second_of_day
                if t0 <= abs_t < t1:
                    out.append(abs_t)
        return sorted(out)


class ManualController(LightController):
    """Category 3: pre-programmed base with manual override windows.

    Each override is ``(start, end, schedule)`` in absolute seconds.
    Outside overrides it behaves exactly like its base controller —
    matching the paper's description that manually-controlled lights
    "work similar as pre-programmed traffic lights" when unattended.
    """

    def __init__(
        self,
        base: LightController,
        overrides: Sequence[Tuple[float, float, LightSchedule]] = (),
    ) -> None:
        self.base = base
        self.overrides = sorted(overrides, key=lambda o: o[0])
        for (_s0, e0, _), (s1, _e1, _2) in zip(self.overrides, self.overrides[1:]):
            if s1 < e0:
                raise ValueError("manual override windows must not overlap")
        for s, e, _ in self.overrides:
            if e <= s:
                raise ValueError("override end must be after start")

    def schedule_at(self, t: float) -> LightSchedule:
        for s, e, sched in self.overrides:
            if s <= t < e:
                return sched
        return self.base.schedule_at(t)

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        out = set(self.base.plan_switch_times(t0, t1))
        for s, e, _ in self.overrides:
            for edge in (s, e):
                if t0 <= edge < t1:
                    out.add(edge)
        return sorted(out)
