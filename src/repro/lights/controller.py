"""Traffic-light controllers: the three categories of §III, plus the
adaptive tier the paper never tested.

1. :class:`StaticController` — one fixed schedule, never changes
   (the majority of Shenzhen lights, per the paper's police interview).
2. :class:`PreProgrammedController` — multiple time-of-day plans
   (e.g. peak vs off-peak), switching at fixed seconds-of-day.
3. :class:`ManualController` — a pre-programmed base plus ad-hoc manual
   override windows (police-controlled arterials).  The paper's system
   targets the first two; the manual controller exists so the evaluation
   can show what its traces look like.
4. **Adaptive controllers** (:class:`ActuatedController`,
   :class:`GapActuatedController`, :class:`FuzzyController`) — green
   durations respond to observed demand (queue length, arrival
   headways).  These power the identifiability-frontier evaluation
   (:mod:`repro.eval.frontier`): how demand-responsive can a signal get
   before the §IV–§VII identification pipeline collapses?

A controller answers ``schedule_at(t)`` — the :class:`LightSchedule` in
force at absolute time ``t`` — plus convenience phase queries that
delegate to it.  Adaptive controllers keep this contract *exact* by
realizing a piecewise-fixed timeline: each realized cycle is one
anchored :class:`LightSchedule` segment, decided from demand observed
strictly before the segment starts, so every downstream phase query is
a pure function of the realized history.  Absolute time ``t=0`` is
midnight of simulation day 0; time-of-day is ``t mod 86400``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import check_in_range, check_nonnegative, check_positive
from .schedule import LightSchedule, Phase

__all__ = [
    "SECONDS_PER_DAY",
    "ADAPTIVE_KINDS",
    "LightController",
    "StaticController",
    "PreProgrammedController",
    "ManualController",
    "PlanSwitch",
    "DemandSignal",
    "DemandFn",
    "AdaptiveController",
    "ActuatedController",
    "GapActuatedController",
    "FuzzyController",
]

SECONDS_PER_DAY = 86_400.0

#: The demand-responsive controller kinds (scenario/CLI vocabulary).
ADAPTIVE_KINDS = ("actuated", "gap", "fuzzy")

#: Two realized cycles count as the same plan within this tolerance.
_PLAN_TOL_S = 1e-9


class LightController:
    """Abstract controller interface."""

    def schedule_at(self, t: float) -> LightSchedule:
        """The schedule in force at absolute time ``t``."""
        raise NotImplementedError

    # -- delegating phase helpers --------------------------------------
    def is_red(self, t: float) -> bool:
        """Whether the light is red at absolute time ``t``."""
        return bool(self.schedule_at(t).is_red(t))

    def is_green(self, t: float) -> bool:
        """Whether the light is green at absolute time ``t``."""
        return not self.is_red(t)

    def phase(self, t: float) -> str:
        """Phase constant at absolute time ``t``."""
        return Phase.RED if self.is_red(t) else Phase.GREEN

    def wait_if_arriving(self, t: float) -> float:
        """Remaining red time for an arrival at ``t`` (0 when green)."""
        return self.schedule_at(t).wait_if_arriving(t)

    def next_change(self, t: float) -> Tuple[float, str]:
        """Next signal change strictly after ``t`` according to the
        schedule in force at ``t`` (a plan switch inside the returned
        interval may cut the predicted phase short; adaptive
        controllers' piecewise segments make the prediction exact)."""
        return self.schedule_at(t).next_change(t)

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        """Absolute times in ``[t0, t1)`` at which the scheduling *plan*
        changes — the ground truth for §VII's scheduling-change
        identification.  Static lights return ``[]``."""
        return []


@dataclass(frozen=True)
class StaticController(LightController):
    """Category 1: a single schedule forever."""

    schedule: LightSchedule

    def schedule_at(self, t: float) -> LightSchedule:
        return self.schedule


@dataclass(frozen=True)
class PlanSwitch:
    """One time-of-day plan entry: *schedule* applies from
    ``start_second_of_day`` until the next entry's start."""

    start_second_of_day: float
    schedule: LightSchedule

    def __post_init__(self) -> None:
        check_in_range("start_second_of_day", self.start_second_of_day, 0.0, SECONDS_PER_DAY, inclusive=True)


class PreProgrammedController(LightController):
    """Category 2: time-of-day plans repeating every day.

    Parameters
    ----------
    plans:
        Plan entries sorted (or sortable) by ``start_second_of_day``.
        The plan with the latest start wraps around past midnight: if
        the first entry starts at 07:00, times in [00:00, 07:00) use the
        last entry's schedule.
    """

    def __init__(self, plans: Sequence[PlanSwitch]) -> None:
        if not plans:
            raise ValueError("PreProgrammedController requires at least one plan")
        self.plans: List[PlanSwitch] = sorted(plans, key=lambda p: p.start_second_of_day)
        starts = [p.start_second_of_day for p in self.plans]
        if len(set(starts)) != len(starts):
            raise ValueError("plan start times must be distinct")
        self._starts = np.asarray(starts, dtype=float)

    def schedule_at(self, t: float) -> LightSchedule:
        tod = float(t) % SECONDS_PER_DAY
        idx = int(np.searchsorted(self._starts, tod, side="right")) - 1
        return self.plans[idx].schedule  # idx == -1 wraps to the last plan

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        if len(self.plans) < 2:
            return []
        out: List[float] = []
        day0 = int(np.floor(t0 / SECONDS_PER_DAY))
        day1 = int(np.floor(t1 / SECONDS_PER_DAY))
        for day in range(day0, day1 + 1):
            base = day * SECONDS_PER_DAY
            for p in self.plans:
                abs_t = base + p.start_second_of_day
                if t0 <= abs_t < t1:
                    out.append(abs_t)
        return sorted(out)


class ManualController(LightController):
    """Category 3: pre-programmed base with manual override windows.

    Each override is ``(start, end, schedule)`` in absolute seconds.
    Outside overrides it behaves exactly like its base controller —
    matching the paper's description that manually-controlled lights
    "work similar as pre-programmed traffic lights" when unattended.
    """

    def __init__(
        self,
        base: LightController,
        overrides: Sequence[Tuple[float, float, LightSchedule]] = (),
    ) -> None:
        self.base = base
        self.overrides = sorted(overrides, key=lambda o: o[0])
        for (_s0, e0, _), (s1, _e1, _2) in zip(self.overrides, self.overrides[1:]):
            if s1 < e0:
                raise ValueError("manual override windows must not overlap")
        for s, e, _ in self.overrides:
            if e <= s:
                raise ValueError("override end must be after start")

    def schedule_at(self, t: float) -> LightSchedule:
        for s, e, sched in self.overrides:
            if s <= t < e:
                return sched
        return self.base.schedule_at(t)

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        out = set(self.base.plan_switch_times(t0, t1))
        for s, e, _ in self.overrides:
            for edge in (s, e):
                if t0 <= edge < t1:
                    out.add(edge)
        return sorted(out)


# ---------------------------------------------------------------------------
# Category 4: demand-responsive (adaptive) controllers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DemandSignal:
    """Demand observed on one approach over a decision window.

    ``queue_len`` is the peak number of queued vehicles in the window;
    ``headway_s`` is the mean arrival headway (``inf`` when fewer than
    two arrivals were seen — an empty approach).
    """

    queue_len: float
    headway_s: float

    def __post_init__(self) -> None:
        check_nonnegative("queue_len", self.queue_len)
        if not self.headway_s > 0.0:
            raise ValueError(f"headway_s must be positive, got {self.headway_s}")


#: Demand source: maps a half-open window ``[t0, t1)`` to the
#: :class:`DemandSignal` observed over it.  Called only for windows
#: strictly before the cycle being decided, so feedback stays causal.
DemandFn = Callable[[float, float], DemandSignal]


class AdaptiveController(LightController):
    """Base class for demand-responsive control (category 4).

    The controller realizes an *effective* piecewise-fixed timeline,
    one anchored :class:`LightSchedule` segment per signal cycle: cycle
    ``k`` starting at ``s_k`` runs red for the base plan's red duration
    and then green for a demand-dependent duration, so the segment is
    ``LightSchedule(cycle_s=red+green, red_s=red, offset_s=s_k)`` and
    ``s_{k+1} = s_k + red + green``.  The green duration blends the
    base plan with the subclass's demand response::

        green_k = (1 - alpha) * base.green_s + alpha * raw_k

    clipped to ``[min_green_s, max_green_factor * base.green_s]``.
    ``alpha=0`` reproduces the fixed plan **bit-for-bit** (the base
    schedule object is returned directly, no realization happens);
    ``alpha=1`` is fully demand-driven.

    The decision for cycle ``k`` uses demand observed over the previous
    cycle's window ``[s_k - c_{k-1}, s_k)`` — strictly in the past, so
    queries at time ``t`` never need demand recorded at or after ``t``
    (the causality contract the live sim binding relies on).

    Realization is lazy, deterministic, and append-only: any query at
    time ``t`` extends the timeline through ``t`` and memoizes it, so
    repeated queries are pure.  ``demand=None`` marks the controller as
    needing live feedback (:attr:`needs_feedback`); the queueing sim
    binds its per-approach recorder via :meth:`bind_demand` at run
    start.  An optional programmed plan switch (``base2`` at
    ``switch_at_s``) changes the base plan under adaptation: the first
    cycle starting at or after ``switch_at_s`` uses ``base2``.
    """

    def __init__(
        self,
        base: LightSchedule,
        *,
        alpha: float = 1.0,
        demand: Optional[DemandFn] = None,
        anchor_t: float = 0.0,
        base2: Optional[LightSchedule] = None,
        switch_at_s: Optional[float] = None,
        min_green_s: float = 5.0,
        max_green_factor: float = 2.5,
        max_realized_cycles: int = 500_000,
    ) -> None:
        self.base = base
        self.alpha = check_in_range("alpha", float(alpha), 0.0, 1.0, inclusive=True)
        if (base2 is None) != (switch_at_s is None):
            raise ValueError("base2 and switch_at_s must be given together")
        self.base2 = base2
        self.switch_at_s = None if switch_at_s is None else float(switch_at_s)
        self.min_green_s = check_positive("min_green_s", float(min_green_s))
        self.max_green_factor = check_positive("max_green_factor", float(max_green_factor))
        if max_realized_cycles < 1:
            raise ValueError(f"max_realized_cycles must be >= 1, got {max_realized_cycles}")
        self.max_realized_cycles = int(max_realized_cycles)
        self._demand = demand
        self._sim_bound = False
        self._starts: List[float] = []
        self._schedules: List[LightSchedule] = []
        self._start0 = 0.0
        self._frontier = 0.0
        self._anchor(float(anchor_t))

    # -- demand wiring -------------------------------------------------
    @property
    def needs_feedback(self) -> bool:
        """True when no demand source is bound yet (the live sim must
        bind one before this controller can realize any cycle)."""
        return self._demand is None

    @property
    def sim_bound(self) -> bool:
        """True when the current demand source is a per-run sim recorder
        (bound via :meth:`bind_sim_demand`); such bindings are stale
        outside their run and get replaced at the next run start."""
        return self._sim_bound

    def bind_demand(self, demand: DemandFn, *, anchor_t: float) -> None:
        """Bind (or replace) the demand source and restart realization
        with cycle 0 anchored at the first base-grid cycle boundary at
        or after ``anchor_t`` (times before it follow the base plan,
        phase-continuously — grid boundaries start red).  One binding
        drives one realized timeline; the sim rebinds at the start of
        every run."""
        self._demand = demand
        self._sim_bound = False
        self._anchor(float(anchor_t))

    def bind_sim_demand(self, demand: DemandFn, *, anchor_t: float) -> None:
        """:meth:`bind_demand`, marked per-run: the queueing sim binds
        its recorder through this so a controller reused across runs —
        or shared by same-approach segments, each adapting to its own
        approach's traffic — is re-bound instead of replaying a stale
        recorder."""
        self.bind_demand(demand, anchor_t=anchor_t)
        self._sim_bound = True

    def _anchor(self, t: float) -> None:
        check_nonnegative("anchor_t", t)
        k = math.ceil((t - self.base.offset_s) / self.base.cycle_s)
        start0 = self.base.offset_s + k * self.base.cycle_s
        if start0 < t:
            start0 += self.base.cycle_s
        self._start0 = start0
        self._starts = []
        self._schedules = []
        self._frontier = start0

    # -- the subclass hook ---------------------------------------------
    def _adaptive_green(self, base: LightSchedule, signal: DemandSignal) -> float:
        """Raw (pre-blend, pre-clip) green duration for one cycle."""
        raise NotImplementedError

    # -- realization ---------------------------------------------------
    def _base_for(self, start: float) -> LightSchedule:
        if self.base2 is not None and self.switch_at_s is not None and start >= self.switch_at_s:
            return self.base2
        return self.base

    def _observe(self, t0: float, t1: float) -> DemandSignal:
        if self._demand is None:
            raise ValueError(
                "adaptive controller has no demand source bound; pass demand= "
                "or let the queueing sim bind its recorder (needs_feedback)"
            )
        return self._demand(t0, t1)

    def _blend_green(self, base: LightSchedule, signal: DemandSignal) -> float:
        raw = self._adaptive_green(base, signal)
        green = (1.0 - self.alpha) * base.green_s + self.alpha * raw
        lo = min(self.min_green_s, base.green_s)
        hi = self.max_green_factor * base.green_s
        return float(min(max(green, lo), hi))

    def _extend_to(self, t: float) -> None:
        while self._frontier <= t:
            if len(self._starts) >= self.max_realized_cycles:
                raise ValueError(
                    f"adaptive realization exceeded max_realized_cycles="
                    f"{self.max_realized_cycles} (query at t={t!r}); "
                    "re-anchor with bind_demand or raise the limit"
                )
            start = self._frontier
            base = self._base_for(start)
            lookback = self._schedules[-1].cycle_s if self._schedules else base.cycle_s
            signal = self._observe(start - lookback, start)
            green = self._blend_green(base, signal)
            sched = LightSchedule(cycle_s=base.red_s + green, red_s=base.red_s, offset_s=start)
            self._starts.append(start)
            self._schedules.append(sched)
            self._frontier = start + sched.cycle_s

    def _is_static_shortcut(self) -> bool:
        return self.alpha == 0.0 and self.base2 is None

    # -- LightController interface -------------------------------------
    def schedule_at(self, t: float) -> LightSchedule:
        if self._is_static_shortcut():
            return self.base
        tf = float(t)
        if tf < self._start0:
            return self._base_for(tf)
        self._extend_to(tf)
        idx = bisect_right(self._starts, tf) - 1
        return self._schedules[idx]

    def plan_switch_times(self, t0: float, t1: float) -> List[float]:
        if self._is_static_shortcut():
            return []
        self._extend_to(float(t1))
        out: List[float] = []
        # Before the anchor the base plan governs, so the first realized
        # segment is compared against it: the handoff itself can be the
        # first plan change.
        prev = self._base_for(self._start0)
        for start, sched in zip(self._starts, self._schedules):
            if t0 <= start < t1 and (
                abs(sched.cycle_s - prev.cycle_s) > _PLAN_TOL_S
                or abs(sched.red_s - prev.red_s) > _PLAN_TOL_S
            ):
                out.append(start)
            prev = sched
        return out

    def realized_cycles(self, t0: float, t1: float) -> List[Tuple[float, LightSchedule]]:
        """Realized ``(start, effective schedule)`` segments overlapping
        ``[t0, t1)``, realizing through ``t1`` if needed (the
        ``alpha=0`` shortcut is bypassed so the realized timeline is
        inspectable in every configuration)."""
        self._extend_to(float(t1))
        return [
            (start, sched)
            for start, sched in zip(self._starts, self._schedules)
            if start < t1 and start + sched.cycle_s > t0
        ]


class ActuatedController(AdaptiveController):
    """Queue-actuated green extension.

    Green extends past the base plan by ``extension_per_vehicle_s`` for
    every queued vehicle above ``queue_threshold`` — the classic
    presence-detector extension: the longer the standing queue when the
    decision is made, the longer the green that serves it.
    """

    def __init__(
        self,
        base: LightSchedule,
        *,
        alpha: float = 1.0,
        demand: Optional[DemandFn] = None,
        anchor_t: float = 0.0,
        base2: Optional[LightSchedule] = None,
        switch_at_s: Optional[float] = None,
        min_green_s: float = 5.0,
        max_green_factor: float = 2.5,
        max_realized_cycles: int = 500_000,
        queue_threshold: float = 2.0,
        extension_per_vehicle_s: float = 2.0,
    ) -> None:
        super().__init__(
            base,
            alpha=alpha,
            demand=demand,
            anchor_t=anchor_t,
            base2=base2,
            switch_at_s=switch_at_s,
            min_green_s=min_green_s,
            max_green_factor=max_green_factor,
            max_realized_cycles=max_realized_cycles,
        )
        self.queue_threshold = check_nonnegative("queue_threshold", float(queue_threshold))
        self.extension_per_vehicle_s = check_nonnegative(
            "extension_per_vehicle_s", float(extension_per_vehicle_s)
        )

    def _adaptive_green(self, base: LightSchedule, signal: DemandSignal) -> float:
        excess = max(signal.queue_len - self.queue_threshold, 0.0)
        return base.green_s + self.extension_per_vehicle_s * excess


class GapActuatedController(AdaptiveController):
    """Gap-out control: green lasts while arrival headways stay short.

    The gap-out chance per unit extension is the probability that a
    headway exceeds ``gap_s`` under exponential headways with the
    observed mean, ``p = exp(-gap_s / headway)``; the expected green is
    the minimum green plus ``unit_extension_s`` extensions until the
    first gap-out, ``min_green_s + unit_extension_s * (1 - p) / p``.
    Dense platoons (short headways) hold the green toward the max-green
    clip; an empty approach (``headway = inf``) gaps out immediately at
    the minimum green.
    """

    def __init__(
        self,
        base: LightSchedule,
        *,
        alpha: float = 1.0,
        demand: Optional[DemandFn] = None,
        anchor_t: float = 0.0,
        base2: Optional[LightSchedule] = None,
        switch_at_s: Optional[float] = None,
        min_green_s: float = 5.0,
        max_green_factor: float = 2.5,
        max_realized_cycles: int = 500_000,
        gap_s: float = 4.0,
        unit_extension_s: float = 2.5,
    ) -> None:
        super().__init__(
            base,
            alpha=alpha,
            demand=demand,
            anchor_t=anchor_t,
            base2=base2,
            switch_at_s=switch_at_s,
            min_green_s=min_green_s,
            max_green_factor=max_green_factor,
            max_realized_cycles=max_realized_cycles,
        )
        self.gap_s = check_positive("gap_s", float(gap_s))
        self.unit_extension_s = check_positive("unit_extension_s", float(unit_extension_s))

    def _adaptive_green(self, base: LightSchedule, signal: DemandSignal) -> float:
        h = signal.headway_s
        if math.isinf(h) or math.isnan(h):
            return self.min_green_s
        p = max(math.exp(-self.gap_s / h), 1e-6)
        return self.min_green_s + self.unit_extension_s * (1.0 - p) / p


#: Default fuzzy rule table: rows are queue memberships (low, medium,
#: high), columns are headway memberships (short, medium, long); the
#: entry is the green adjustment in units of ``max_adjust_s``.  High
#: queue + short headways (saturated approach) extends fully; low queue
#: + long headways (empty approach) shrinks fully.
_FUZZY_RULES: Tuple[Tuple[float, float, float], ...] = (
    (0.0, -0.5, -1.0),
    (0.5, 0.0, -0.5),
    (1.0, 0.5, 0.0),
)


def _memberships(x: float) -> Tuple[float, float, float]:
    """Triangular (low, medium, high) memberships of a normalized
    value; the reference point ``x=1`` is fully medium, ``x>=2`` fully
    high, ``x<=0`` fully low."""
    x = min(max(x, 0.0), 2.0)
    low = max(1.0 - x, 0.0)
    mid = max(1.0 - abs(x - 1.0), 0.0)
    high = min(max(x - 1.0, 0.0), 1.0)
    return low, mid, high


class FuzzyController(AdaptiveController):
    """Rule-table fuzzy control over (queue, headway).

    Queue length and headway are normalized by their reference values,
    fuzzified into (low, medium, high) / (short, medium, long)
    triangular memberships, combined through a 3x3 rule table with
    ``min`` conjunction, and defuzzified by weighted average into a
    green adjustment in ``[-max_adjust_s, +max_adjust_s]`` around the
    base green.
    """

    def __init__(
        self,
        base: LightSchedule,
        *,
        alpha: float = 1.0,
        demand: Optional[DemandFn] = None,
        anchor_t: float = 0.0,
        base2: Optional[LightSchedule] = None,
        switch_at_s: Optional[float] = None,
        min_green_s: float = 5.0,
        max_green_factor: float = 2.5,
        max_realized_cycles: int = 500_000,
        queue_ref: float = 6.0,
        headway_ref_s: float = 8.0,
        max_adjust_s: float = 20.0,
        rules: Optional[Tuple[Tuple[float, float, float], ...]] = None,
    ) -> None:
        super().__init__(
            base,
            alpha=alpha,
            demand=demand,
            anchor_t=anchor_t,
            base2=base2,
            switch_at_s=switch_at_s,
            min_green_s=min_green_s,
            max_green_factor=max_green_factor,
            max_realized_cycles=max_realized_cycles,
        )
        self.queue_ref = check_positive("queue_ref", float(queue_ref))
        self.headway_ref_s = check_positive("headway_ref_s", float(headway_ref_s))
        self.max_adjust_s = check_positive("max_adjust_s", float(max_adjust_s))
        table = _FUZZY_RULES if rules is None else rules
        if len(table) != 3 or any(len(row) != 3 for row in table):
            raise ValueError("fuzzy rules must be a 3x3 table")
        for row in table:
            for v in row:
                check_in_range("fuzzy rule", float(v), -1.0, 1.0, inclusive=True)
        self.rules = tuple(tuple(float(v) for v in row) for row in table)

    def _adaptive_green(self, base: LightSchedule, signal: DemandSignal) -> float:
        mq = _memberships(signal.queue_len / self.queue_ref)
        h = signal.headway_s
        x_h = 2.0 if not math.isfinite(h) else h / self.headway_ref_s
        mh = _memberships(x_h)
        num = 0.0
        den = 0.0
        for qi in range(3):
            for hi in range(3):
                w = min(mq[qi], mh[hi])
                num += w * self.rules[qi][hi]
                den += w
        adjust = 0.0 if den == 0.0 else num / den
        return base.green_s + self.max_adjust_s * adjust
