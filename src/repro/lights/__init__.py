"""Traffic-light substrate: schedules, controllers, intersection groups.

Implements the paper's signal model (Fig. 3), the three controller
categories of §III (static, pre-programmed dynamic, manual), and the
adaptive tier beyond the paper (actuated / gap-actuated / fuzzy
demand-responsive control) used by the identifiability-frontier eval.
"""

from .controller import (
    ADAPTIVE_KINDS,
    SECONDS_PER_DAY,
    ActuatedController,
    AdaptiveController,
    DemandFn,
    DemandSignal,
    FuzzyController,
    GapActuatedController,
    LightController,
    ManualController,
    PlanSwitch,
    PreProgrammedController,
    StaticController,
)
from .intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
    make_intersection_signals,
)
from .schedule import LightSchedule, Phase

__all__ = [
    "ADAPTIVE_KINDS",
    "SECONDS_PER_DAY",
    "ActuatedController",
    "AdaptiveController",
    "DemandFn",
    "DemandSignal",
    "FuzzyController",
    "GapActuatedController",
    "LightController",
    "ManualController",
    "PlanSwitch",
    "PreProgrammedController",
    "StaticController",
    "IntersectionSignals",
    "SignalPlan",
    "attach_signals_to_network",
    "make_intersection_signals",
    "LightSchedule",
    "Phase",
]
