"""Traffic-light substrate: schedules, controllers, intersection groups.

Implements the paper's signal model (Fig. 3) and the three controller
categories of §III (static, pre-programmed dynamic, manual).
"""

from .controller import (
    SECONDS_PER_DAY,
    LightController,
    ManualController,
    PlanSwitch,
    PreProgrammedController,
    StaticController,
)
from .intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
    make_intersection_signals,
)
from .schedule import LightSchedule, Phase

__all__ = [
    "SECONDS_PER_DAY",
    "LightController",
    "ManualController",
    "PlanSwitch",
    "PreProgrammedController",
    "StaticController",
    "IntersectionSignals",
    "SignalPlan",
    "attach_signals_to_network",
    "make_intersection_signals",
    "LightSchedule",
    "Phase",
]
