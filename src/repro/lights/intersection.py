"""Per-intersection signal groups.

A signalized crossroad runs two complementary phase groups — North-South
and East-West — that share one cycle length (the empirical fact behind
the paper's intersection-based enhancement, §V.B).  This module binds a
:class:`~repro.lights.controller.LightController` to each approach group
of an intersection and exposes lookups by segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..network.roadnet import Approach, RoadNetwork, Segment
from .controller import (
    LightController,
    PlanSwitch,
    PreProgrammedController,
    StaticController,
)
from .schedule import LightSchedule

__all__ = ["IntersectionSignals", "SignalPlan", "make_intersection_signals"]


@dataclass(frozen=True)
class SignalPlan:
    """Parameters for one time-of-day plan at an intersection.

    ``ns_red_s`` is the red duration seen by the North-South approaches;
    East-West sees the complement (``cycle_s − ns_red_s``).
    """

    cycle_s: float
    ns_red_s: float
    offset_s: float = 0.0
    start_second_of_day: float = 0.0

    def ns_schedule(self) -> LightSchedule:
        """Schedule of the NS approach group."""
        return LightSchedule(self.cycle_s, self.ns_red_s, self.offset_s)

    def ew_schedule(self) -> LightSchedule:
        """Schedule of the EW approach group (complement of NS)."""
        return self.ns_schedule().complement()


class IntersectionSignals:
    """Signal controllers of one intersection, keyed by approach group.

    Parameters
    ----------
    intersection_id:
        Node id within the road network.
    controllers:
        Mapping ``{"NS": controller, "EW": controller}``.
    """

    def __init__(self, intersection_id: int, controllers: Dict[str, LightController]) -> None:
        missing = {Approach.NS, Approach.EW} - set(controllers)
        if missing:
            raise ValueError(f"missing controllers for approach groups: {sorted(missing)}")
        self.intersection_id = intersection_id
        self.controllers = dict(controllers)

    def controller_for(self, approach: str) -> LightController:
        """Controller of an approach group (``"NS"`` or ``"EW"``)."""
        return self.controllers[approach]

    def controller_for_segment(self, segment: Segment) -> LightController:
        """Controller governing a directed segment arriving here."""
        if segment.to_id != self.intersection_id:
            raise ValueError(
                f"segment {segment.id} ends at {segment.to_id}, not {self.intersection_id}"
            )
        return self.controllers[segment.approach]

    def schedule_at(self, approach: str, t: float) -> LightSchedule:
        """Schedule of an approach group at absolute time ``t``."""
        return self.controllers[approach].schedule_at(t)

    def shared_cycle_at(self, t: float) -> float:
        """The (shared) cycle length at time ``t``.

        Raises if the two groups disagree — by construction of
        :func:`make_intersection_signals` they never do, and the paper's
        enhancement relies on this invariant.
        """
        ns = self.controllers[Approach.NS].schedule_at(t).cycle_s
        ew = self.controllers[Approach.EW].schedule_at(t).cycle_s
        if abs(ns - ew) > 1e-9:
            raise RuntimeError(
                f"intersection {self.intersection_id}: NS cycle {ns} != EW cycle {ew}"
            )
        return ns


def make_intersection_signals(
    intersection_id: int,
    plans: List[SignalPlan],
) -> IntersectionSignals:
    """Build complementary NS/EW controllers from one or more plans.

    A single plan yields :class:`StaticController`s (category 1); several
    plans yield :class:`PreProgrammedController`s switching at their
    ``start_second_of_day`` (category 2).  Both groups always share each
    plan's cycle length.
    """
    if not plans:
        raise ValueError("at least one SignalPlan is required")
    if len(plans) == 1:
        p = plans[0]
        return IntersectionSignals(
            intersection_id,
            {
                Approach.NS: StaticController(p.ns_schedule()),
                Approach.EW: StaticController(p.ew_schedule()),
            },
        )
    ns = PreProgrammedController(
        [PlanSwitch(p.start_second_of_day, p.ns_schedule()) for p in plans]
    )
    ew = PreProgrammedController(
        [PlanSwitch(p.start_second_of_day, p.ew_schedule()) for p in plans]
    )
    return IntersectionSignals(intersection_id, {Approach.NS: ns, Approach.EW: ew})


def attach_signals_to_network(
    net: RoadNetwork,
    plans_by_intersection: Dict[int, List[SignalPlan]],
) -> Dict[int, IntersectionSignals]:
    """Create :class:`IntersectionSignals` for every signalized node.

    Missing entries in *plans_by_intersection* raise, so a scenario can't
    silently leave a light uncontrolled.
    """
    out: Dict[int, IntersectionSignals] = {}
    for node in net.signalized_intersections():
        if node.id not in plans_by_intersection:
            raise ValueError(f"no signal plans provided for intersection {node.id}")
        out[node.id] = make_intersection_signals(node.id, plans_by_intersection[node.id])
    return out
