"""Process-pool fan-out helpers.

The paper notes that after partitioning by nearest traffic light, "the
traffic light scheduling identification algorithm for different traffic
lights can be easily paralleled".  This module is that layer: a chunked,
deterministically-seeded ``pmap`` over processes, following the HPC
guide idioms (vectorized inner loops, process-level outer parallelism,
and measurement before optimization).

Workers receive picklable ``(func, item)`` pairs; per-item seeds are
derived with :func:`repro._util.seed_sequence_for` so results are
reproducible regardless of scheduling order or worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import seed_sequence_for

__all__ = ["pmap", "pmap_seeded", "default_workers"]


def default_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: ``max_workers`` if given, else ``cpu_count`` capped at 8.

    The cap keeps test/bench runs polite on shared machines while still
    exercising real multi-process execution.
    """
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        return max_workers
    return min(os.cpu_count() or 1, 8)


def _chunks(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split *items* into at most *n_chunks* contiguous, balanced runs."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [items[bounds[i]:bounds[i + 1]] for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


def _apply_chunk(func: Callable, chunk: Sequence) -> List:
    return [func(item) for item in chunk]


def _apply_chunk_seeded(
    func: Callable, chunk: Sequence[Tuple[int, Any]], base_seed: int
) -> List:
    out = []
    for index, item in chunk:
        rng = np.random.default_rng(seed_sequence_for(base_seed, index))
        out.append(func(item, rng))
    return out


def pmap(
    func: Callable[[Any], Any],
    items: Sequence,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
) -> List:
    """Parallel ``[func(x) for x in items]`` preserving order.

    Parameters
    ----------
    func:
        Picklable callable (top-level function or functools.partial).
    items:
        Work items; results come back in the same order.
    max_workers:
        Process count (default: capped cpu count).
    chunks_per_worker:
        Over-decomposition factor for load balance on skewed items
        (e.g. the 25× record-count imbalance of Table II).
    serial:
        Run in-process (debugging, or when *items* is tiny).
    """
    items = list(items)
    if not items:
        return []
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        return [func(x) for x in items]
    chunks = _chunks(items, workers * chunks_per_worker)
    results: List[List] = []
    with ProcessPoolExecutor(max_workers=workers) as ex:
        for part in ex.map(_apply_chunk, [func] * len(chunks), chunks):
            results.append(part)
    return [y for part in results for y in part]


def pmap_seeded(
    func: Callable[[Any, np.random.Generator], Any],
    items: Sequence,
    base_seed: int,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
) -> List:
    """Like :func:`pmap` but passes each call an independent RNG.

    ``func(item, rng)`` receives a generator seeded from
    ``(base_seed, item_index)`` — bitwise-identical results whether run
    serially or across any number of processes.
    """
    items = list(items)
    if not items:
        return []
    indexed = list(enumerate(items))
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        return _apply_chunk_seeded(func, indexed, base_seed)
    chunks = _chunks(indexed, workers * chunks_per_worker)
    results: List[List] = []
    with ProcessPoolExecutor(max_workers=workers) as ex:
        for part in ex.map(
            _apply_chunk_seeded, [func] * len(chunks), chunks, [base_seed] * len(chunks)
        ):
            results.append(part)
    return [y for part in results for y in part]
