"""Process-pool fan-out helpers.

The paper notes that after partitioning by nearest traffic light, "the
traffic light scheduling identification algorithm for different traffic
lights can be easily paralleled".  This module is that layer: a chunked,
deterministically-seeded ``pmap`` over processes, following the HPC
guide idioms (vectorized inner loops, process-level outer parallelism,
and measurement before optimization).

Workers receive picklable ``(func, item)`` pairs; per-item seeds are
derived with :func:`repro._util.seed_sequence_for` so results are
reproducible regardless of scheduling order or worker count.

Fault containment: by default an exception in any item aborts the whole
map (``on_error="raise"``, the historical behavior).  Citywide fan-outs
instead pass ``on_error="return"``, which converts each failed item
into a :class:`WorkerError` placed at the item's position — one
poisoned work item can no longer sink the other items sharing its
chunk, and the caller gets the exception class, message, and traceback
to report.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import as_rng, seed_sequence_for

__all__ = [
    "pmap",
    "pmap_seeded",
    "default_workers",
    "WorkerError",
    "get_common",
    "run_guarded",
]

#: Accepted ``on_error`` policies.
ON_ERROR = ("raise", "return")

#: Per-process shared object installed by ``pmap(..., common=...)``.
_WORKER_COMMON: Any = None


def _set_common(value: Any) -> None:
    global _WORKER_COMMON
    _WORKER_COMMON = value


def get_common() -> Any:
    """The object passed as ``pmap``'s ``common`` argument.

    ``pmap(..., common=obj)`` pickles ``obj`` **once per worker
    process** (via the executor initializer) instead of once per work
    item; worker functions retrieve it here.  ``None`` outside a
    ``common``-carrying map.  The serial path installs and restores the
    same global, so worker code is identical either way.
    """
    return _WORKER_COMMON


@dataclass(frozen=True)
class WorkerError:
    """Picklable record of one failed work item (``on_error="return"``).

    Attributes
    ----------
    index:
        Position of the failed item in the input sequence.
    error_type:
        Exception class name raised by ``func(item)``.
    message:
        Exception message.
    traceback:
        Formatted traceback captured inside the worker, for debugging
        failures that only reproduce under the pool.
    """

    index: int
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"item {self.index}: {self.error_type}: {self.message}"


def _available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count`` reports the machine, not the process: under CPU
    affinity masks or cgroup limits (typical CI runners) it
    oversubscribes the pool.  ``sched_getaffinity`` reflects the real
    allowance where the platform provides it.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def default_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: ``max_workers`` if given, else available CPUs capped at 8.

    The cap keeps test/bench runs polite on shared machines while still
    exercising real multi-process execution.
    """
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        return max_workers
    return min(_available_cpus(), 8)


def _chunks(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split *items* into at most *n_chunks* contiguous, balanced runs."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [items[bounds[i]:bounds[i + 1]] for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


def _check_on_error(on_error: str) -> None:
    if on_error not in ON_ERROR:
        raise ValueError(f"on_error must be one of {ON_ERROR}, got {on_error!r}")


def run_guarded(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Run ``func(*args, **kwargs)``, converting any exception into a
    :class:`WorkerError`.

    This is one of the two sanctioned containment seams (with the
    per-light wrapper in :mod:`repro.core.pipeline`): code that must
    survive arbitrary per-item failures routes the risky call through
    here and branches on ``isinstance(result, WorkerError)`` instead of
    writing its own catch-all handler — the REP002 invariant keeps
    broad ``except`` out of everywhere else.

    ``index`` is ``-1`` until the caller fills in the item's position
    (``pmap`` does, via :func:`_fill_indices`).
    """
    try:
        return func(*args, **kwargs)
    except Exception as exc:  # repro: allow[REP002] - the containment seam itself
        return WorkerError(
            index=-1,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(limit=20),
        )


def _fill_indices(results: List) -> List:
    return [
        replace(r, index=i) if isinstance(r, WorkerError) else r
        for i, r in enumerate(results)
    ]


def _apply_chunk(func: Callable, chunk: Sequence, on_error: str) -> List:
    if on_error == "return":
        return [run_guarded(func, item) for item in chunk]
    return [func(item) for item in chunk]


def _apply_chunk_seeded(
    func: Callable, chunk: Sequence[Tuple[int, Any]], base_seed: int, on_error: str
) -> List:
    out = []
    for index, item in chunk:
        rng = as_rng(seed_sequence_for(base_seed, index))
        if on_error == "return":
            out.append(run_guarded(func, item, rng))
        else:
            out.append(func(item, rng))
    return out


def pmap(
    func: Callable[[Any], Any],
    items: Sequence,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
    on_error: str = "raise",
    common: Any = None,
) -> List:
    """Parallel ``[func(x) for x in items]`` preserving order.

    Parameters
    ----------
    func:
        Picklable callable (top-level function or functools.partial).
    items:
        Work items; results come back in the same order.
    max_workers:
        Process count (default: capped available-CPU count).
    chunks_per_worker:
        Over-decomposition factor for load balance on skewed items
        (e.g. the 25× record-count imbalance of Table II).
    serial:
        Run in-process (debugging, or when *items* is tiny).
    on_error:
        ``"raise"`` propagates the first exception (aborting the map);
        ``"return"`` puts a :class:`WorkerError` at the failed item's
        position and keeps going.  Identical semantics serial or
        parallel.
    common:
        Optional shared object shipped to each worker process **once**
        (executor initializer) rather than once per item; workers read
        it back with :func:`get_common`.  Used to share a
        :class:`~repro.trace.store.PartitionStore` across a citywide
        fan-out.  Identical semantics serial or parallel.
    """
    _check_on_error(on_error)
    items = list(items)
    if not items:
        return []
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        if common is None:
            return _fill_indices(_apply_chunk(func, items, on_error))
        previous = get_common()
        _set_common(common)
        try:
            return _fill_indices(_apply_chunk(func, items, on_error))
        finally:
            _set_common(previous)
    chunks = _chunks(items, workers * chunks_per_worker)
    init_kwargs = (
        {} if common is None
        else {"initializer": _set_common, "initargs": (common,)}
    )
    results: List[List] = []
    with ProcessPoolExecutor(max_workers=workers, **init_kwargs) as ex:
        for part in ex.map(
            _apply_chunk, [func] * len(chunks), chunks, [on_error] * len(chunks)
        ):
            results.append(part)
    return _fill_indices([y for part in results for y in part])


def pmap_seeded(
    func: Callable[[Any, np.random.Generator], Any],
    items: Sequence,
    base_seed: int,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
    on_error: str = "raise",
) -> List:
    """Like :func:`pmap` but passes each call an independent RNG.

    ``func(item, rng)`` receives a generator seeded from
    ``(base_seed, item_index)`` — bitwise-identical results whether run
    serially or across any number of processes.
    """
    _check_on_error(on_error)
    items = list(items)
    if not items:
        return []
    indexed = list(enumerate(items))
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        return _fill_indices(_apply_chunk_seeded(func, indexed, base_seed, on_error))
    chunks = _chunks(indexed, workers * chunks_per_worker)
    results: List[List] = []
    with ProcessPoolExecutor(max_workers=workers) as ex:
        for part in ex.map(
            _apply_chunk_seeded,
            [func] * len(chunks),
            chunks,
            [base_seed] * len(chunks),
            [on_error] * len(chunks),
        ):
            results.append(part)
    return _fill_indices([y for part in results for y in part])
