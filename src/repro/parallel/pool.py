"""Process-pool fan-out helpers.

The paper notes that after partitioning by nearest traffic light, "the
traffic light scheduling identification algorithm for different traffic
lights can be easily paralleled".  This module is that layer: a chunked,
deterministically-seeded ``pmap`` over processes, following the HPC
guide idioms (vectorized inner loops, process-level outer parallelism,
and measurement before optimization).

Workers receive picklable ``(func, item)`` pairs; per-item seeds are
derived with :func:`repro._util.seed_sequence_for` so results are
reproducible regardless of scheduling order or worker count.

Fault containment: by default an exception in any item aborts the whole
map (``on_error="raise"``, the historical behavior).  Citywide fan-outs
instead pass ``on_error="return"``, which converts each failed item
into a :class:`WorkerError` placed at the item's position — one
poisoned work item can no longer sink the other items sharing its
chunk, and the caller gets the exception class, message, and traceback
to report.
"""

from __future__ import annotations

import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._util import as_rng, seed_sequence_for

__all__ = [
    "pmap",
    "pmap_seeded",
    "default_workers",
    "payload_nbytes",
    "WorkerError",
    "get_common",
    "run_guarded",
]

#: Accepted ``on_error`` policies.
ON_ERROR = ("raise", "return")

#: Per-process shared object installed by ``pmap(..., common=...)``.
_WORKER_COMMON: Any = None


def _set_common(value: Any) -> None:
    global _WORKER_COMMON
    _WORKER_COMMON = value


def get_common() -> Any:
    """The object passed as ``pmap``'s ``common`` argument.

    ``pmap(..., common=obj)`` pickles ``obj`` **once per worker
    process** (via the executor initializer) instead of once per work
    item; worker functions retrieve it here.  ``None`` outside a
    ``common``-carrying map — both dispatch paths install the slot for
    exactly the duration of the map (the serial path snapshots and
    restores it, the pool path re-initializes every worker), so a
    value left over from an earlier run is never visible.
    """
    return _WORKER_COMMON


@contextmanager
def _installed_common(value: Any) -> Iterator[None]:
    """Install *value* as the worker-common slot for one serial dispatch.

    The snapshot/restore is unconditional — it runs for ``None`` too,
    and the ``finally`` overwrites whatever the dispatched function left
    behind — so a worker that raises mid-map, or one that scribbles on
    the slot itself, cannot leak another run's store into the next
    ``pmap`` call.
    """
    previous = _WORKER_COMMON
    _set_common(value)
    try:
        yield
    finally:
        _set_common(previous)


def payload_nbytes(obj: Any) -> int:
    """Bytes *obj* ships across one process boundary (its pickled size).

    The sharded backend's zero-copy contract is stated in these terms:
    a spilled :class:`~repro.trace.store.PartitionStore` must pickle to
    metadata + file paths — never column data — and
    ``pmap(common_bytes_limit=...)`` enforces it at dispatch time.
    """
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass(frozen=True)
class WorkerError:
    """Picklable record of one failed work item (``on_error="return"``).

    Attributes
    ----------
    index:
        Position of the failed item in the input sequence.
    error_type:
        Exception class name raised by ``func(item)``.
    message:
        Exception message.
    traceback:
        Formatted traceback captured inside the worker, for debugging
        failures that only reproduce under the pool.
    """

    index: int
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"item {self.index}: {self.error_type}: {self.message}"


def _available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count`` reports the machine, not the process: under CPU
    affinity masks or cgroup limits (typical CI runners) it
    oversubscribes the pool.  ``sched_getaffinity`` reflects the real
    allowance where the platform provides it.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def default_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: ``max_workers`` if given, else available CPUs capped at 8.

    An explicit ``max_workers`` must be an integral count ≥ 1 — zero,
    negatives, bools, and non-integral values raise here instead of
    silently spawning a broken pool downstream.  The derived default is
    clamped to ≥ 1 so a degenerate affinity mask can never produce an
    empty pool.  The cap keeps test/bench runs polite on shared
    machines while still exercising real multi-process execution.
    """
    if max_workers is not None:
        if isinstance(max_workers, bool) or not isinstance(
            max_workers, (int, np.integer)
        ):
            raise TypeError(
                f"max_workers must be an integer, "
                f"got {type(max_workers).__name__}"
            )
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        return int(max_workers)
    return max(1, min(_available_cpus(), 8))


def _chunks(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split *items* into at most *n_chunks* contiguous, balanced runs."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [items[bounds[i]:bounds[i + 1]] for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


def _check_on_error(on_error: str) -> None:
    if on_error not in ON_ERROR:
        raise ValueError(f"on_error must be one of {ON_ERROR}, got {on_error!r}")


def run_guarded(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Run ``func(*args, **kwargs)``, converting any exception into a
    :class:`WorkerError`.

    This is one of the two sanctioned containment seams (with the
    per-light wrapper in :mod:`repro.core.pipeline`): code that must
    survive arbitrary per-item failures routes the risky call through
    here and branches on ``isinstance(result, WorkerError)`` instead of
    writing its own catch-all handler — the REP002 invariant keeps
    broad ``except`` out of everywhere else.

    ``index`` is ``-1`` until the caller fills in the item's position
    (``pmap`` does, via :func:`_fill_indices`).
    """
    try:
        return func(*args, **kwargs)
    except Exception as exc:  # repro: allow[REP002] - the containment seam itself
        return WorkerError(
            index=-1,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(limit=20),
        )


def _fill_indices(results: List) -> List:
    return [
        replace(r, index=i) if isinstance(r, WorkerError) else r
        for i, r in enumerate(results)
    ]


def _apply_chunk(func: Callable, chunk: Sequence, on_error: str) -> List:
    if on_error == "return":
        return [run_guarded(func, item) for item in chunk]
    return [func(item) for item in chunk]


def _apply_chunk_seeded(
    func: Callable, chunk: Sequence[Tuple[int, Any]], base_seed: int, on_error: str
) -> List:
    out = []
    for index, item in chunk:
        rng = as_rng(seed_sequence_for(base_seed, index))
        if on_error == "return":
            out.append(run_guarded(func, item, rng))
        else:
            out.append(func(item, rng))
    return out


def pmap(
    func: Callable[[Any], Any],
    items: Sequence,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
    on_error: str = "raise",
    common: Any = None,
    common_bytes_limit: Optional[int] = None,
) -> List:
    """Parallel ``[func(x) for x in items]`` preserving order.

    Parameters
    ----------
    func:
        Picklable callable (top-level function or functools.partial).
    items:
        Work items; results come back in the same order.
    max_workers:
        Process count (default: capped available-CPU count).
    chunks_per_worker:
        Over-decomposition factor for load balance on skewed items
        (e.g. the 25× record-count imbalance of Table II).
    serial:
        Run in-process (debugging, or when *items* is tiny).
    on_error:
        ``"raise"`` propagates the first exception (aborting the map);
        ``"return"`` puts a :class:`WorkerError` at the failed item's
        position and keeps going.  Identical semantics serial or
        parallel.
    common:
        Optional shared object shipped to each worker process **once**
        (executor initializer) rather than once per item; workers read
        it back with :func:`get_common`.  Used to share a
        :class:`~repro.trace.store.PartitionStore` across a citywide
        fan-out.  Identical semantics serial or parallel.
    common_bytes_limit:
        Optional ceiling on the **pickled size** of ``common``; a
        larger payload raises ``ValueError`` before any dispatch.  This
        is the zero-copy guard of the sharded backend: a spilled store
        handle stays at metadata scale, so tripping the limit means
        column bytes leaked back into the per-worker pickle.  Checked
        on the serial path too — identical semantics either way.
    """
    _check_on_error(on_error)
    items = list(items)
    if not items:
        return []
    if common is not None and common_bytes_limit is not None:
        shipped = payload_nbytes(common)
        if shipped > common_bytes_limit:
            raise ValueError(
                f"common object pickles to {shipped:,} bytes, over the "
                f"{common_bytes_limit:,}-byte limit — spill the store "
                "to mmap-backed columns before fanning out"
            )
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        with _installed_common(common):
            return _fill_indices(_apply_chunk(func, items, on_error))
    chunks = _chunks(items, workers * chunks_per_worker)
    results: List[List] = []
    # The initializer runs for common=None as well: with a fork start
    # method a fresh worker would otherwise inherit whatever slot value
    # the parent had installed, violating get_common()'s contract.
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_set_common, initargs=(common,)
    ) as ex:
        for part in ex.map(
            _apply_chunk, [func] * len(chunks), chunks, [on_error] * len(chunks)
        ):
            results.append(part)
    return _fill_indices([y for part in results for y in part])


def pmap_seeded(
    func: Callable[[Any, np.random.Generator], Any],
    items: Sequence,
    base_seed: int,
    *,
    max_workers: Optional[int] = None,
    chunks_per_worker: int = 4,
    serial: bool = False,
    on_error: str = "raise",
) -> List:
    """Like :func:`pmap` but passes each call an independent RNG.

    ``func(item, rng)`` receives a generator seeded from
    ``(base_seed, item_index)`` — bitwise-identical results whether run
    serially or across any number of processes.
    """
    _check_on_error(on_error)
    items = list(items)
    if not items:
        return []
    indexed = list(enumerate(items))
    workers = default_workers(max_workers)
    if serial or workers == 1 or len(items) == 1:
        with _installed_common(None):
            return _fill_indices(
                _apply_chunk_seeded(func, indexed, base_seed, on_error)
            )
    chunks = _chunks(indexed, workers * chunks_per_worker)
    results: List[List] = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_set_common, initargs=(None,)
    ) as ex:
        for part in ex.map(
            _apply_chunk_seeded,
            [func] * len(chunks),
            chunks,
            [base_seed] * len(chunks),
            [on_error] * len(chunks),
        ):
            results.append(part)
    return _fill_indices([y for part in results for y in part])
