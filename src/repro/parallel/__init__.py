"""Process-level parallel fan-out utilities."""

from .pool import default_workers, pmap, pmap_seeded

__all__ = ["default_workers", "pmap", "pmap_seeded"]
