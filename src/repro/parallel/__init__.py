"""Process-level parallel fan-out utilities."""

from .pool import (
    WorkerError,
    default_workers,
    get_common,
    pmap,
    pmap_seeded,
    run_guarded,
)

__all__ = [
    "WorkerError",
    "default_workers",
    "get_common",
    "pmap",
    "pmap_seeded",
    "run_guarded",
]
