"""Shared helpers: validation, RNG handling, circular arithmetic.

These are intentionally tiny and dependency-free so every subpackage can
use them without import cycles.
"""

from __future__ import annotations

import numbers
from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "as_rng",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_1d",
    "circular_diff",
    "wrap_mod",
    "seed_sequence_for",
]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator
    (returned unchanged, so callers can thread one RNG through a
    pipeline deterministically).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_sequence_for(base_seed: int, *keys: int) -> np.random.SeedSequence:
    """Derive a child :class:`~numpy.random.SeedSequence` for a work item.

    Used by the process-pool fan-out so each task gets an independent,
    reproducible stream regardless of scheduling order:

    >>> ss = seed_sequence_for(1234, 7)
    >>> as_rng(ss).integers(100) == as_rng(seed_sequence_for(1234, 7)).integers(100)
    True
    """
    return np.random.SeedSequence(entropy=base_seed, spawn_key=tuple(keys))


def check_positive(name: str, value: numbers.Real) -> float:
    """Validate ``value > 0`` and return it as ``float``."""
    v = float(value)
    if not np.isfinite(v) or v <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_nonnegative(name: str, value: numbers.Real) -> float:
    """Validate ``value >= 0`` and return it as ``float``."""
    v = float(value)
    if not np.isfinite(v) or v < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: numbers.Real,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict) and return ``float``."""
    v = float(value)
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} value {op} {high}, got {value!r}")
    return v


def check_1d(
    name: str,
    arr: npt.ArrayLike,
    dtype: npt.DTypeLike = float,
    min_len: int = 0,
) -> np.ndarray:
    """Coerce *arr* to a 1-D ndarray of *dtype*, validating length."""
    a = np.asarray(arr, dtype=dtype)
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {a.shape}")
    if a.shape[0] < min_len:
        raise ValueError(f"{name} must have at least {min_len} elements, got {a.shape[0]}")
    return a


def wrap_mod(value: npt.ArrayLike, period: float) -> np.ndarray:
    """``value mod period`` mapped into ``[0, period)``; vectorized.

    Unlike raw ``np.mod``, float rounding can never yield ``period``
    itself (e.g. ``-1e-300 mod 10`` rounds to ``10.0``); such results
    wrap to ``0``.
    """
    period = check_positive("period", period)
    r = np.mod(value, period)
    return np.where(r >= period, r - period, r)


def circular_diff(a: npt.ArrayLike, b: npt.ArrayLike, period: float) -> np.ndarray:
    """Smallest signed difference ``a - b`` on a circle of given *period*.

    The result lies in ``[-period/2, period/2)``.  Used for signal-change
    time errors: a change detected at 1 s vs ground truth 97 s on a 98 s
    cycle is a 2 s error, not 96 s.
    """
    period = check_positive("period", period)
    d = np.mod(np.asarray(a, dtype=float) - np.asarray(b, dtype=float) + period / 2.0, period)
    return d - period / 2.0
