"""Navigation applications (§VIII.B and the intro's motivating uses):
red-light-aware shortest-time routing on a simulated signalized grid
(SUMO substitute) and a green-light speed advisory (GLOSA)."""

from .advisory import SpeedAdvice, advise_speed, advisory_trial, green_windows

from .experiment import (
    DistanceBucket,
    NavScenario,
    make_random_signals,
    run_navigation_experiment,
)
from .router import (
    EnumerationRouter,
    EstimatedProvider,
    GroundTruthProvider,
    ScheduleProvider,
    ZeroWaitProvider,
    navigate,
    shortest_drive_path,
    time_dependent_dijkstra,
)
from .simulator import LegRecord, TravelConfig, TripResult, TripSimulator

__all__ = [
    "SpeedAdvice",
    "advise_speed",
    "advisory_trial",
    "green_windows",
    "DistanceBucket",
    "NavScenario",
    "make_random_signals",
    "run_navigation_experiment",
    "EnumerationRouter",
    "EstimatedProvider",
    "GroundTruthProvider",
    "ScheduleProvider",
    "ZeroWaitProvider",
    "navigate",
    "shortest_drive_path",
    "time_dependent_dijkstra",
    "LegRecord",
    "TravelConfig",
    "TripResult",
    "TripSimulator",
]
