"""Routing strategies for the navigation demo (§VIII.B).

Three routers:

* :func:`shortest_drive_path` — the conventional baseline: minimize
  driving time only (real-time traffic speed), blind to signals.
* :class:`EnumerationRouter` — the paper's strategy: enumerate all
  (bounded-detour) trajectories from here to the destination, predict
  total time = driving + red waiting for each, take the minimum, and
  **re-plan at every intersection**.  As the paper notes, this is not
  polynomial; the detour bound keeps the demo tractable.
* :func:`time_dependent_dijkstra` — our extension: because waiting at a
  light preserves FIFO ordering, a time-dependent Dijkstra is optimal
  and polynomial.  It shows the paper's "not trivial" routing problem
  has an efficient solution for fixed schedules (ablation bench).

Waits are *predicted* through a :class:`ScheduleProvider`, so the same
router runs on ground-truth schedules, on schedules identified from
taxi traces, or on nothing (predicting zero wait reduces the enumerator
to the baseline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..lights.intersection import IntersectionSignals
from ..lights.schedule import LightSchedule
from ..matching.partition import LightKey
from ..network.roadnet import RoadNetwork, Segment
from .simulator import TravelConfig, TripSimulator

__all__ = [
    "ScheduleProvider",
    "GroundTruthProvider",
    "EstimatedProvider",
    "ZeroWaitProvider",
    "shortest_drive_path",
    "EnumerationRouter",
    "time_dependent_dijkstra",
    "navigate",
]


class ScheduleProvider:
    """Predicts the red wait for arriving at a segment's stop line."""

    def predicted_wait(self, segment: Segment, t: float) -> float:
        raise NotImplementedError


class GroundTruthProvider(ScheduleProvider):
    """Oracle: predicts with the real controllers (perfect knowledge)."""

    def __init__(self, signals: Dict[int, IntersectionSignals]) -> None:
        self.signals = signals

    def predicted_wait(self, segment: Segment, t: float) -> float:
        sig = self.signals.get(segment.to_id)
        if sig is None:
            return 0.0
        return sig.controller_for_segment(segment).wait_if_arriving(t)


class EstimatedProvider(ScheduleProvider):
    """Predicts with schedules identified from taxi traces.

    Parameters
    ----------
    schedules:
        ``{(intersection_id, approach): LightSchedule}`` — e.g. the
        ``schedule`` fields of :class:`~repro.core.signal_types.ScheduleEstimate`.
        Lights absent from the mapping predict zero wait.
    """

    def __init__(self, schedules: Dict[LightKey, LightSchedule]) -> None:
        self.schedules = dict(schedules)

    def predicted_wait(self, segment: Segment, t: float) -> float:
        sched = self.schedules.get((segment.to_id, segment.approach))
        return 0.0 if sched is None else sched.wait_if_arriving(t)


class ZeroWaitProvider(ScheduleProvider):
    """Predicts no waiting anywhere (signal-blind navigation)."""

    def predicted_wait(self, segment: Segment, t: float) -> float:
        return 0.0


def shortest_drive_path(
    net: RoadNetwork, src: int, dst: int, config: Optional[TravelConfig] = None
) -> List[int]:
    """Baseline: minimum-driving-time node path (Dijkstra on lengths)."""
    g = net.to_networkx()
    return nx.shortest_path(g, src, dst, weight="length")


def _predict_path_time(
    net: RoadNetwork,
    path: Sequence[int],
    depart_at: float,
    provider: ScheduleProvider,
    config: TravelConfig,
) -> float:
    """Predicted door-to-door time of a node path (no wait at the final
    intersection, matching the simulator's convention)."""
    t = depart_at
    for i, (u, w) in enumerate(zip(path[:-1], path[1:])):
        seg = net.segment_between(u, w)
        if seg is None:
            return np.inf
        t += config.drive_time(seg)
        if i < len(path) - 2:
            t += provider.predicted_wait(seg, t)
    return t - depart_at


@dataclass
class EnumerationRouter:
    """The paper's exhaustive strategy with a detour bound.

    Parameters
    ----------
    net, provider, config:
        Network, wait predictor, driving parameters.
    extra_hops:
        Paths up to ``shortest_hops + extra_hops`` long are enumerated.
        The paper enumerates everything; the bound keeps the known
        exponential blow-up contained without changing who wins.
    """

    net: RoadNetwork
    provider: ScheduleProvider
    config: TravelConfig = field(default_factory=TravelConfig)
    extra_hops: int = 2

    def candidate_paths(self, src: int, dst: int) -> Iterable[List[int]]:
        """All simple paths within the detour bound."""
        g = self.net.to_networkx()
        cutoff = nx.shortest_path_length(g, src, dst) + self.extra_hops
        return nx.all_simple_paths(g, src, dst, cutoff=cutoff)

    def best_path(self, src: int, dst: int, depart_at: float) -> List[int]:
        """Minimum predicted-total-time path from ``src`` at ``depart_at``."""
        if src == dst:
            return [src]
        best, best_time = None, np.inf
        for path in self.candidate_paths(src, dst):
            pt = _predict_path_time(self.net, path, depart_at, self.provider, self.config)
            if pt < best_time:
                best, best_time = path, pt
        if best is None:
            raise ValueError(f"no path from {src} to {dst}")
        return best


def time_dependent_dijkstra(
    net: RoadNetwork,
    src: int,
    dst: int,
    depart_at: float,
    provider: ScheduleProvider,
    config: Optional[TravelConfig] = None,
) -> List[int]:
    """Optimal light-aware path via time-dependent Dijkstra.

    Valid because waiting at a red preserves arrival order (FIFO): a
    later arrival can never depart the stop line earlier, so earliest
    arrival per node is the right label.  The destination's own light
    is not waited on, so edges into ``dst`` use pure driving time.
    """
    config = TravelConfig() if config is None else config
    if src == dst:
        return [src]
    best: Dict[int, float] = {src: depart_at}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(depart_at, src)]
    while heap:
        t, u = heapq.heappop(heap)
        if u == dst:
            break
        if t > best.get(u, np.inf):
            continue
        for seg in net.outgoing(u):
            arrive = t + config.drive_time(seg)
            if seg.to_id != dst:
                arrive += provider.predicted_wait(seg, arrive)
            if arrive < best.get(seg.to_id, np.inf):
                best[seg.to_id] = arrive
                prev[seg.to_id] = u
                heapq.heappush(heap, (arrive, seg.to_id))
    if dst not in best:
        raise ValueError(f"no path from {src} to {dst}")
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    return path[::-1]


def navigate(
    sim: TripSimulator,
    provider: ScheduleProvider,
    src: int,
    dst: int,
    depart_at: float,
    *,
    strategy: str = "enumerate",
    extra_hops: int = 2,
    max_steps: int = 1000,
):
    """Drive from ``src`` to ``dst`` re-planning at every intersection.

    The *plan* uses predicted waits from ``provider``; the *clock*
    advances by what the ground-truth simulator actually charges —
    exactly the paper's setup ("the strategy is updated whenever the
    car meets an intersection").

    Parameters
    ----------
    strategy:
        ``"enumerate"`` (paper) or ``"dijkstra"`` (optimal extension).

    Returns
    -------
    TripResult:
        The realized trip.
    """
    from .simulator import LegRecord, TripResult  # local to avoid cycle

    if strategy not in ("enumerate", "dijkstra"):
        raise ValueError(f"unknown strategy {strategy!r}")
    router = EnumerationRouter(sim.net, provider, sim.config, extra_hops=extra_hops)

    node, t = src, depart_at
    legs: List[LegRecord] = []
    for _ in range(max_steps):
        if node == dst:
            return TripResult(legs=tuple(legs), depart_at=depart_at, arrive_at=t)
        if strategy == "enumerate":
            plan = router.best_path(node, dst, t)
        else:
            plan = time_dependent_dijkstra(
                sim.net, node, dst, t, provider, sim.config
            )
        nxt = plan[1]
        seg = sim.net.segment_between(node, nxt)
        arrive, wait = sim.leg_time(seg, t, final_leg=(nxt == dst))
        legs.append(LegRecord(segment_id=seg.id, depart_at=t, arrive_at=arrive, wait_s=wait))
        node, t = nxt, arrive
    raise RuntimeError(f"navigation exceeded {max_steps} steps (routing loop?)")
