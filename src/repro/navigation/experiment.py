"""The Fig. 15/16 experiment: light-aware vs conventional navigation.

Topology per the paper: a rectangular grid whose shortest segment is
1 km, a light at every intersection, cycle lengths drawn uniformly from
120–300 s with red = green.  For origin-destination pairs grouped by
distance, the conventional shortest-time trip (driving time only, then
actual waits charged) is compared against the light-aware re-planning
navigator; the paper reports ≈ 15 % overall saving that grows with
distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, as_rng, check_positive
from ..lights.intersection import IntersectionSignals, SignalPlan, make_intersection_signals
from ..network.roadnet import RoadNetwork, grid_network
from .router import (
    GroundTruthProvider,
    ScheduleProvider,
    ZeroWaitProvider,
    navigate,
    shortest_drive_path,
)
from .simulator import TravelConfig, TripSimulator

__all__ = ["NavScenario", "make_random_signals", "DistanceBucket", "run_navigation_experiment"]


@dataclass(frozen=True)
class NavScenario:
    """Parameters of the Fig. 15 setup."""

    n_cols: int = 6
    n_rows: int = 6
    spacing_m: float = 1000.0
    min_cycle_s: float = 120.0
    max_cycle_s: float = 300.0
    speed_mps: float = 50.0 / 3.6

    def __post_init__(self) -> None:
        check_positive("spacing_m", self.spacing_m)
        if self.max_cycle_s <= self.min_cycle_s:
            raise ValueError("max_cycle_s must exceed min_cycle_s")

    def build(self, rng: RngLike = None) -> Tuple[RoadNetwork, Dict[int, IntersectionSignals]]:
        """Instantiate the grid and its randomized signals."""
        net = grid_network(self.n_cols, self.n_rows, self.spacing_m)
        signals = make_random_signals(
            net, self.min_cycle_s, self.max_cycle_s, rng=rng
        )
        return net, signals


def make_random_signals(
    net: RoadNetwork,
    min_cycle_s: float = 120.0,
    max_cycle_s: float = 300.0,
    *,
    rng: RngLike = None,
) -> Dict[int, IntersectionSignals]:
    """Random static plans per the paper: cycle ~ U[120, 300], red = green,
    independent random offsets."""
    rng = as_rng(rng)
    out: Dict[int, IntersectionSignals] = {}
    for node in net.signalized_intersections():
        cycle = float(rng.uniform(min_cycle_s, max_cycle_s))
        plan = SignalPlan(
            cycle_s=cycle,
            ns_red_s=cycle / 2.0,
            offset_s=float(rng.uniform(0.0, cycle)),
        )
        out[node.id] = make_intersection_signals(node.id, [plan])
    return out


@dataclass
class DistanceBucket:
    """Aggregated comparison for one navigation distance."""

    distance_km: float
    n_trips: int
    baseline_mean_s: float
    aware_mean_s: float

    @property
    def saving_fraction(self) -> float:
        """Relative travel-time saving of the light-aware navigator."""
        if self.baseline_mean_s <= 0:
            return 0.0
        return 1.0 - self.aware_mean_s / self.baseline_mean_s

    def row(self) -> str:
        return (
            f"{self.distance_km:5.0f} km  n={self.n_trips:3d}  "
            f"baseline={self.baseline_mean_s:7.1f}s  aware={self.aware_mean_s:7.1f}s  "
            f"saving={100 * self.saving_fraction:5.1f}%"
        )


def _od_pairs_by_distance(
    net: RoadNetwork, n_cols: int, n_rows: int, hops: int, rng: np.random.Generator, k: int
) -> List[Tuple[int, int]]:
    """Sample up to ``k`` OD pairs at exactly ``hops`` Manhattan hops."""
    pairs = []
    for _ in range(20 * k):
        c0, r0 = rng.integers(n_cols), rng.integers(n_rows)
        budget = hops
        # random split of hops into |dx| + |dy| that stays on the grid
        dx = int(rng.integers(-min(budget, n_cols - 1), min(budget, n_cols - 1) + 1))
        dy = budget - abs(dx)
        if rng.uniform() < 0.5:
            dy = -dy
        c1, r1 = c0 + dx, r0 + dy
        if not (0 <= c1 < n_cols and 0 <= r1 < n_rows):
            continue
        src, dst = r0 * n_cols + c0, r1 * n_cols + c1
        if src != dst:
            pairs.append((src, dst))
        if len(pairs) >= k:
            break
    return pairs


def run_navigation_experiment(
    scenario: Optional[NavScenario] = None,
    *,
    provider: Optional[ScheduleProvider] = None,
    hop_distances: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    trips_per_distance: int = 20,
    strategy: str = "enumerate",
    extra_hops: int = 2,
    seed: int = 0,
) -> List[DistanceBucket]:
    """Reproduce Fig. 16: mean travel time vs navigation distance.

    Parameters
    ----------
    provider:
        Wait predictor for the light-aware navigator.  ``None`` uses
        the ground-truth oracle (the paper's setting: the demo consumes
        the schedules its identification system produced, which are
        near-exact); pass an
        :class:`~repro.navigation.router.EstimatedProvider` to run on
        schedules identified from traces.
    hop_distances:
        OD separations in grid hops (1 hop = ``spacing_m``).
    strategy:
        ``"enumerate"`` (paper) or ``"dijkstra"`` (optimal extension).
    """
    scenario = NavScenario() if scenario is None else scenario
    rng = as_rng(seed)
    net, signals = scenario.build(rng)
    sim = TripSimulator(net, signals, TravelConfig(scenario.speed_mps))
    aware_provider = provider if provider is not None else GroundTruthProvider(signals)

    buckets: List[DistanceBucket] = []
    for hops in hop_distances:
        pairs = _od_pairs_by_distance(
            net, scenario.n_cols, scenario.n_rows, hops, rng, trips_per_distance
        )
        base_times, aware_times = [], []
        for src, dst in pairs:
            depart = float(rng.uniform(0.0, 3600.0))
            base_path = shortest_drive_path(net, src, dst, sim.config)
            base = sim.simulate_path(base_path, depart)
            aware = navigate(
                sim, aware_provider, src, dst, depart,
                strategy=strategy, extra_hops=extra_hops,
            )
            base_times.append(base.total_time_s)
            aware_times.append(aware.total_time_s)
        if not base_times:
            continue
        buckets.append(
            DistanceBucket(
                distance_km=hops * scenario.spacing_m / 1000.0,
                n_trips=len(base_times),
                baseline_mean_s=float(np.mean(base_times)),
                aware_mean_s=float(np.mean(aware_times)),
            )
        )
    return buckets
