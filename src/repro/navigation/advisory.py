"""Green-driving speed advisory (GLOSA) on identified schedules.

The paper's introduction motivates exactly this application: with the
real-time schedule known, "optimal suggestions can also be provided to
drivers to pass the intersections smoothly" [4][5].  This module turns
an identified :class:`~repro.lights.schedule.LightSchedule` into a
speed recommendation for a vehicle approaching the stop line:

* find the green windows reachable within the driver's comfortable
  speed range;
* recommend the fastest speed that still arrives inside a green window
  (plus a small safety margin away from its edges);
* report the outcome of *not* following the advisory (cruise at the
  desired speed and possibly idle at the red).

All computations treat the schedule as exact; identification errors
translate into arrival-time error, which the safety margin absorbs —
the same robustness argument the paper makes for its ±5 s accuracy
versus the ~5 s yellow phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .._util import check_nonnegative, check_positive
from ..lights.schedule import LightSchedule

__all__ = ["SpeedAdvice", "green_windows", "advise_speed", "advisory_trial"]


@dataclass(frozen=True)
class SpeedAdvice:
    """Outcome of one advisory computation.

    Attributes
    ----------
    advised_speed_mps:
        Recommended approach speed, or ``None`` when no speed in the
        allowed range reaches a green window (the driver will stop
        regardless; slow cruising only trades moving time for idling).
    arrives_at:
        Predicted stop-line arrival time at the advised (or cruise)
        speed.
    will_stop:
        Whether the vehicle is predicted to hit a red.
    wait_s:
        Predicted idling time at the light.
    cruise_wait_s:
        Idling time if the driver ignores the advisory and cruises at
        the maximum comfortable speed — the baseline the advisory is
        scored against.
    """

    advised_speed_mps: Optional[float]
    arrives_at: float
    will_stop: bool
    wait_s: float
    cruise_wait_s: float

    @property
    def idling_saved_s(self) -> float:
        """Idling avoided relative to cruising blindly."""
        return max(self.cruise_wait_s - self.wait_s, 0.0)


def green_windows(
    schedule: LightSchedule, t0: float, horizon_s: float
) -> List[Tuple[float, float]]:
    """Green intervals ``[start, end)`` within ``[t0, t0 + horizon_s)``.

    The complement of :meth:`LightSchedule.red_intervals`, clipped to
    the horizon.
    """
    check_positive("horizon_s", horizon_s)
    t1 = t0 + horizon_s
    reds = schedule.red_intervals(t0, t1)
    out: List[Tuple[float, float]] = []
    cursor = t0
    # windows narrower than a microsecond are float slivers at phase
    # boundaries, not drivable green time
    eps = 1e-6
    for start, end in reds:
        if start > cursor + eps:
            out.append((cursor, float(start)))
        cursor = max(cursor, float(end))
    if cursor < t1 - eps:
        out.append((cursor, t1))
    return out


def advise_speed(
    schedule: LightSchedule,
    distance_m: float,
    t_now: float,
    *,
    v_min_mps: float = 6.0,
    v_max_mps: float = 14.0,
    margin_s: float = 2.0,
) -> SpeedAdvice:
    """Recommend an approach speed that meets a green window.

    Parameters
    ----------
    schedule:
        The light's (identified) schedule.
    distance_m:
        Distance from the vehicle to the stop line.
    t_now:
        Current time.
    v_min_mps, v_max_mps:
        Comfortable speed range; the advisory never asks the driver to
        crawl below ``v_min_mps`` or exceed ``v_max_mps``.
    margin_s:
        Safety margin kept from both edges of the target green window
        (absorbs schedule-identification error; the paper's accuracy is
        ~5 s, the duration of a yellow phase).
    """
    check_positive("distance_m", distance_m)
    check_positive("v_min_mps", v_min_mps)
    if v_max_mps < v_min_mps:
        raise ValueError("v_max_mps must be >= v_min_mps")
    check_nonnegative("margin_s", margin_s)

    t_early = t_now + distance_m / v_max_mps
    t_late = t_now + distance_m / v_min_mps

    # baseline: cruise at v_max and take whatever the light gives
    cruise_wait = schedule.wait_if_arriving(t_early)

    horizon = (t_late - t_now) + 2.0 * schedule.cycle_s
    for g0, g1 in green_windows(schedule, t_now, horizon):
        lo = max(g0 + margin_s, t_early)
        hi = min(g1 - margin_s, t_late)
        if lo <= hi:
            # fastest compliant arrival: hit the window as early as allowed
            v = distance_m / (lo - t_now)
            v = float(np.clip(v, v_min_mps, v_max_mps))
            arrive = t_now + distance_m / v
            return SpeedAdvice(
                advised_speed_mps=v,
                arrives_at=arrive,
                will_stop=False,
                wait_s=0.0,
                cruise_wait_s=float(cruise_wait),
            )

    # no reachable green: cruise and wait it out
    return SpeedAdvice(
        advised_speed_mps=None,
        arrives_at=t_early,
        will_stop=True,
        wait_s=float(cruise_wait),
        cruise_wait_s=float(cruise_wait),
    )


def advisory_trial(
    truth: LightSchedule,
    believed: LightSchedule,
    distance_m: float,
    t_now: float,
    *,
    v_min_mps: float = 6.0,
    v_max_mps: float = 14.0,
    margin_s: float = 2.0,
) -> Tuple[float, float, bool]:
    """Score one advisory against ground truth.

    The advisory plans on the *believed* (identified) schedule but the
    world runs on *truth*.  Returns
    ``(advised_total_time, cruise_total_time, stopped_under_advice)``
    where total time = driving + actual waiting.
    """
    advice = advise_speed(
        believed, distance_m, t_now,
        v_min_mps=v_min_mps, v_max_mps=v_max_mps, margin_s=margin_s,
    )
    # cruise baseline, charged by the true light
    t_cruise = t_now + distance_m / v_max_mps
    cruise_total = (t_cruise - t_now) + truth.wait_if_arriving(t_cruise)

    v = advice.advised_speed_mps if advice.advised_speed_mps else v_max_mps
    t_adv = t_now + distance_m / v
    true_wait = truth.wait_if_arriving(t_adv)
    advised_total = (t_adv - t_now) + true_wait
    return float(advised_total), float(cruise_total), bool(true_wait > 0)
