"""SUMO-substitute travel simulator for the navigation demo (§VIII.B).

The paper's application only needs two behaviours from SUMO: (a) a
vehicle traverses a road segment in a deterministic driving time, and
(b) on reaching a signalized intersection it waits out any remaining
red.  This module provides exactly that, against the same
:class:`~repro.lights.controller.LightController` ground truth the rest
of the system uses — so the "identified" schedules the router consumes
are directly comparable with what the simulator enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import check_positive
from ..lights.intersection import IntersectionSignals
from ..network.roadnet import RoadNetwork, Segment

__all__ = ["TravelConfig", "LegRecord", "TripResult", "TripSimulator"]


@dataclass(frozen=True)
class TravelConfig:
    """Driving parameters of the navigation demo.

    The paper's grid has 1 km minimum segments; at 50 km/h a segment
    takes 72 s to traverse.
    """

    speed_mps: float = 50.0 / 3.6

    def __post_init__(self) -> None:
        check_positive("speed_mps", self.speed_mps)

    def drive_time(self, segment: Segment) -> float:
        """Free-flow traversal time of a segment."""
        return segment.length / self.speed_mps


@dataclass(frozen=True)
class LegRecord:
    """One traversed segment of a simulated trip."""

    segment_id: int
    depart_at: float
    arrive_at: float
    wait_s: float


@dataclass(frozen=True)
class TripResult:
    """Outcome of simulating a path."""

    legs: Tuple[LegRecord, ...]
    depart_at: float
    arrive_at: float

    @property
    def total_time_s(self) -> float:
        """Door-to-door travel time."""
        return self.arrive_at - self.depart_at

    @property
    def total_wait_s(self) -> float:
        """Seconds spent waiting at red lights."""
        return sum(leg.wait_s for leg in self.legs)

    @property
    def n_stops(self) -> int:
        """Number of red lights actually hit."""
        return sum(1 for leg in self.legs if leg.wait_s > 0)


class TripSimulator:
    """Simulate trips over a signalized network.

    Parameters
    ----------
    net:
        Road network.
    signals:
        Ground-truth controllers per signalized intersection.
    config:
        Driving parameters.

    Notes
    -----
    A trip ends when it *enters* the destination intersection; the
    destination's own light is not waited on (you turn off before the
    stop line), matching how the paper counts "total traveling time =
    driving + waiting".
    """

    def __init__(
        self,
        net: RoadNetwork,
        signals: Dict[int, IntersectionSignals],
        config: Optional[TravelConfig] = None,
    ) -> None:
        self.net = net
        self.signals = signals
        self.config = TravelConfig() if config is None else config

    def wait_at(self, segment: Segment, t: float) -> float:
        """Red wait for a vehicle reaching *segment*'s stop line at ``t``."""
        sig = self.signals.get(segment.to_id)
        if sig is None:
            return 0.0
        return sig.controller_for_segment(segment).wait_if_arriving(t)

    def leg_time(self, segment: Segment, depart: float, *, final_leg: bool) -> Tuple[float, float]:
        """(arrival time, waited seconds) for one segment departure."""
        arrive_at_line = depart + self.config.drive_time(segment)
        wait = 0.0 if final_leg else self.wait_at(segment, arrive_at_line)
        return arrive_at_line + wait, wait

    def simulate_path(
        self, path: Sequence[int], depart_at: float
    ) -> TripResult:
        """Run a node path (intersection ids) through the ground truth.

        Raises ``ValueError`` if consecutive nodes are not connected.
        """
        if len(path) < 2:
            raise ValueError("path needs at least two intersections")
        t = depart_at
        legs: List[LegRecord] = []
        for i, (u, w) in enumerate(zip(path[:-1], path[1:])):
            seg = self.net.segment_between(u, w)
            if seg is None:
                raise ValueError(f"no segment {u} -> {w}")
            final = i == len(path) - 2
            arrive, wait = self.leg_time(seg, t, final_leg=final)
            legs.append(
                LegRecord(segment_id=seg.id, depart_at=t, arrive_at=arrive, wait_s=wait)
            )
            t = arrive
        return TripResult(legs=tuple(legs), depart_at=depart_at, arrive_at=t)
