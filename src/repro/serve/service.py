"""The multi-tenant front door: many city tenants on one event loop.

``StreamService`` owns a set of named :class:`~repro.serve.tenant.Tenant`
objects, each wrapping its own
:class:`~repro.stream.session.StreamSession` and its own single-writer
task.  Tenants share nothing but the loop: a crashed writer, a full
queue, or a hot reader in one city is invisible to every other city
(``tests/test_serve.py`` pins the containment).

Typical shape::

    async def main() -> None:
        async with StreamService() as service:
            service.add_tenant("shenzhen")
            await service.submit("shenzhen", chunk)
            snap = await service.evaluate("shenzhen", min_version=1)
            print(len(snap.estimates), "lights at t =", snap.at_time)

All timing flows through the injected ``clock`` callable (default
:func:`time.perf_counter`), which is how the deterministic concurrency
tests run the whole service on a virtual clock.

The layer's concurrency contracts — nothing loop-blocking reachable
from a coroutine, single-writer ownership of tenant state, publish-once
snapshots, rollback-paired quota reserves, and the publish-event
swap-and-set protocol — are enforced statically by the analyzer's
REP012–REP016 rules on every run (DESIGN.md §9), not just sampled by
the interleaving tests.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional

from ..core.pipeline import PipelineConfig
from ..matching.partition import LightKey, LightPartition
from ..obs import RunReport, ServiceStats
from ..stream.session import StreamSession
from .errors import DuplicateTenant, UnknownTenant
from .snapshot import Snapshot
from .tenant import Tenant, TenantQuota

__all__ = ["StreamService"]


class StreamService:
    """An asyncio service multiplexing many concurrent city tenants.

    Parameters
    ----------
    config:
        Default pipeline configuration for new tenants (overridable per
        tenant).
    backend:
        How each tenant's writer re-identifies dirty lights:
        ``"batched"`` (default) or ``"shard"``; passed through to
        :class:`StreamSession`.
    max_workers:
        Worker processes for the shard backend.
    clock:
        Monotonic clock used for every latency sample; inject a virtual
        clock for deterministic tests.
    offload:
        ``True`` (default) runs chunk applications on a dedicated
        single-threaded executor shared by every tenant, so advisory
        reads stay responsive while a tenant re-identifies *and*
        applies serialize fleet-wide (one CPU-bound apply at a time —
        no cross-tenant GIL thrash, writer throughput at bare-session
        parity).  ``False`` applies chunks inline on the loop — fully
        deterministic task scheduling, the posture the virtual-clock
        concurrency tests run in.  Either way snapshots publish on the
        loop thread.
    report:
        Optional :class:`RunReport`; :meth:`close` folds one
        :class:`ServiceStats` per tenant into it.
    """

    def __init__(
        self,
        *,
        config: Optional[PipelineConfig] = None,
        backend: str = "batched",
        max_workers: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        offload: bool = True,
        report: Optional[RunReport] = None,
    ) -> None:
        self.config = config
        self.backend = backend
        self.max_workers = max_workers
        self.offload = offload
        self.report = report
        self._clock: Callable[[], float] = (
            time.perf_counter if clock is None else clock
        )
        self._tenants: Dict[str, Tenant] = {}
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="serve-apply")
            if offload
            else None
        )

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        *,
        store: Optional[Mapping[LightKey, LightPartition]] = None,
        quota: Optional[TenantQuota] = None,
        monitor: bool = True,
        config: Optional[PipelineConfig] = None,
    ) -> Tenant:
        """Create a tenant and start its writer (needs a running loop)."""
        asyncio.get_running_loop()  # fail fast outside async context
        if name in self._tenants:
            raise DuplicateTenant(name)
        session = StreamSession(
            config=self.config if config is None else config,
            store=store,
            monitor=monitor,
            backend=self.backend,
            max_workers=self.max_workers,
        )
        tenant = Tenant(
            name,
            session=session,
            quota=quota,
            clock=self._clock,
            executor=self._executor,
        )
        self._tenants[name] = tenant
        tenant.start()
        return tenant

    def tenant(self, name: str) -> Tenant:
        """The named tenant, or a typed :class:`UnknownTenant`."""
        try:
            return self._tenants[name]
        except KeyError:
            raise UnknownTenant(name) from None

    @property
    def tenant_names(self) -> List[str]:
        return list(self._tenants)

    # ------------------------------------------------------------------
    # Data plane (thin per-tenant forwards)
    # ------------------------------------------------------------------
    async def submit(
        self,
        name: str,
        chunk: Mapping[LightKey, LightPartition],
        *,
        at_time: Optional[float] = None,
    ) -> None:
        """Enqueue one chunk for *name*'s writer (see :meth:`Tenant.submit`)."""
        await self.tenant(name).submit(chunk, at_time=at_time)

    async def evaluate(
        self,
        name: str,
        *,
        min_version: Optional[int] = None,
        min_at_time: Optional[float] = None,
    ) -> Snapshot:
        """Serve *name*'s last published snapshot (see :meth:`Tenant.evaluate`)."""
        return await self.tenant(name).evaluate(
            min_version=min_version, min_at_time=min_at_time
        )

    def snapshot(self, name: str) -> Snapshot:
        """Lock-free peek at *name*'s last published snapshot."""
        return self.tenant(name).snapshot

    # ------------------------------------------------------------------
    # Stats & shutdown
    # ------------------------------------------------------------------
    def stats(self) -> List[ServiceStats]:
        """One :class:`ServiceStats` per tenant, in creation order."""
        return [tenant.stats() for tenant in self._tenants.values()]

    async def close(self) -> None:
        """Drain and join every tenant, then fold stats into the report.

        Tenants close concurrently; queued chunks are flushed first
        (drain-on-close), and a crashed tenant's record is preserved,
        never raised from here.
        """
        if self._tenants:
            await asyncio.gather(
                *(tenant.close() for tenant in self._tenants.values())
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.report is not None:
            for stats in self.stats():
                self.report.record_service(stats)

    async def __aenter__(self) -> "StreamService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
