"""Latency-SLO load generation for the multi-tenant serving layer.

:func:`run_load` replays N synthetic city tenants through one
:class:`~repro.serve.service.StreamService`: per tenant, a producer
coroutine streams time-sliced chunks through the bounded ingest queue
while a consumer coroutine fires advisory queries that pace themselves
on snapshot freshness (``min_version``) — thousands of interleaved
ingests and evaluates on one event loop.  The harness measures
end-to-end reader latency around every query and audits, on every
response:

* **stale reads** — a consumer observing a snapshot version smaller
  than one it already saw (must never happen: publishes are atomic and
  monotonic);
* **torn snapshots** — structural integrity violations
  (:meth:`Snapshot.integrity_errors`), i.e. a mixed-publish map;
* **final parity** — after shutdown, every tenant's published estimate
  is re-derived by a fresh batched run over the same rows at the
  snapshot's recorded per-light eval time and compared bit-for-bit.

It also times a *bare* single-tenant :class:`StreamSession` replaying
identical chunks, so the service's writer-side overhead is a measured
ratio rather than a claim (the SLO bench bounds it at +10 %).

``benchmarks/bench_serve_slo.py`` asserts the SLOs; ``repro
serve-bench`` prints the same numbers from the command line.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.pipeline import PipelineConfig
from ..core.signal_types import ScheduleEstimate
from ..matching.partition import LightKey, LightPartition
from ..obs import RunReport, ServiceStats
from ..scenario.synthetic import synthetic_lights, synthetic_partitions
from ..stream.chunking import split_by_time
from ..stream.session import StreamSession
from ..trace.store import PartitionStore
from .service import StreamService
from .snapshot import Snapshot
from .tenant import TenantQuota, _percentile

__all__ = ["LoadResult", "LoadSpec", "run_load", "verify_snapshot_parity"]


@dataclass(frozen=True)
class LoadSpec:
    """Knobs of one load run.

    ``intersections_per_tenant`` intersections yield twice as many
    lights (NS + EW).  Each tenant replays ``n_chunks`` equal time
    slices of an ``horizon_s``-second synthetic trace; its consumer
    issues ``evaluates_per_chunk`` advisory queries per published
    version.
    """

    n_tenants: int = 8
    intersections_per_tenant: int = 4
    n_chunks: int = 24
    horizon_s: float = 5400.0
    evaluates_per_chunk: int = 6
    queue_depth: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {self.n_chunks}")
        if self.evaluates_per_chunk < 1:
            raise ValueError(
                f"evaluates_per_chunk must be >= 1, got {self.evaluates_per_chunk}"
            )


@dataclass(frozen=True)
class LoadResult:
    """What one :func:`run_load` measured."""

    n_tenants: int
    n_ingests: int
    n_evaluates: int
    evaluate_p50_s: float
    evaluate_p99_s: float
    service_ingest_s: float
    baseline_ingest_s: float
    stale_violations: int
    torn_violations: int
    parity_mismatches: int
    tenant_stats: Tuple[ServiceStats, ...]

    @property
    def ingest_overhead(self) -> float:
        """Writer-side cost over the bare session, as a ratio (1.0 = parity)."""
        if self.baseline_ingest_s <= 0.0:
            return 1.0
        return self.service_ingest_s / self.baseline_ingest_s

    @property
    def isolation_violations(self) -> int:
        """Total snapshot-isolation violations (the bench asserts 0)."""
        return self.stale_violations + self.torn_violations + self.parity_mismatches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_tenants": self.n_tenants,
            "n_ingests": self.n_ingests,
            "n_evaluates": self.n_evaluates,
            "evaluate_p50_s": self.evaluate_p50_s,
            "evaluate_p99_s": self.evaluate_p99_s,
            "service_ingest_s": self.service_ingest_s,
            "baseline_ingest_s": self.baseline_ingest_s,
            "ingest_overhead": self.ingest_overhead,
            "stale_violations": self.stale_violations,
            "torn_violations": self.torn_violations,
            "parity_mismatches": self.parity_mismatches,
            "tenants": [s.to_dict() for s in self.tenant_stats],
        }

    def summary(self) -> str:
        lines = [
            f"tenants: {self.n_tenants}  ingests: {self.n_ingests}  "
            f"evaluates: {self.n_evaluates}",
            f"evaluate latency: p50 {1e3 * self.evaluate_p50_s:.3f} ms   "
            f"p99 {1e3 * self.evaluate_p99_s:.3f} ms",
            f"writer ingest: {self.service_ingest_s:.2f} s vs bare session "
            f"{self.baseline_ingest_s:.2f} s  "
            f"({100.0 * (self.ingest_overhead - 1.0):+.1f}% overhead)",
            f"isolation: {self.stale_violations} stale, "
            f"{self.torn_violations} torn, "
            f"{self.parity_mismatches} parity mismatches",
        ]
        return "\n".join(lines)


def _tenant_name(index: int) -> str:
    return f"city-{index:02d}"


def _tenant_chunks(
    spec: LoadSpec, index: int
) -> Tuple[Dict[LightKey, LightPartition], List[Dict[LightKey, LightPartition]]]:
    """One tenant's full synthetic city and its time-sliced replay chunks."""
    seed = spec.seed + 1000 * index
    lights = synthetic_lights(spec.intersections_per_tenant, seed=seed)
    partitions = synthetic_partitions(lights, 0.0, spec.horizon_s, seed=seed + 1)
    step = spec.horizon_s / spec.n_chunks
    edges = [i * step for i in range(spec.n_chunks)] + [spec.horizon_s + 1e-9]
    return partitions, split_by_time(partitions, edges)


def _est_tuple(est: ScheduleEstimate) -> Tuple[float, ...]:
    """The bit-for-bit comparison key used across the parity suites."""
    return (
        est.cycle_s,
        est.red_s,
        est.green_s,
        est.schedule.offset_s,
        est.change.red_to_green_s,
        est.change.green_to_red_s,
    )


def verify_snapshot_parity(
    snapshot: Snapshot,
    partitions: Mapping[LightKey, LightPartition],
    *,
    config: Optional[PipelineConfig] = None,
) -> List[str]:
    """Re-derive every published estimate from scratch; list mismatches.

    For each resolved light the snapshot records the eval time its
    entry was computed at; a fresh batched run over the full rows at
    that time must reproduce the estimate bit-for-bit (grouping lights
    by eval time keeps this to a few batched calls).  Any difference —
    estimate bits, failure identity, or a light resolved on one side
    only — is a snapshot-isolation violation.
    """
    from ..core.batch import identify_batch

    mismatches: List[str] = []
    store = PartitionStore.from_partitions(partitions)
    by_time: Dict[float, List[LightKey]] = {}
    for key in sorted(snapshot.eval_times):
        by_time.setdefault(snapshot.eval_times[key], []).append(key)
    for eval_time in sorted(by_time):
        keys = by_time[eval_time]
        ref_est, ref_fail, _ = identify_batch(
            store, eval_time, config=config, keys=keys
        )
        for key in keys:
            est, ref = snapshot.estimates.get(key), ref_est.get(key)
            if (est is None) != (ref is None):
                mismatches.append(f"{key}@{eval_time}: estimate presence differs")
            elif est is not None and ref is not None and (
                _est_tuple(est) != _est_tuple(ref)
            ):
                mismatches.append(f"{key}@{eval_time}: estimate bits differ")
            fail, rfail = snapshot.failures.get(key), ref_fail.get(key)
            if (fail is None) != (rfail is None):
                mismatches.append(f"{key}@{eval_time}: failure presence differs")
            elif fail is not None and rfail is not None and (
                (fail.stage, fail.error_type, fail.message)
                != (rfail.stage, rfail.error_type, rfail.message)
            ):
                mismatches.append(f"{key}@{eval_time}: failure identity differs")
    return mismatches


async def _producer(
    service: StreamService,
    name: str,
    chunks: List[Dict[LightKey, LightPartition]],
) -> None:
    for chunk in chunks:
        await service.submit(name, chunk)


async def _consumer(
    service: StreamService,
    name: str,
    spec: LoadSpec,
    clock: Callable[[], float],
    latencies: List[float],
    violations: Dict[str, int],
) -> None:
    last_version = -1

    def audit(snap: Snapshot) -> None:
        nonlocal last_version
        if snap.version < last_version:
            violations["stale"] += 1
        last_version = max(last_version, snap.version)
        if snap.integrity_errors():
            violations["torn"] += 1

    for version in range(1, spec.n_chunks + 1):
        # Pace on the writer's progress: this wait measures freshness
        # (ingest lag), so it is audited but not SLO-timed.
        audit(await service.evaluate(name, min_version=version))
        # The advisory-query workload the SLO binds: unconstrained
        # reads of the published snapshot, timed end to end.
        for _ in range(spec.evaluates_per_chunk):
            started = clock()
            snap = await service.evaluate(name)
            latencies.append(clock() - started)
            audit(snap)


async def _drive(
    spec: LoadSpec,
    service: StreamService,
    chunks_by_tenant: Dict[str, List[Dict[LightKey, LightPartition]]],
    clock: Callable[[], float],
    latencies: List[float],
    violations: Dict[str, int],
) -> None:
    coros = []
    for name, chunks in chunks_by_tenant.items():
        service.add_tenant(
            name, quota=TenantQuota(max_queue_depth=spec.queue_depth)
        )
        coros.append(_producer(service, name, chunks))
        coros.append(_consumer(service, name, spec, clock, latencies, violations))
    await asyncio.gather(*coros)
    await service.close()


def run_load(
    spec: LoadSpec,
    *,
    config: Optional[PipelineConfig] = None,
    report: Optional[RunReport] = None,
    clock: Optional[Callable[[], float]] = None,
) -> LoadResult:
    """Run one full load: replay, audit, baseline, measure."""
    tick: Callable[[], float] = time.perf_counter if clock is None else clock
    cities: Dict[str, Mapping[LightKey, LightPartition]] = {}
    chunks_by_tenant: Dict[str, List[Dict[LightKey, LightPartition]]] = {}
    for i in range(spec.n_tenants):
        name = _tenant_name(i)
        partitions, chunks = _tenant_chunks(spec, i)
        cities[name] = partitions
        chunks_by_tenant[name] = chunks

    # Bare single-tenant baseline: the same chunks through a plain
    # StreamSession, no queue/snapshot machinery in the way.
    baseline_s = 0.0
    for name in chunks_by_tenant:
        session = StreamSession(config=config)
        started = tick()
        for chunk in chunks_by_tenant[name]:
            session.ingest(dict(chunk))
        baseline_s += tick() - started

    service = StreamService(config=config, clock=tick, report=report)
    latencies: List[float] = []
    violations = {"stale": 0, "torn": 0}
    asyncio.run(
        _drive(spec, service, chunks_by_tenant, tick, latencies, violations)
    )

    stats = service.stats()
    parity = 0
    for name in chunks_by_tenant:
        snapshot = service.snapshot(name)
        parity += len(verify_snapshot_parity(snapshot, cities[name], config=config))

    return LoadResult(
        n_tenants=spec.n_tenants,
        n_ingests=sum(s.n_chunks for s in stats),
        n_evaluates=len(latencies),
        evaluate_p50_s=_percentile(latencies, 50.0),
        evaluate_p99_s=_percentile(latencies, 99.0),
        service_ingest_s=sum(s.ingest_wall_s for s in stats),
        baseline_ingest_s=baseline_s,
        stale_violations=violations["stale"],
        torn_violations=violations["torn"],
        parity_mismatches=parity,
        tenant_stats=tuple(stats),
    )
