"""Immutable published snapshots: the reader half of the serve protocol.

A :class:`Snapshot` is the unit of snapshot isolation: the writer task
builds a fresh one after every applied chunk and publishes it with a
single attribute assignment, so any number of concurrent readers serve
the *last published* version without taking a lock and without ever
observing a half-applied ingest.  All mappings are wrapped in
:class:`types.MappingProxyType` — a snapshot handed to a reader can
never change under it.

Alongside the estimates themselves, a snapshot records per-light
*provenance* — the data version each estimate was computed from and the
time it was evaluated at — which is what makes the isolation property
mechanically checkable: for every light, a fresh batched run over the
same rows at the recorded eval time must reproduce the published
estimate bit-for-bit (``tests/test_serve_isolation.py``).

The publish-once contract is also *statically* enforced: the analyzer's
REP014 rule flags any mutation of a ``Snapshot``-typed value — or of
anything read back out of a ``_snapshot`` attribute — after the
publishing swap, at any call depth (DESIGN.md §9).  Keep parameters and
attributes holding snapshots annotated as ``Snapshot`` so the rule can
see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.monitor import PlanChange
from ..core.signal_types import ScheduleEstimate
from ..matching.partition import LightKey
from ..obs import LightFailure

__all__ = ["Snapshot"]

#: One per-light result-cache entry as exported by
#: :meth:`repro.stream.session.StreamSession.results_view`.
_CacheEntry = Tuple[int, float, Optional[ScheduleEstimate], Optional[LightFailure]]


def _frozen(mapping: Mapping) -> Mapping:  # type: ignore[type-arg]
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class Snapshot:
    """One atomically published view of a tenant's identification state.

    Attributes
    ----------
    tenant:
        Name of the tenant this snapshot belongs to.
    version:
        Publish sequence number: the count of chunks applied when this
        snapshot was built (``0`` for the pre-ingest initial snapshot).
        Strictly monotonic per tenant — a reader that ever observes a
        smaller version than one it already saw has hit a stale-read
        violation (the load harness counts these; the count must be 0).
    at_time:
        Evaluation time of the most recent refresh (``None`` before any
        data arrived).
    n_records:
        Cumulative records ingested up to this snapshot.
    estimates / failures:
        The tenant's full current view, disjoint by construction: a
        light appears in exactly one of the two (or neither, before its
        first refresh).
    eval_times / data_versions:
        Per-light provenance: the time each light's entry was evaluated
        at and the store version its rows carried when the kernels ran.
        A light untouched by recent chunks keeps an older eval time —
        its rows have not changed, so the estimate is still exact for
        them (the replay-parity contract).
    plan_changes:
        All scheduling changes the online monitor has detected so far,
        cumulative per light.
    """

    tenant: str
    version: int
    at_time: Optional[float]
    n_records: int
    estimates: Mapping[LightKey, ScheduleEstimate] = field(
        default_factory=lambda: _frozen({})
    )
    failures: Mapping[LightKey, LightFailure] = field(
        default_factory=lambda: _frozen({})
    )
    eval_times: Mapping[LightKey, float] = field(default_factory=lambda: _frozen({}))
    data_versions: Mapping[LightKey, int] = field(default_factory=lambda: _frozen({}))
    plan_changes: Mapping[LightKey, Tuple[PlanChange, ...]] = field(
        default_factory=lambda: _frozen({})
    )

    @classmethod
    def initial(cls, tenant: str) -> "Snapshot":
        """The version-0 snapshot a tenant serves before any ingest."""
        return cls(tenant=tenant, version=0, at_time=None, n_records=0)

    @classmethod
    def from_results(
        cls,
        tenant: str,
        *,
        version: int,
        at_time: Optional[float],
        n_records: int,
        results: Mapping[LightKey, _CacheEntry],
        plan_changes: Mapping[LightKey, List[PlanChange]],
    ) -> "Snapshot":
        """Build one publishable snapshot from a session's result cache."""
        estimates: Dict[LightKey, ScheduleEstimate] = {}
        failures: Dict[LightKey, LightFailure] = {}
        eval_times: Dict[LightKey, float] = {}
        data_versions: Dict[LightKey, int] = {}
        for key in sorted(results):
            data_version, eval_time, est, fail = results[key]
            if est is None and fail is None:
                continue
            eval_times[key] = eval_time
            data_versions[key] = data_version
            if est is not None:
                estimates[key] = est
            elif fail is not None:
                failures[key] = fail
        return cls(
            tenant=tenant,
            version=version,
            at_time=at_time,
            n_records=n_records,
            estimates=_frozen(estimates),
            failures=_frozen(failures),
            eval_times=_frozen(eval_times),
            data_versions=_frozen(data_versions),
            plan_changes=_frozen(
                {key: tuple(val) for key, val in sorted(plan_changes.items())}
            ),
        )

    def integrity_errors(self) -> List[str]:
        """Structural consistency violations (a torn snapshot is a bug).

        An atomically built snapshot can never fail these; the load
        harness runs the check on every read it samples so a torn
        (mixed-publish) map would surface as a counted violation rather
        than as silent bad advisories.
        """
        problems: List[str] = []
        overlap = set(self.estimates) & set(self.failures)
        if overlap:
            problems.append(f"lights in both estimates and failures: {sorted(overlap)}")
        resolved = set(self.estimates) | set(self.failures)
        if resolved != set(self.eval_times):
            problems.append("eval_times keys do not match resolved lights")
        if resolved != set(self.data_versions):
            problems.append("data_versions keys do not match resolved lights")
        if self.version == 0 and resolved:
            problems.append("version-0 snapshot carries results")
        return problems
