"""Multi-tenant async serving of streaming identification.

:class:`~repro.stream.session.StreamSession` is a single-city,
single-caller object; this package is the "millions of users" layer on
top of it: one :class:`StreamService` multiplexes many concurrent city
tenants on an asyncio event loop, each with

* a **bounded ingest queue** with real backpressure (awaitable
  ``submit``; explicit full-queue policy) feeding exactly one writer
  task per tenant,
* **snapshot-isolated readers** — ``evaluate`` serves the last
  atomically published immutable :class:`Snapshot` lock-free, so any
  number of concurrent advisory queries never block ingest and never
  observe a half-applied chunk,
* **typed per-tenant quotas** (queue depth, light budget, in-flight
  evaluates) raised as :class:`QuotaExceeded` subclasses,
* **per-tenant crash containment** — a poisoned chunk kills one
  tenant's writer with a typed record; every other tenant keeps
  serving,
* :class:`~repro.obs.ServiceStats` telemetry folded into
  :class:`~repro.obs.RunReport`.

The deterministic concurrency suite (``tests/test_serve.py``,
``tests/test_serve_isolation.py``) drives the whole protocol on a
virtual clock with seeded interleavings; ``benchmarks/bench_serve_slo.py``
replays thousands of interleaved ingests and queries across >= 8
tenants and asserts p50/p99 latency SLOs with zero isolation
violations.
"""

from .errors import (
    DuplicateTenant,
    EvaluateOverload,
    IngestQueueFull,
    LightQuotaExceeded,
    QuotaExceeded,
    ServeError,
    TenantClosed,
    TenantCrashed,
    UnknownTenant,
)
from .load import LoadResult, LoadSpec, run_load, verify_snapshot_parity
from .service import StreamService
from .snapshot import Snapshot
from .tenant import Tenant, TenantQuota

__all__ = [
    "DuplicateTenant",
    "EvaluateOverload",
    "IngestQueueFull",
    "LightQuotaExceeded",
    "LoadResult",
    "LoadSpec",
    "QuotaExceeded",
    "ServeError",
    "Snapshot",
    "StreamService",
    "Tenant",
    "TenantClosed",
    "TenantCrashed",
    "TenantQuota",
    "UnknownTenant",
    "run_load",
    "verify_snapshot_parity",
]
