"""Typed rejections and lifecycle errors of the serving layer.

Every deliberate refusal the service makes — a full ingest queue, a
tenant over its light budget, too many readers in flight, a dead or
closed tenant — is a distinct exception type carrying the tenant name,
so callers can branch on *why* they were turned away instead of parsing
message strings.  Quota refusals all derive from :class:`QuotaExceeded`
and carry the configured limit alongside the observed value.
"""

from __future__ import annotations

from ..parallel.pool import WorkerError

__all__ = [
    "DuplicateTenant",
    "EvaluateOverload",
    "IngestQueueFull",
    "LightQuotaExceeded",
    "QuotaExceeded",
    "ServeError",
    "TenantClosed",
    "TenantCrashed",
    "UnknownTenant",
]


class ServeError(Exception):
    """Base class of everything :mod:`repro.serve` raises deliberately."""

    def __init__(self, tenant: str, message: str) -> None:
        super().__init__(f"tenant {tenant!r}: {message}")
        self.tenant = tenant


class UnknownTenant(ServeError):
    """The service has no tenant under that name."""

    def __init__(self, tenant: str) -> None:
        super().__init__(tenant, "no such tenant")


class DuplicateTenant(ServeError):
    """A tenant under that name already exists."""

    def __init__(self, tenant: str) -> None:
        super().__init__(tenant, "a tenant with this name already exists")


class TenantClosed(ServeError):
    """The tenant was shut down (its queued chunks were flushed)."""


class TenantCrashed(ServeError):
    """The tenant's writer task died; the failure record rides along.

    The crash is contained to this tenant — every other tenant keeps
    serving — but this tenant fails *stop*: both ingest and evaluate
    raise rather than serve advisories from a writer that is no longer
    applying chunks.
    """

    def __init__(self, tenant: str, failure: WorkerError) -> None:
        super().__init__(
            tenant, f"writer crashed: {failure.error_type}: {failure.message}"
        )
        self.failure = failure


class QuotaExceeded(ServeError):
    """Base class of per-tenant quota refusals."""

    def __init__(
        self, tenant: str, message: str, *, limit: int, observed: int
    ) -> None:
        super().__init__(tenant, f"{message} (limit {limit}, observed {observed})")
        self.limit = limit
        self.observed = observed


class IngestQueueFull(QuotaExceeded):
    """The bounded ingest queue is at capacity under the reject policy."""

    def __init__(self, tenant: str, *, limit: int) -> None:
        super().__init__(
            tenant, "ingest queue full", limit=limit, observed=limit
        )


class LightQuotaExceeded(QuotaExceeded):
    """The chunk would grow the tenant past its light budget."""

    def __init__(self, tenant: str, *, limit: int, observed: int) -> None:
        super().__init__(
            tenant, "light quota exceeded", limit=limit, observed=observed
        )


class EvaluateOverload(QuotaExceeded):
    """Too many evaluate calls already in flight for this tenant."""

    def __init__(self, tenant: str, *, limit: int) -> None:
        super().__init__(
            tenant, "too many evaluates in flight", limit=limit, observed=limit
        )
