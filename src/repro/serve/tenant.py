"""One tenant: a bounded ingest queue, a single writer, many readers.

The concurrency protocol, in one place:

* **Writer** — exactly one asyncio task per tenant pops chunks off the
  bounded queue, applies them to the tenant's
  :class:`~repro.stream.session.StreamSession` (append + re-identify
  the dirty lights), builds an immutable
  :class:`~repro.serve.snapshot.Snapshot`, and publishes it with a
  single attribute assignment.  The risky application step routes
  through :func:`repro.parallel.pool.run_guarded` — the sanctioned
  containment seam — so a poisoned chunk kills *this* tenant's writer
  with a typed :class:`~repro.parallel.pool.WorkerError` instead of
  unwinding the event loop out from under every other tenant.

* **Readers** — :meth:`Tenant.evaluate` never touches the session or
  the queue: it reads the last published snapshot, which is why any
  number of concurrent readers cannot block ingest (and why a reader
  can never observe a half-applied chunk).  Readers that need freshness
  (``min_version`` / ``min_at_time``) park on a publish event the
  writer sets after every swap.

* **Backpressure** — producers ``await`` :meth:`Tenant.submit`; with
  the default ``on_full="wait"`` policy a full queue suspends the
  producer until the writer drains (classic backpressure), while
  ``on_full="reject"`` turns the same condition into an immediate typed
  :class:`~repro.serve.errors.IngestQueueFull`.

* **Shutdown** — :meth:`Tenant.close` refuses new chunks, lets the
  writer flush everything already queued (drain-on-close), then joins
  it.  Snapshots stay readable after close.

All latency samples come from the injected ``clock`` callable, so the
deterministic test suite drives the whole protocol on a virtual clock —
no wall-clock sleeps anywhere.
"""

from __future__ import annotations

import asyncio
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set, Union

from ..core.monitor import PlanChange
from ..matching.partition import LightKey, LightPartition
from ..obs import ServiceStats
from ..parallel.pool import WorkerError, run_guarded
from ..stream.session import StreamSession
from .errors import (
    EvaluateOverload,
    IngestQueueFull,
    LightQuotaExceeded,
    TenantClosed,
    TenantCrashed,
)
from .snapshot import Snapshot

__all__ = ["Tenant", "TenantQuota"]

#: Percentiles exported into :class:`ServiceStats`.
_P50, _P99 = 50.0, 99.0


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits, each surfaced as a typed rejection.

    Attributes
    ----------
    max_queue_depth:
        Capacity of the bounded ingest queue.  With ``on_full="wait"``
        a producer hitting the cap suspends (backpressure); with
        ``"reject"`` it gets :class:`IngestQueueFull`.
    max_lights:
        Ceiling on distinct lights the tenant may track (``None`` for
        unlimited); a chunk that would cross it is rejected with
        :class:`LightQuotaExceeded` *before* it occupies a queue slot.
    max_inflight_evaluates:
        Ceiling on concurrently running :meth:`Tenant.evaluate` calls
        (``None`` for unlimited); the call over the cap gets
        :class:`EvaluateOverload` instead of queueing behind slower
        readers.
    on_full:
        Full-queue policy: ``"wait"`` (default) or ``"reject"``.
    """

    max_queue_depth: int = 64
    max_lights: Optional[int] = None
    max_inflight_evaluates: Optional[int] = None
    on_full: str = "wait"

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_lights is not None and self.max_lights < 1:
            raise ValueError(f"max_lights must be >= 1, got {self.max_lights}")
        if (
            self.max_inflight_evaluates is not None
            and self.max_inflight_evaluates < 1
        ):
            raise ValueError(
                f"max_inflight_evaluates must be >= 1, "
                f"got {self.max_inflight_evaluates}"
            )
        if self.on_full not in ("wait", "reject"):
            raise ValueError(
                f"on_full must be 'wait' or 'reject', got {self.on_full!r}"
            )


@dataclass(frozen=True)
class _QueuedChunk:
    """One enqueued ingest: the chunk plus its enqueue timestamp."""

    chunk: Mapping[LightKey, LightPartition]
    at_time: Optional[float]
    enqueued_at: float


class _Close:
    """Queue sentinel: everything ahead of it is flushed, then the writer exits."""


_CLOSE = _Close()


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile without numpy (tiny lists, exact, no dtype)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


class Tenant:
    """One city's serving state; create via ``StreamService.add_tenant``."""

    def __init__(
        self,
        name: str,
        *,
        session: StreamSession,
        quota: Optional[TenantQuota] = None,
        clock: Callable[[], float],
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        self.name = name
        self.session = session
        self.quota = TenantQuota() if quota is None else quota
        self._clock = clock
        self._executor = executor
        self._queue: "asyncio.Queue[Union[_QueuedChunk, _Close]]" = asyncio.Queue(
            maxsize=self.quota.max_queue_depth
        )
        self._snapshot: Snapshot = Snapshot.initial(name)
        self._publish_event = asyncio.Event()
        self._known_lights: Set[LightKey] = set(session.store)
        self._closing = False
        self._finished = False
        self._failure: Optional[WorkerError] = None
        self._writer: Optional["asyncio.Task[None]"] = None
        self._inflight = 0
        self._plan_changes: Dict[LightKey, List[PlanChange]] = {}
        # -- stats accumulators ----------------------------------------
        self._high_water = 0
        self._n_records = 0
        self._n_evaluates = 0
        self._n_rejected_ingest = 0
        self._n_rejected_evaluate = 0
        self._n_dropped = 0
        self._ingest_lag: List[float] = []
        self._apply_lat: List[float] = []
        self._publish_lat: List[float] = []
        self._evaluate_lat: List[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the writer task (requires a running event loop)."""
        if self._writer is None:
            self._writer = asyncio.get_running_loop().create_task(
                self._run_writer(), name=f"serve-writer:{self.name}"
            )

    async def close(self) -> None:
        """Refuse new chunks, flush everything queued, join the writer.

        Idempotent; safe to call on a crashed tenant (the crash record
        wins — close never masks it).
        """
        first = not self._closing
        self._closing = True
        if first and self._failure is None:
            await self._queue.put(_CLOSE)
        if self._writer is not None:
            await self._writer

    @property
    def closed(self) -> bool:
        """True once the writer has flushed its backlog and exited."""
        return self._finished and self._failure is None

    @property
    def failure(self) -> Optional[WorkerError]:
        """The writer's crash record, if it died."""
        return self._failure

    @property
    def snapshot(self) -> Snapshot:
        """The last published snapshot (lock-free read)."""
        return self._snapshot

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    async def submit(
        self,
        chunk: Mapping[LightKey, LightPartition],
        *,
        at_time: Optional[float] = None,
    ) -> None:
        """Enqueue one chunk for the writer.

        Raises :class:`TenantCrashed` / :class:`TenantClosed` when the
        tenant can no longer accept work, :class:`LightQuotaExceeded`
        when the chunk would cross ``max_lights``, and (under
        ``on_full="reject"``) :class:`IngestQueueFull` at capacity.
        Under the default wait policy a full queue suspends the caller
        until the writer frees a slot — the backpressure seam.
        """
        self._check_accepting()
        quota = self.quota
        new_lights = set(chunk) - self._known_lights
        if (
            quota.max_lights is not None
            and len(self._known_lights) + len(new_lights) > quota.max_lights
        ):
            self._n_rejected_ingest += 1
            raise LightQuotaExceeded(
                self.name,
                limit=quota.max_lights,
                observed=len(self._known_lights) + len(new_lights),
            )
        # Reserve the lights before any await so concurrent submits see
        # a consistent budget (asyncio interleaves only at awaits).  The
        # reserve must survive every exit path below or a cancellation
        # while parked on a full queue leaks light budget forever, so
        # the rollback lives in a finally keyed on whether the chunk
        # actually landed (REP015 enforces this shape).
        self._known_lights |= new_lights
        item = _QueuedChunk(chunk=chunk, at_time=at_time, enqueued_at=self._clock())
        landed = False
        try:
            if quota.on_full == "reject":
                try:
                    self._queue.put_nowait(item)
                except asyncio.QueueFull:
                    self._n_rejected_ingest += 1
                    raise IngestQueueFull(
                        self.name, limit=quota.max_queue_depth
                    ) from None
                landed = True
            else:
                await self._queue.put(item)
                landed = True
                self._check_accepting()  # the writer may have died while we waited
        finally:
            if not landed:
                self._known_lights -= new_lights  # the chunk never landed
        self._high_water = max(self._high_water, self._queue.qsize())

    def _check_accepting(self) -> None:
        if self._failure is not None:
            raise TenantCrashed(self.name, self._failure)
        if self._closing:
            raise TenantClosed(self.name, "closed to new chunks")

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    async def evaluate(
        self,
        *,
        min_version: Optional[int] = None,
        min_at_time: Optional[float] = None,
    ) -> Snapshot:
        """Serve the last published snapshot (never blocks ingest).

        With ``min_version`` / ``min_at_time`` the reader parks on the
        publish event until the snapshot is fresh enough — waiting on
        the *writer's* progress, not holding anything the writer needs.
        Raises :class:`EvaluateOverload` over the in-flight quota,
        :class:`TenantCrashed` if the writer died, and
        :class:`TenantClosed` if the tenant shut down before the
        requested freshness became reachable.  A closed tenant still
        serves its final snapshot to unconstrained readers.
        """
        if self._failure is not None:
            raise TenantCrashed(self.name, self._failure)
        quota = self.quota
        if (
            quota.max_inflight_evaluates is not None
            and self._inflight >= quota.max_inflight_evaluates
        ):
            self._n_rejected_evaluate += 1
            raise EvaluateOverload(self.name, limit=quota.max_inflight_evaluates)
        started = self._clock()
        self._inflight += 1
        try:
            # One cooperative yield while holding the slot: overlapping
            # readers genuinely overlap, so the in-flight quota (and its
            # deterministic tests) measure real concurrency.
            await asyncio.sleep(0)
            while not self._fresh_enough(min_version, min_at_time):
                if self._failure is not None:
                    raise TenantCrashed(self.name, self._failure)
                if self._finished:
                    raise TenantClosed(
                        self.name,
                        "closed before the requested snapshot freshness",
                    )
                await self._publish_event.wait()
            snap = self._snapshot
        finally:
            self._inflight -= 1
        self._evaluate_lat.append(self._clock() - started)
        self._n_evaluates += 1
        return snap

    def _fresh_enough(
        self, min_version: Optional[int], min_at_time: Optional[float]
    ) -> bool:
        snap = self._snapshot
        if min_version is not None and snap.version < min_version:
            return False
        if min_at_time is not None and (
            snap.at_time is None or snap.at_time < min_at_time
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Writer task
    # ------------------------------------------------------------------
    async def _run_writer(self) -> None:
        while True:
            item = await self._queue.get()
            if isinstance(item, _Close):
                break
            # Cooperative point between dequeue and apply: readers
            # scheduled here observe the previous snapshot — there is
            # never a moment where a half-applied chunk is visible.
            await asyncio.sleep(0)
            started = self._clock()
            if self._executor is not None:
                # Identification is sync CPU work; running it on the
                # service's apply executor keeps advisory reads
                # responsive while a tenant re-identifies.  The executor
                # is single-threaded and shared across tenants, so
                # applies serialize fleet-wide: no GIL thrash between
                # cities, and writer throughput stays at bare-session
                # parity instead of degrading with tenant count.
                outcome = await asyncio.get_running_loop().run_in_executor(
                    self._executor, run_guarded, self._apply, item
                )
            else:
                # Inline mode: fully deterministic loop scheduling, the
                # posture the virtual-clock concurrency tests run in.
                # Deliberately blocks the loop — sanctioned because the
                # virtual clock only advances between tasks anyway.
                outcome = run_guarded(self._apply, item)  # repro: allow[REP012]
            if isinstance(outcome, WorkerError):
                self._crash(outcome)
                return
            # Publish on the loop thread: one atomic attribute swap,
            # then wake freshness-waiting readers.
            self._snapshot = outcome
            self._wake()
            finished = self._clock()
            self._publish_lat.append(finished - started)
            self._ingest_lag.append(finished - item.enqueued_at)
        self._finished = True
        self._wake()  # release freshness-waiting readers so they see `closed`

    def _apply(self, item: _QueuedChunk) -> Snapshot:
        """Apply one chunk to the session; return the snapshot to publish.

        Runs inside :func:`run_guarded` (possibly on an executor
        thread): any exception here — a structurally broken partition
        blowing up the store append, say — becomes this tenant's crash
        record, not a loop-wide failure.  Only the writer calls this,
        one chunk at a time, so the session and the accumulators below
        are single-writer even in offload mode.

        Timed here, around the compute alone, so ``ingest_wall_s``
        compares apples-to-apples with a bare single-tenant session —
        the loop-side ``publish`` sample additionally counts executor
        queueing behind other tenants' applies.
        """
        started = self._clock()
        update = self.session.ingest(dict(item.chunk), at_time=item.at_time)
        for key, changes in update.plan_changes.items():
            self._plan_changes.setdefault(key, []).extend(changes)
        self._n_records += update.n_records
        self._apply_lat.append(self._clock() - started)
        prev = self._snapshot
        return Snapshot.from_results(
            self.name,
            version=prev.version + 1,
            at_time=update.at_time if update.at_time is not None else prev.at_time,
            n_records=self._n_records,
            results=self.session.results_view(),
            plan_changes=self._plan_changes,
        )

    def _crash(self, failure: WorkerError) -> None:
        """Contain a writer death: record it, drop the backlog, wake everyone.

        Draining the queue frees any producer suspended in ``put`` (it
        then re-checks and raises :class:`TenantCrashed`); waking the
        publish event does the same for freshness-waiting readers.
        """
        self._failure = failure
        self._finished = True
        while True:
            try:
                leftover = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not isinstance(leftover, _Close):
                self._n_dropped += 1
        self._wake()

    def _wake(self) -> None:
        event = self._publish_event
        self._publish_event = asyncio.Event()
        event.set()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """The tenant's :class:`~repro.obs.ServiceStats` so far."""
        return ServiceStats(
            tenant=self.name,
            n_chunks=self._snapshot.version,
            n_records=self._n_records,
            n_evaluates=self._n_evaluates,
            n_rejected_ingest=self._n_rejected_ingest,
            n_rejected_evaluate=self._n_rejected_evaluate,
            n_dropped_chunks=self._n_dropped,
            queue_high_water=self._high_water,
            ingest_wall_s=sum(self._apply_lat),
            ingest_lag_p50_s=_percentile(self._ingest_lag, _P50),
            ingest_lag_p99_s=_percentile(self._ingest_lag, _P99),
            publish_p50_s=_percentile(self._publish_lat, _P50),
            publish_p99_s=_percentile(self._publish_lat, _P99),
            evaluate_p50_s=_percentile(self._evaluate_lat, _P50),
            evaluate_p99_s=_percentile(self._evaluate_lat, _P99),
        )
