"""Lightweight stage timers and counters (the observability substrate).

At city scale the interesting questions about an identification run are
operational: where did the wall time go, how many samples survived each
filter, which lights failed and at which stage.  ``StageTelemetry`` is
the accumulator the pipeline stages write into — a picklable bag of
plain dicts, cheap enough to be always-on (two ``perf_counter`` calls
and two dict writes per stage).

Workers fill one ``StageTelemetry`` per light inside the process pool
and ship it back to the parent, which merges them into a
:class:`repro.obs.report.RunReport`.  The module is dependency-free on
purpose: ``repro.core`` imports it, never the other way around.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Protocol

__all__ = ["StageTelemetry", "SupportsCount"]


class SupportsCount(Protocol):
    """Anything accepting ``count(name, n)`` — the telemetry duck type.

    ``repro.core`` functions take this instead of the concrete
    :class:`StageTelemetry` so tests and callers can pass any counter
    sink without importing the observability layer.
    """

    def count(self, name: str, n: int = 1) -> None: ...  # pragma: no cover


@dataclass
class StageTelemetry:
    """Wall-time and counter accumulator for one light (or one run).

    Attributes
    ----------
    stage_s:
        Accumulated wall time per stage name, seconds.
    stage_calls:
        How many times each stage ran.
    counters:
        Free-form named counters (samples seen, stops kept, candidates
        scanned, …) incremented via :meth:`count`.
    last_stage:
        The most recently *entered* stage — still set when a stage body
        raises, which is how failures get attributed to a stage.
    """

    stage_s: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    last_stage: Optional[str] = None

    @contextmanager
    def stage(self, name: str) -> Iterator["StageTelemetry"]:
        """Time a pipeline stage; the elapsed time accumulates under *name*.

        The stage is recorded even when its body raises, so a crashed
        run still accounts for the time spent reaching the crash.
        """
        self.last_stage = name
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.stage_s[name] = self.stage_s.get(name, 0.0) + elapsed
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter *name* by *n*."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def merge(self, other: "StageTelemetry") -> "StageTelemetry":
        """Fold *other*'s times and counters into this one (returns self)."""
        for k, v in other.stage_s.items():
            self.stage_s[k] = self.stage_s.get(k, 0.0) + v
        for k, c in other.stage_calls.items():
            self.stage_calls[k] = self.stage_calls.get(k, 0) + c
        for k, c in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + c
        return self

    def total_s(self) -> float:
        """Sum of all stage wall times."""
        return float(sum(self.stage_s.values()))
