"""Structured per-run reporting: failure taxonomy and RunReport JSON.

A citywide fan-out over thousands of lights needs an answer to "what
happened?" that survives the run: which lights produced no estimate and
why (exception class + pipeline stage + message), where the wall time
went stage by stage, and what the pipeline actually saw (samples,
stops, candidates).  ``RunReport`` aggregates the per-light
:class:`~repro.obs.telemetry.StageTelemetry` records that
``identify_many`` collects and exports one JSON document
(``repro … --report out.json``).

Schema (``repro.run_report/v1``)::

    {
      "schema":  "repro.run_report/v1",
      "runs":    <identify_many invocations aggregated>,
      "wall_s":  <total fan-out wall time, seconds>,
      "lights":  {"total": N, "ok": N, "failed": N},
      "stages":  {"<stage>": {"wall_s": s, "calls": n}, ...},
      "counters": {"<counter>": n, ...},
      "failures": {"<iid>:<approach>": {"stage": ..., "error_type": ...,
                                        "message": ...}, ...},
      "failure_taxonomy": {"<stage>/<error_type>": n, ...}
    }

``stages.wall_s`` sums *worker* time, so with W workers it can exceed
``wall_s`` by up to a factor of W — that ratio is the effective
parallel efficiency of the run.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from .telemetry import StageTelemetry

__all__ = [
    "ChunkStats",
    "LightFailure",
    "RunReport",
    "ServiceStats",
    "ShardStats",
    "format_light_key",
]


def format_light_key(key: Any) -> str:
    """Stable string form of a light key for JSON maps (``"3:NS"``)."""
    if isinstance(key, tuple):
        return ":".join(str(part) for part in key)
    return str(key)


@dataclass(frozen=True)
class LightFailure:
    """Typed record of one light's failed identification.

    Attributes
    ----------
    error_type:
        The exception class name (``InsufficientDataError``,
        ``ValueError``, …).
    stage:
        The pipeline stage that raised (``samples``, ``stops``,
        ``cycle``, ``red``, ``superposition``, ``changepoint``,
        ``refine`` — or ``worker`` when the containment wrapper itself
        died, e.g. an unpicklable result).
    message:
        The exception message.
    """

    error_type: str
    stage: str
    message: str

    @classmethod
    def from_exception(cls, exc: BaseException, stage: Optional[str]) -> "LightFailure":
        return cls(
            error_type=type(exc).__name__,
            stage=str(stage) if stage else "setup",
            message=str(exc),
        )

    @property
    def insufficient_data(self) -> bool:
        """True for expected data-poverty failures (not bugs)."""
        return self.error_type == "InsufficientDataError"

    @property
    def kind(self) -> str:
        """Taxonomy bucket: ``"<stage>/<error_type>"``."""
        return f"{self.stage}/{self.error_type}"

    def __str__(self) -> str:
        return f"[{self.stage}] {self.error_type}: {self.message}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, str]) -> "LightFailure":
        return cls(
            error_type=d["error_type"], stage=d["stage"], message=d.get("message", "")
        )


@dataclass(frozen=True)
class ChunkStats:
    """Observability record of one streaming ingest step.

    Attributes
    ----------
    chunk_index:
        0-based position in the ingest sequence.
    n_records:
        Records the chunk carried (summed over lights).
    n_touched:
        Lights that received records.
    n_dirty:
        Lights whose caches were invalidated (touched lights plus their
        enhancement-coupled perpendicular partners).
    n_refreshed:
        Lights actually re-identified during this ingest.
    wall_s:
        Ingest wall time, seconds.
    """

    chunk_index: int
    n_records: int
    n_touched: int
    n_dirty: int
    n_refreshed: int
    wall_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chunk_index": self.chunk_index,
            "n_records": self.n_records,
            "n_touched": self.n_touched,
            "n_dirty": self.n_dirty,
            "n_refreshed": self.n_refreshed,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChunkStats":
        return cls(
            chunk_index=int(d["chunk_index"]),
            n_records=int(d["n_records"]),
            n_touched=int(d["n_touched"]),
            n_dirty=int(d["n_dirty"]),
            n_refreshed=int(d["n_refreshed"]),
            wall_s=float(d["wall_s"]),
        )


@dataclass(frozen=True)
class ShardStats:
    """Observability record of one sharded-backend work unit.

    The shard backend's two claims — balanced shards and zero-copy
    dispatch — are auditable from these records alone: ``n_records``
    should be near-uniform across shards, and ``common_bytes`` (the
    pickled size of the store handle each worker received) stays at
    metadata scale no matter how large the city's columns are, because
    the column data travels via mmap-backed files instead.

    Attributes
    ----------
    shard_index:
        0-based position in the shard fan-out.
    n_lights:
        Lights the shard carried.
    n_records:
        Store rows backing those lights (the balance weight).
    n_ok:
        Lights that produced an estimate.
    n_failed:
        Lights that landed in the failure map.
    wall_s:
        Worker-side wall time for the shard, seconds.
    common_bytes:
        Bytes of the shared store handle shipped to the worker.
    """

    shard_index: int
    n_lights: int
    n_records: int
    n_ok: int
    n_failed: int
    wall_s: float
    common_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_index": self.shard_index,
            "n_lights": self.n_lights,
            "n_records": self.n_records,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_s": self.wall_s,
            "common_bytes": self.common_bytes,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ShardStats":
        return cls(
            shard_index=int(d["shard_index"]),
            n_lights=int(d["n_lights"]),
            n_records=int(d["n_records"]),
            n_ok=int(d["n_ok"]),
            n_failed=int(d["n_failed"]),
            wall_s=float(d["wall_s"]),
            common_bytes=int(d["common_bytes"]),
        )


@dataclass(frozen=True)
class ServiceStats:
    """Observability record of one serving tenant (``repro.serve``).

    The serving layer's two claims — readers never block ingest, and
    backpressure instead of unbounded buffering — are auditable from
    these records: ``evaluate_p99_s`` stays flat as tenants are added
    (readers only touch published snapshots), and ``queue_high_water``
    never exceeds the configured ``max_queue_depth``.

    Attributes
    ----------
    tenant:
        Tenant name.
    n_chunks:
        Chunks applied and published (the final snapshot version).
    n_records:
        Records ingested (summed over chunks).
    n_evaluates:
        Completed evaluate calls.
    n_rejected_ingest:
        Submits refused by quota (queue full under the reject policy,
        or the light budget).
    n_rejected_evaluate:
        Evaluate calls refused by the in-flight quota.
    n_dropped_chunks:
        Queued chunks discarded by a writer crash.
    queue_high_water:
        Deepest the ingest queue ever got.
    ingest_wall_s:
        Total wall time spent in chunk application proper (the
        session ingest + snapshot build), seconds — directly
        comparable to a bare ``StreamSession`` replaying the same
        chunks (the SLO bench bounds the ratio).
    ingest_lag_p50_s / ingest_lag_p99_s:
        Submit-to-publish latency percentiles, seconds.
    publish_p50_s / publish_p99_s:
        Dequeue-to-publish latency percentiles, seconds; in offload
        mode this additionally counts executor queueing behind other
        tenants' applies.
    evaluate_p50_s / evaluate_p99_s:
        Reader-observed evaluate latency percentiles, seconds — the
        numbers the SLO bench asserts against.
    """

    tenant: str
    n_chunks: int
    n_records: int
    n_evaluates: int
    n_rejected_ingest: int
    n_rejected_evaluate: int
    n_dropped_chunks: int
    queue_high_water: int
    ingest_wall_s: float
    ingest_lag_p50_s: float
    ingest_lag_p99_s: float
    publish_p50_s: float
    publish_p99_s: float
    evaluate_p50_s: float
    evaluate_p99_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "n_chunks": self.n_chunks,
            "n_records": self.n_records,
            "n_evaluates": self.n_evaluates,
            "n_rejected_ingest": self.n_rejected_ingest,
            "n_rejected_evaluate": self.n_rejected_evaluate,
            "n_dropped_chunks": self.n_dropped_chunks,
            "queue_high_water": self.queue_high_water,
            "ingest_wall_s": self.ingest_wall_s,
            "ingest_lag_p50_s": self.ingest_lag_p50_s,
            "ingest_lag_p99_s": self.ingest_lag_p99_s,
            "publish_p50_s": self.publish_p50_s,
            "publish_p99_s": self.publish_p99_s,
            "evaluate_p50_s": self.evaluate_p50_s,
            "evaluate_p99_s": self.evaluate_p99_s,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServiceStats":
        return cls(
            tenant=str(d["tenant"]),
            n_chunks=int(d["n_chunks"]),
            n_records=int(d["n_records"]),
            n_evaluates=int(d["n_evaluates"]),
            n_rejected_ingest=int(d["n_rejected_ingest"]),
            n_rejected_evaluate=int(d["n_rejected_evaluate"]),
            n_dropped_chunks=int(d["n_dropped_chunks"]),
            queue_high_water=int(d["queue_high_water"]),
            ingest_wall_s=float(d["ingest_wall_s"]),
            ingest_lag_p50_s=float(d["ingest_lag_p50_s"]),
            ingest_lag_p99_s=float(d["ingest_lag_p99_s"]),
            publish_p50_s=float(d["publish_p50_s"]),
            publish_p99_s=float(d["publish_p99_s"]),
            evaluate_p50_s=float(d["evaluate_p50_s"]),
            evaluate_p99_s=float(d["evaluate_p99_s"]),
        )


@dataclass
class RunReport:
    """Aggregated observability record of one (or many) fan-out runs.

    Pass an instance to :func:`repro.core.pipeline.identify_many` (or
    :func:`repro.eval.harness.evaluate_at_times`) and it fills up with
    per-stage wall times, pipeline counters, and the typed failure map;
    repeated calls keep aggregating into the same report.
    """

    n_lights: int = 0
    n_ok: int = 0
    n_failed: int = 0
    runs: int = 0
    wall_s: float = 0.0
    telemetry: StageTelemetry = field(default_factory=StageTelemetry)
    failures: Dict[str, LightFailure] = field(default_factory=dict)
    chunks: List[ChunkStats] = field(default_factory=list)
    shards: List[ShardStats] = field(default_factory=list)
    services: List[ServiceStats] = field(default_factory=list)

    # -- aggregation -------------------------------------------------

    def record_chunk(self, stats: ChunkStats) -> None:
        """Fold one streaming ingest step's :class:`ChunkStats` in."""
        self.chunks.append(stats)

    def record_shard(self, stats: ShardStats) -> None:
        """Fold one sharded-backend work unit's :class:`ShardStats` in."""
        self.shards.append(stats)

    def record_service(self, stats: ServiceStats) -> None:
        """Fold one serving tenant's :class:`ServiceStats` in."""
        self.services.append(stats)

    def record_light(
        self,
        key: Any,
        telemetry: Optional[StageTelemetry] = None,
        failure: Optional[LightFailure] = None,
    ) -> None:
        """Fold one light's outcome (telemetry and/or failure) in."""
        self.n_lights += 1
        if telemetry is not None:
            self.telemetry.merge(telemetry)
        if failure is None:
            self.n_ok += 1
        else:
            self.n_failed += 1
            self.failures[format_light_key(key)] = failure

    def finish_run(self, wall_s: float) -> None:
        """Close out one ``identify_many`` invocation of *wall_s* seconds."""
        self.runs += 1
        self.wall_s += float(wall_s)

    @contextmanager
    def run_timer(self) -> Iterator["RunReport"]:
        """Time one fan-out invocation and fold it in via :meth:`finish_run`.

        The clock read lives here — in the observability layer — so the
        deterministic pipeline modules never touch the host clock
        themselves (the REP004 invariant).  The run is recorded even
        when the timed body raises.
        """
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.finish_run(time.perf_counter() - t0)

    # -- views -------------------------------------------------------

    @property
    def stage_s(self) -> Dict[str, float]:
        """Per-stage wall-time totals, seconds (summed over workers)."""
        return self.telemetry.stage_s

    @property
    def counters(self) -> Dict[str, int]:
        """Pipeline counter totals."""
        return self.telemetry.counters

    def failure_taxonomy(self) -> Dict[str, int]:
        """Failure counts bucketed by ``"<stage>/<error_type>"``."""
        tax: Dict[str, int] = {}
        for f in self.failures.values():
            tax[f.kind] = tax.get(f.kind, 0) + 1
        return tax

    def summary(self) -> str:
        """Human-readable multi-line digest (what the CLI prints)."""
        lines = [
            f"lights: {self.n_lights}  ok: {self.n_ok}  failed: {self.n_failed}"
            f"  (runs: {self.runs}, wall: {self.wall_s:.2f}s)"
        ]
        if self.stage_s:
            total = max(self.telemetry.total_s(), 1e-12)
            lines.append("stage wall time (worker-summed):")
            for name, s in sorted(self.stage_s.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {name:<14} {s:8.3f}s  {100 * s / total:5.1f}%")
        if self.failures:
            lines.append("failure taxonomy:")
            for kind, n in sorted(self.failure_taxonomy().items()):
                lines.append(f"  {kind:<40} {n}")
        return "\n".join(lines)

    # -- serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.run_report/v1",
            "runs": self.runs,
            "wall_s": self.wall_s,
            "lights": {
                "total": self.n_lights,
                "ok": self.n_ok,
                "failed": self.n_failed,
            },
            "stages": {
                name: {
                    "wall_s": self.telemetry.stage_s[name],
                    "calls": self.telemetry.stage_calls.get(name, 0),
                }
                for name in sorted(self.telemetry.stage_s)
            },
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "failures": {
                key: f.to_dict() for key, f in sorted(self.failures.items())
            },
            "failure_taxonomy": self.failure_taxonomy(),
            # Optional sections: present only for streaming- or
            # shard-backend runs, so one-shot reports keep the exact v1
            # document shape.
            **(
                {"chunks": [c.to_dict() for c in self.chunks]}
                if self.chunks
                else {}
            ),
            **(
                {"shards": [s.to_dict() for s in self.shards]}
                if self.shards
                else {}
            ),
            **(
                {"services": [s.to_dict() for s in self.services]}
                if self.services
                else {}
            ),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: Union[str, "object"]) -> None:
        """Write the JSON document to *path*."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunReport":
        tel = StageTelemetry(
            stage_s={k: float(v["wall_s"]) for k, v in d.get("stages", {}).items()},
            stage_calls={k: int(v["calls"]) for k, v in d.get("stages", {}).items()},
            counters={k: int(v) for k, v in d.get("counters", {}).items()},
        )
        lights = d.get("lights", {})
        return cls(
            n_lights=int(lights.get("total", 0)),
            n_ok=int(lights.get("ok", 0)),
            n_failed=int(lights.get("failed", 0)),
            runs=int(d.get("runs", 0)),
            wall_s=float(d.get("wall_s", 0.0)),
            telemetry=tel,
            failures={
                key: LightFailure.from_dict(f)
                for key, f in d.get("failures", {}).items()
            },
            chunks=[ChunkStats.from_dict(c) for c in d.get("chunks", [])],
            shards=[ShardStats.from_dict(s) for s in d.get("shards", [])],
            services=[ServiceStats.from_dict(s) for s in d.get("services", [])],
        )

    @classmethod
    def load(cls, path: Union[str, "object"]) -> "RunReport":
        """Read a report back from a ``--report`` JSON file."""
        with open(path, encoding="utf-8") as fp:
            return cls.from_dict(json.load(fp))
