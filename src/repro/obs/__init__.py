"""Pipeline observability: stage timers, counters, and run reports.

The fault-containment counterpart of the paper's "easily paralleled"
claim: at city scale sparse or garbage partitions are the common case,
so every fan-out records *where* time went and *why* lights failed.
See :class:`StageTelemetry` (per-light accumulator),
:class:`LightFailure` (typed failure-map entry), and
:class:`RunReport` (aggregated, JSON-exportable run record).
"""

from .report import (
    ChunkStats,
    LightFailure,
    RunReport,
    ServiceStats,
    ShardStats,
    format_light_key,
)
from .telemetry import StageTelemetry, SupportsCount

__all__ = [
    "ChunkStats",
    "LightFailure",
    "RunReport",
    "ServiceStats",
    "ShardStats",
    "StageTelemetry",
    "SupportsCount",
    "format_light_key",
]
