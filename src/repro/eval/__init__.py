"""Evaluation harness: error metrics, CDFs, and randomized sweeps
reproducing §VIII.A (Figs. 13 and 14)."""

from .cdf import cdf_at, empirical_cdf, fraction_within, summarize_errors
from .errors import ScheduleErrors, compare
from .frontier import FrontierPoint, FrontierResult, FrontierSpec, run_frontier
from .harness import (
    EvalResult,
    EvalSample,
    evaluate_at_times,
    evaluate_replay,
    simulate_and_partition,
)

__all__ = [
    "cdf_at",
    "empirical_cdf",
    "fraction_within",
    "summarize_errors",
    "ScheduleErrors",
    "compare",
    "FrontierPoint",
    "FrontierResult",
    "FrontierSpec",
    "run_frontier",
    "EvalResult",
    "EvalSample",
    "evaluate_at_times",
    "evaluate_replay",
    "simulate_and_partition",
]
