"""Error metrics for identified schedules vs ground truth (§VIII.A).

The three quantities Fig. 13/14 reports:

* **cycle-length error** — plain difference of cycle lengths;
* **red-light-length error** — plain difference of red durations;
* **signal-change-time error** — *circular* difference of the
  green→red change phase (a change detected 2 s before the true one on
  a 98 s cycle is a 2 s error, not 96 s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import circular_diff
from ..lights.schedule import LightSchedule
from ..core.signal_types import ScheduleEstimate

__all__ = ["ScheduleErrors", "compare"]


@dataclass(frozen=True)
class ScheduleErrors:
    """Signed identification errors of one estimate."""

    cycle_s: float
    red_s: float
    change_s: float

    @property
    def max_abs(self) -> float:
        """Worst of the three absolute errors."""
        return max(abs(self.cycle_s), abs(self.red_s), abs(self.change_s))

    def within(self, tol_s: float) -> bool:
        """Whether every error is within ``tol_s`` seconds."""
        return self.max_abs <= tol_s

    def row(self) -> str:
        return (
            f"dCycle={self.cycle_s:+6.1f}s dRed={self.red_s:+6.1f}s "
            f"dChange={self.change_s:+6.1f}s"
        )


def compare(estimate: ScheduleEstimate, truth: LightSchedule) -> ScheduleErrors:
    """Errors of an estimate against the true schedule.

    The change-time error compares the *absolute* green→red instants on
    the true cycle's circle, so a correct phase expressed with a
    slightly different cycle length still scores near zero.
    """
    change = float(
        circular_diff(
            # red→green instants: the change the detector measures
            estimate.schedule.offset_s + estimate.schedule.red_s,
            truth.offset_s + truth.red_s,
            truth.cycle_s,
        )
    )
    return ScheduleErrors(
        cycle_s=float(estimate.cycle_s - truth.cycle_s),
        red_s=float(estimate.red_s - truth.red_s),
        change_s=change,
    )
