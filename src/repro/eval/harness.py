"""Evaluation harness (§VIII.A): repeated randomized identification runs.

Drives the full stack end-to-end: simulate a scenario → generate raw
taxi reports → preprocess (match + partition) → identify every light at
many randomly chosen time spots → score against the scenario's ground
truth.  Produces the data behind Fig. 13 (one snapshot) and Fig. 14
(error CDFs over 1000+ runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, as_rng
from ..core.pipeline import PipelineConfig, identify_many
from ..core.signal_types import ScheduleEstimate
from ..lights.schedule import LightSchedule
from ..matching.mapmatch import MatchConfig, match_trace
from ..matching.partition import LightKey, LightPartition, partition_by_light
from ..obs import LightFailure, RunReport
from ..parallel.pool import pmap_seeded
from ..trace.store import PartitionStore
from ..sim.queueing import SignalizedApproachSim
from ..trace.generator import TraceGenerator
from ..trace.records import TraceArrays
from .errors import ScheduleErrors, compare

__all__ = [
    "EvalSample",
    "EvalResult",
    "simulate_and_partition",
    "evaluate_at_times",
    "evaluate_replay",
]

#: Ground-truth lookup: (intersection_id, approach, time) → LightSchedule.
TruthFn = Callable[[int, str, float], LightSchedule]


@dataclass(frozen=True)
class EvalSample:
    """One (light, time spot) evaluation outcome."""

    key: LightKey
    at_time: float
    estimate: Optional[ScheduleEstimate]
    errors: Optional[ScheduleErrors]
    failure: Optional[LightFailure] = None

    @property
    def ok(self) -> bool:
        return self.estimate is not None


@dataclass
class EvalResult:
    """All samples of an evaluation sweep, with columnar error views."""

    samples: List[EvalSample]

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def n_failures(self) -> int:
        """Samples whose window was too sparse to estimate."""
        return sum(1 for s in self.samples if not s.ok)

    def _errors(self, attr: str) -> np.ndarray:
        return np.array(
            [
                getattr(s.errors, attr) if s.errors is not None else np.nan
                for s in self.samples
            ]
        )

    @property
    def cycle_errors(self) -> np.ndarray:
        """Signed cycle-length errors (NaN for failed samples)."""
        return self._errors("cycle_s")

    @property
    def red_errors(self) -> np.ndarray:
        """Signed red-duration errors (NaN for failed samples)."""
        return self._errors("red_s")

    @property
    def change_errors(self) -> np.ndarray:
        """Signed (circular) change-time errors (NaN for failed samples)."""
        return self._errors("change_s")

    def for_key(self, key: LightKey) -> "EvalResult":
        """Samples of one light."""
        return EvalResult([s for s in self.samples if s.key == key])


def _simulate_and_sample_approach(args, rng: np.random.Generator) -> TraceArrays:
    """Fused worker: simulate one approach AND sample its taxi reports.

    Fusing the two stages keeps the heavyweight 1 Hz vehicle tracks
    inside the worker — only the ~20x smaller sampled trace crosses the
    process boundary, which is what makes the fan-out actually scale
    (see ``bench_parallel_scaling``).  The per-approach RNG stream makes
    the output independent of worker count, though note the fused trace
    differs (by design) from the unfused two-stage stream for the same
    seed.
    """
    spec, generator, first_taxi_id = args
    sim = SignalizedApproachSim(
        controller=spec.controller,
        arrivals=spec.arrivals,
        config=spec.config,
        segment_id=spec.segment_id,
    )
    tracks = sim.run(spec.t0, spec.t1, rng=rng)
    return generator.generate_for_segment(
        tracks, rng, first_taxi_id=first_taxi_id
    )


def simulate_and_partition(
    scenario,
    t0: float,
    t1: float,
    *,
    seed: int = 0,
    generator: Optional[TraceGenerator] = None,
    match_config: Optional[MatchConfig] = None,
    max_workers: Optional[int] = None,
    serial: bool = False,
    fused: bool = False,
) -> Tuple[TraceArrays, Dict[LightKey, LightPartition]]:
    """Run a scenario end-to-end up to per-light partitions.

    ``scenario`` is any object exposing ``simulation()`` and ``net``
    (both canned scenarios qualify).  Returns the raw trace too, so
    statistics benches reuse the same data.

    ``fused=True`` runs simulation *and* trace sampling inside each
    worker (higher arithmetic intensity, ~20x less inter-process data);
    results are deterministic per seed but follow a different random
    stream than the default two-stage path.
    """
    # Construct per call: a default in the signature would be one shared
    # instance across every call site.
    match_config = MatchConfig() if match_config is None else match_config
    gen = generator or TraceGenerator(scenario.net)
    if fused:
        sim = scenario.simulation()
        specs = sim.specs(t0, t1)
        jobs = [
            (spec, gen, 10_000 + 100_000 * i) for i, spec in enumerate(specs)
        ]
        parts = pmap_seeded(
            _simulate_and_sample_approach, jobs, base_seed=seed,
            max_workers=max_workers, serial=serial,
        )
        trace = TraceArrays.concat(parts).sorted_by_time()
    else:
        sim = scenario.simulation()
        result = sim.run(t0, t1, seed=seed, max_workers=max_workers, serial=serial)
        trace = gen.generate(result, rng=as_rng(seed + 1))
    matched = match_trace(trace, scenario.net, match_config)
    partitions = partition_by_light(matched, scenario.net)
    return trace, partitions


def evaluate_at_times(
    partitions: Dict[LightKey, LightPartition],
    truth_fn: TruthFn,
    times: Sequence[float],
    *,
    config: Optional[PipelineConfig] = None,
    max_workers: Optional[int] = None,
    serial: bool = False,
    backend: Optional[str] = None,
    report: Optional[RunReport] = None,
) -> EvalResult:
    """Identify every light at every time spot and score it.

    Per-light identification already fans out inside
    :func:`repro.core.pipeline.identify_many` (``backend`` selects
    serial, process-pool, batched, or stream execution); time spots run
    serially so the per-run column store / process pool is reused
    efficiently.  The partitions are packed into a
    :class:`~repro.trace.store.PartitionStore` **once** and shared
    across every time spot — repeated spots reuse cached per-light
    grids and stop events instead of re-deriving them per call.

    ``report`` (a :class:`~repro.obs.report.RunReport`) aggregates
    stage wall times, counters, and the typed failure map across all
    time spots of the sweep.
    """
    config = PipelineConfig() if config is None else config
    store = PartitionStore.from_partitions(partitions)
    samples: List[EvalSample] = []
    for at_time in times:
        estimates, failures = identify_many(
            partitions, float(at_time),
            config=config, max_workers=max_workers, serial=serial,
            backend=backend, store=store, report=report,
        )
        for key in sorted(partitions):
            iid, approach = key
            if key in estimates:
                est = estimates[key]
                truth = truth_fn(iid, approach, float(at_time))
                samples.append(
                    EvalSample(
                        key=key,
                        at_time=float(at_time),
                        estimate=est,
                        errors=compare(est, truth),
                    )
                )
            else:
                samples.append(
                    EvalSample(
                        key=key,
                        at_time=float(at_time),
                        estimate=None,
                        errors=None,
                        failure=failures.get(key),
                    )
                )
    return EvalResult(samples)


def evaluate_replay(
    partitions: Dict[LightKey, LightPartition],
    truth_fn: TruthFn,
    edges: Sequence[float],
    *,
    config: Optional[PipelineConfig] = None,
    report: Optional[RunReport] = None,
) -> EvalResult:
    """Replay a recorded scenario chunk-by-chunk through a stream session.

    The partitions are sliced at the time ``edges`` and ingested in
    order into a :class:`~repro.stream.StreamSession`; after each chunk
    the session refreshes only the dirty lights and every light's
    current estimate is scored against the truth at the chunk's end —
    the streaming analogue of :func:`evaluate_at_times`, exercising the
    incremental path end to end (Fig. 13/14 numbers, but maintained
    online).  Per-chunk :class:`~repro.obs.report.ChunkStats` fold into
    ``report``.
    """
    from ..stream.chunking import split_by_time
    from ..stream.session import StreamSession

    session = StreamSession(config=config, report=report)
    samples: List[EvalSample] = []
    for chunk, hi in zip(split_by_time(partitions, edges), edges[1:]):
        at_time = float(hi)
        update = session.ingest(chunk, at_time=at_time)
        for key in sorted(session.store):
            iid, approach = key
            est = update.estimates.get(key)
            if est is not None:
                truth = truth_fn(iid, approach, at_time)
                samples.append(
                    EvalSample(
                        key=key, at_time=at_time,
                        estimate=est, errors=compare(est, truth),
                    )
                )
            else:
                samples.append(
                    EvalSample(
                        key=key, at_time=at_time, estimate=None, errors=None,
                        failure=update.failures.get(key),
                    )
                )
    return EvalResult(samples)
