"""Empirical CDF helpers for the Fig. 14 error analysis."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .._util import check_1d

__all__ = ["empirical_cdf", "fraction_within", "cdf_at", "summarize_errors"]


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """``(x, F(x))`` of the empirical distribution.

    ``x`` is sorted; ``F`` steps from 1/n to 1.  NaNs are dropped.
    """
    v = check_1d("values", values)
    v = np.sort(v[~np.isnan(v)])
    if v.size == 0:
        return v, v
    return v, np.arange(1, v.size + 1) / v.size


def fraction_within(values: Sequence[float], tol: float) -> float:
    """Share of |values| ≤ tol (NaNs count as misses, like failed runs)."""
    v = check_1d("values", values)
    if v.size == 0:
        return float("nan")
    return float(np.mean(np.abs(np.nan_to_num(v, nan=np.inf)) <= tol))


def cdf_at(values: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the |error| CDF at given tolerance points."""
    v = np.abs(check_1d("values", values))
    v = np.sort(v[~np.isnan(v)])
    pts = check_1d("points", points)
    if v.size == 0:
        return np.full(pts.shape, np.nan)
    return np.searchsorted(v, pts, side="right") / v.size


def summarize_errors(values: Sequence[float], name: str = "") -> str:
    """One printable row: median / p80 / p95 of |errors| and gross rate."""
    v = np.abs(check_1d("values", values))
    v = v[~np.isnan(v)]
    if v.size == 0:
        return f"{name}: no data"
    return (
        f"{name}: n={v.size} median={np.median(v):.1f}s "
        f"p80={np.quantile(v, 0.8):.1f}s p95={np.quantile(v, 0.95):.1f}s "
        f">10s={100 * np.mean(v > 10):.1f}%"
    )
