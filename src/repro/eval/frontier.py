"""Identifiability-frontier evaluation: adaptivity vs identification.

The paper's pipeline (§IV–§VII) assumes fixed or pre-programmed plans.
This module quantifies what happens when that assumption erodes: it
sweeps the responsiveness knob ``alpha`` of the adaptive synthetic
scenarios (:func:`repro.scenario.adaptive_synthetic_lights`, 0 = fixed
plan, 1 = fully demand-driven) and runs the full identify/monitor
pipeline on each generated city, producing one frontier point per
``alpha``:

* **cycle-estimate error** — mean/p90 absolute error of the identified
  cycle against the controller's *effective* realized schedule at each
  eval time, plus per-stage failure counts;
* **changepoint false alarms** — plan changes reported by
  ``detect_plan_changes`` on a steady (no programmed switch) adaptive
  city, where every detection is spurious, normalized per light-hour;
* **changepoint miss rate and lag** — on a twin city with a programmed
  plan switch under adaptation, the fraction of lights whose switch is
  never detected within ``detect_window_s`` and the mean detection lag
  of the hits;
* **cross-backend agreement** — every configured backend must return
  bit-identical estimates (mismatch count per point).

The ``alpha = 0`` point doubles as a regression anchor: its partitions
and estimates are compared bit-for-bit against the pre-existing
fixed-plan pipeline (``fixed_plan_bitwise_match``), proving the
adaptive machinery is a strict superset of the paper's workload.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.monitor import detect_plan_changes, monitor_cycle, repair_outliers
from ..core.pipeline import BACKENDS, identify_many
from ..core.signal_types import ScheduleEstimate
from ..matching.partition import LightKey, LightPartition
from ..obs.report import LightFailure
from ..scenario.synthetic import (
    AdaptiveSyntheticLight,
    adaptive_synthetic_lights,
    synthetic_lights,
    synthetic_partitions,
)
from ..trace.store import PartitionStore

__all__ = ["FrontierSpec", "FrontierPoint", "FrontierResult", "run_frontier"]

_EstTuple = Tuple[float, float, float, float]


@dataclass(frozen=True)
class FrontierSpec:
    """Configuration of one identifiability-frontier sweep."""

    alphas: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    kind: str = "gap"
    n_intersections: int = 4
    horizon_s: float = 9000.0
    seed: int = 0
    backends: Tuple[str, ...] = ("batched",)
    rate_per_hour: float = 240.0
    eval_start_s: float = 3600.0
    eval_every_s: float = 1800.0
    monitor_every_s: float = 300.0
    monitor_window_s: float = 1800.0
    switch_fraction: float = 0.5
    detect_window_s: float = 2700.0

    def __post_init__(self) -> None:
        if not self.alphas:
            raise ValueError("alphas must be non-empty")
        for a in self.alphas:
            if not 0.0 <= a <= 1.0:
                raise ValueError(f"alpha must be in [0, 1], got {a}")
        for b in self.backends:
            if b not in BACKENDS:
                raise ValueError(f"unknown backend {b!r}; expected one of {BACKENDS}")
        if not self.backends:
            raise ValueError("backends must be non-empty")
        if self.n_intersections < 1:
            raise ValueError("n_intersections must be >= 1")
        if not 0.0 < self.eval_start_s <= self.horizon_s:
            raise ValueError("eval_start_s must lie in (0, horizon_s]")
        if not 0.0 < self.switch_fraction < 1.0:
            raise ValueError("switch_fraction must lie in (0, 1)")

    def eval_times(self) -> List[float]:
        """Identification eval instants over the horizon."""
        return [
            float(t)
            for t in np.arange(self.eval_start_s, self.horizon_s + 1e-9, self.eval_every_s)
        ]

    @property
    def switch_at_s(self) -> float:
        """Programmed plan-switch instant of the switch variant."""
        return self.horizon_s * self.switch_fraction


@dataclass(frozen=True)
class FrontierPoint:
    """Pipeline health at one responsiveness level."""

    alpha: float
    cycle_mae_s: float
    cycle_p90_s: float
    n_estimates: int
    n_failures: int
    backend_mismatches: int
    false_alarms: int
    false_alarms_per_light_hour: float
    miss_rate: float
    mean_lag_s: float
    n_lights: int


@dataclass(frozen=True)
class FrontierResult:
    """One full sweep: the frontier curve plus its regression anchor."""

    spec: FrontierSpec
    points: Tuple[FrontierPoint, ...]
    #: ``alpha = 0`` partitions and estimates bit-for-bit equal to the
    #: fixed-plan pipeline; ``None`` when 0 was not in the sweep.
    fixed_plan_bitwise_match: Optional[bool]

    def degradation_monotone(self) -> bool:
        """Direction check: the most responsive point's cycle error
        strictly exceeds the least responsive point's."""
        pts = sorted(self.points, key=lambda p: p.alpha)
        return pts[-1].cycle_mae_s > pts[0].cycle_mae_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": asdict(self.spec),
            "points": [asdict(p) for p in sorted(self.points, key=lambda p: p.alpha)],
            "fixed_plan_bitwise_match": self.fixed_plan_bitwise_match,
            "degradation_monotone": self.degradation_monotone(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """Human-readable frontier table."""
        lines = [
            f"identifiability frontier — kind={self.spec.kind} "
            f"intersections={self.spec.n_intersections} seed={self.spec.seed} "
            f"backends={list(self.spec.backends)}",
            f"{'alpha':>6} {'cycMAE':>8} {'cycP90':>8} {'ok':>5} {'fail':>5} "
            f"{'FA/lh':>7} {'miss%':>6} {'lag_s':>7} {'bkdiff':>6}",
        ]
        for p in sorted(self.points, key=lambda q: q.alpha):
            lines.append(
                f"{p.alpha:>6.2f} {p.cycle_mae_s:>8.2f} {p.cycle_p90_s:>8.2f} "
                f"{p.n_estimates:>5d} {p.n_failures:>5d} "
                f"{p.false_alarms_per_light_hour:>7.3f} {100.0 * p.miss_rate:>6.1f} "
                f"{p.mean_lag_s:>7.1f} {p.backend_mismatches:>6d}"
            )
        anchor = self.fixed_plan_bitwise_match
        if anchor is not None:
            lines.append(
                "fixed-plan (alpha=0) bitwise anchor: "
                + ("MATCH" if anchor else "MISMATCH")
            )
        return "\n".join(lines)


def _est_tuple(est: ScheduleEstimate) -> _EstTuple:
    s = est.schedule
    return (s.cycle_s, s.red_s, s.green_s, s.offset_s)


def _estimate_map(
    estimates: Mapping[LightKey, ScheduleEstimate],
    failures: Mapping[LightKey, LightFailure],
) -> Tuple[Dict[LightKey, _EstTuple], Tuple[LightKey, ...]]:
    return (
        {key: _est_tuple(est) for key, est in estimates.items()},
        tuple(sorted(failures)),
    )


def _partitions_bitwise_equal(
    a: Mapping[LightKey, LightPartition], b: Mapping[LightKey, LightPartition]
) -> bool:
    if sorted(a) != sorted(b):
        return False
    for key in a:
        pa, pb = a[key], b[key]
        cols = (
            (pa.trace.t, pb.trace.t),
            (pa.trace.speed_kmh, pb.trace.speed_kmh),
            (pa.trace.lon, pb.trace.lon),
            (pa.trace.lat, pb.trace.lat),
            (pa.trace.heading_deg, pb.trace.heading_deg),
            (pa.trace.taxi_id, pb.trace.taxi_id),
            (pa.dist_to_stopline_m, pb.dist_to_stopline_m),
            (pa.segment_id, pb.segment_id),
        )
        for x, y in cols:
            if x.shape != y.shape or not np.array_equal(x, y):
                return False
    return True


def _changepoint_metrics(
    partitions: Mapping[LightKey, LightPartition],
    spec: FrontierSpec,
    *,
    switch_at_s: Optional[float],
) -> Tuple[int, float, float]:
    """(false_alarms, miss_rate, mean_lag_s) from the plan-change
    monitor over every light.  On the steady city (``switch_at_s`` is
    None) every detection is a false alarm; on the switch city,
    detections inside the post-switch window are hits."""
    false_alarms = 0
    lags: List[float] = []
    missed = 0
    for key in sorted(partitions):
        series = repair_outliers(
            monitor_cycle(
                partitions[key],
                0.0,
                spec.horizon_s,
                every_s=spec.monitor_every_s,
                window_s=spec.monitor_window_s,
            )
        )
        changes = detect_plan_changes(series)
        if switch_at_s is None:
            false_alarms += len(changes)
            continue
        hits = [
            c.at_time - switch_at_s
            for c in changes
            if switch_at_s <= c.at_time <= switch_at_s + spec.detect_window_s
        ]
        if hits:
            lags.append(hits[0])
        else:
            missed += 1
    if switch_at_s is None:
        return false_alarms, float("nan"), float("nan")
    n = max(len(partitions), 1)
    mean_lag = float(np.mean(lags)) if lags else float("nan")
    return 0, missed / n, mean_lag


def _run_point(spec: FrontierSpec, alpha: float) -> Tuple[FrontierPoint, Optional[bool]]:
    lights = adaptive_synthetic_lights(
        spec.n_intersections, alpha=alpha, kind=spec.kind, seed=spec.seed
    )
    partitions = synthetic_partitions(
        lights, 0.0, spec.horizon_s, rate_per_hour=spec.rate_per_hour, seed=spec.seed
    )
    truth: Dict[LightKey, AdaptiveSyntheticLight] = {lt.key: lt for lt in lights}
    store = PartitionStore.from_partitions(partitions)
    times = spec.eval_times()

    abs_errors: List[float] = []
    n_estimates = 0
    n_failures = 0
    mismatches = 0
    snapshots: List[Tuple[float, Dict[LightKey, _EstTuple], Tuple[LightKey, ...]]] = []
    for at in times:
        reference: Optional[Tuple[Dict[LightKey, _EstTuple], Tuple[LightKey, ...]]] = None
        for backend in spec.backends:
            estimates, failures = identify_many(
                partitions, at, backend=backend, store=store
            )
            current = _estimate_map(estimates, failures)
            if reference is None:
                reference = current
                n_estimates += len(estimates)
                n_failures += len(failures)
                for key, est in estimates.items():
                    true_cycle = truth[key].true_schedule(at).cycle_s
                    abs_errors.append(abs(est.schedule.cycle_s - true_cycle))
            elif current != reference:
                mismatches += 1
        assert reference is not None
        if alpha == 0.0:
            snapshots.append((at, reference[0], reference[1]))

    false_alarms, _, _ = _changepoint_metrics(partitions, spec, switch_at_s=None)
    light_hours = len(partitions) * max(spec.horizon_s - spec.monitor_window_s, 0.0) / 3600.0

    switch_lights = adaptive_synthetic_lights(
        spec.n_intersections,
        alpha=alpha,
        kind=spec.kind,
        seed=spec.seed,
        switch_at_s=spec.switch_at_s,
    )
    switch_partitions = synthetic_partitions(
        switch_lights, 0.0, spec.horizon_s, rate_per_hour=spec.rate_per_hour, seed=spec.seed
    )
    _, miss_rate, mean_lag = _changepoint_metrics(
        switch_partitions, spec, switch_at_s=spec.switch_at_s
    )

    point = FrontierPoint(
        alpha=alpha,
        cycle_mae_s=float(np.mean(abs_errors)) if abs_errors else float("nan"),
        cycle_p90_s=float(np.percentile(abs_errors, 90.0)) if abs_errors else float("nan"),
        n_estimates=n_estimates,
        n_failures=n_failures,
        backend_mismatches=mismatches,
        false_alarms=false_alarms,
        false_alarms_per_light_hour=false_alarms / light_hours if light_hours > 0 else 0.0,
        miss_rate=miss_rate,
        mean_lag_s=mean_lag,
        n_lights=len(partitions),
    )

    anchor: Optional[bool] = None
    if alpha == 0.0:
        anchor = _fixed_plan_anchor(spec, partitions, snapshots)
    return point, anchor


def _fixed_plan_anchor(
    spec: FrontierSpec,
    adaptive_partitions: Mapping[LightKey, LightPartition],
    snapshots: List[Tuple[float, Dict[LightKey, _EstTuple], Tuple[LightKey, ...]]],
) -> bool:
    """The regression anchor: regenerate the city through the original
    fixed-plan path and demand bit-identical partitions *and* estimates
    at every eval instant."""
    fixed_partitions = synthetic_partitions(
        synthetic_lights(spec.n_intersections, seed=spec.seed),
        0.0,
        spec.horizon_s,
        rate_per_hour=spec.rate_per_hour,
        seed=spec.seed,
    )
    if not _partitions_bitwise_equal(adaptive_partitions, fixed_partitions):
        return False
    store = PartitionStore.from_partitions(fixed_partitions)
    backend = spec.backends[0]
    for at, est_map, failed_keys in snapshots:
        estimates, failures = identify_many(
            fixed_partitions, at, backend=backend, store=store
        )
        if _estimate_map(estimates, failures) != (est_map, failed_keys):
            return False
    return True


def run_frontier(spec: FrontierSpec) -> FrontierResult:
    """Run the full sweep: one :class:`FrontierPoint` per ``alpha``."""
    points: List[FrontierPoint] = []
    fixed_match: Optional[bool] = None
    for alpha in spec.alphas:
        point, anchor = _run_point(spec, float(alpha))
        points.append(point)
        if anchor is not None:
            fixed_match = anchor
    return FrontierResult(
        spec=spec, points=tuple(points), fixed_plan_bitwise_match=fixed_match
    )
