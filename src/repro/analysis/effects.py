"""Interprocedural effect summaries over the call graph.

For every analyzed function this module computes an
:class:`EffectSummary` — the function's externally visible effects on
the two contracts the streaming backend's replay parity rests on:

**Cache coherence** (REP007).  Writes to a ``PartitionStore`` /
``StreamStore`` *data* attribute (the CSR columns and key tables)
silently invalidate every derived cache layered on top; the store
contract requires the matching ``invalidate_light`` (or an equivalent
full cache drop) on every path that mutates.  Summaries record local
data writes, memo fills (``store.cache[key] = ...``, checked against
the tuple-key convention ``invalidate_light`` purges by), and
invalidation calls — then propagate both bits to a fixpoint, so a
public entry point that mutates *through* helpers is still required to
invalidate.

**Process isolation** (REP008).  An object that escapes into a
``pmap`` / ``pmap_seeded`` / ``ProcessPoolExecutor`` fan-out is pickled
into worker processes; mutating it afterwards diverges the parent from
the workers' copies (or, on the in-process ``serial=True`` path,
mutates shared state under the workers' feet).  Summaries record
escape sites, per-parameter mutations (propagated through calls), and
— in the tests tree — treat session-/module-scoped pytest fixtures as
escaped-from-birth, which is exactly the shared-fixture write-through
bug PR 4's conftest guard could only catch at runtime.

**Set-order taint** (REP009).  A value whose iteration order derives
from a ``set`` keeps that arbitrary order through ``list``/``iter``/
comprehension transforms and across call boundaries; summaries track
whether a function *returns* unordered data and which parameters it
feeds into order-sensitive float reductions, so the taint is followed
through calls (the interprocedural generalization of REP006).

**Loop-blocking taint** (REP012).  An ``async def`` body must never
run CPU-heavy or synchronously-waiting code on the event loop: one
``identify_batch`` call inline stalls *every* tenant's latency SLO at
once.  Summaries record local blocking primitives (``time.sleep``,
sync file I/O, ``subprocess``, process-pool fan-outs, anything defined
in the identification-kernel modules) and propagate a ``may_block``
bit through call edges *and* function-reference arguments — stopping
at ``run_in_executor`` references, the sanctioned offload seam.

**Tenant/session write sets** (REP013/REP014/REP016).  Summaries
record which ``self.<attr>`` slots each method writes (assignment,
augmented assignment, deletion, or a mutating method call, including
through local aliases).  Combined with the writer-task closure seeded
from ``create_task`` spawns, the rules classify every attribute as
writer-owned or reader-side and prove the single-writer discipline.

Suppressions participate at the *effect* level: a store write carrying
an ``allow[REP007]`` comment (the sanctioned representation-flip seam)
is dropped from the summary, so it does not propagate unsafety to
callers — the suppression asserts the write preserves data, not merely
that the message is unwanted.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_callgraph,
    module_path,
    own_nodes,
)
from .numeric import NumericAnalysis, build_numeric

__all__ = [
    "STORE_CLASSES",
    "DATA_ATTRS",
    "VIEW_ATTRS",
    "CACHE_ATTR",
    "CONSTRUCTION_EXEMPT",
    "BLOCKING_KERNEL_FILES",
    "Site",
    "EffectSummary",
    "Program",
    "build_program",
    "unordered_locals",
    "call_tainted_locals",
    "expr_unordered",
]

#: Classes whose instances carry the cache-coherence contract.
STORE_CLASSES = frozenset({"PartitionStore", "StreamStore"})

#: Store *data* state: mutating any of these changes what every derived
#: cache was computed from, so a full invalidation must accompany it.
DATA_ATTRS = frozenset({"_columns", "_offsets", "_regular_keys", "_irregular"})

#: Store *view* caches: per-light lazy extractions, purged (not filled)
#: by ``invalidate_light``.  Filling them is safe; popping them is an
#: invalidation effect.
VIEW_ATTRS = frozenset({"_partitions", "_stops", "_intervals"})

#: The open memo dictionary; keys must be tuples carrying the owning
#: LightKey at element [1] so ``invalidate_light`` can purge per light.
CACHE_ATTR = "cache"

#: Entry points that fan work out into processes: (function qualname
#: suffix, parameter names whose arguments escape).  ``func`` itself is
#: included — with ``serial=True`` the "worker" shares this process.
_ESCAPE_CALLS = {
    "pmap": ("func", "items", "common"),
    "pmap_seeded": ("func", "items"),
}
_EXECUTOR_METHODS = frozenset({"submit", "map"})

#: Mutating method names on common containers/arrays.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "sort", "reverse", "fill",
        "partial_fit", "put", "itemset", "resize",
    }
)

#: Order-sensitive reducers (mirrors REP006's set).
_REDUCERS = frozenset({"sum", "fsum", "prod", "cumsum", "nansum", "mean", "std", "var"})

#: Calls whose result preserves the argument's (arbitrary) iteration
#: order — taint flows through.
_ORDER_PRESERVING = frozenset({"list", "iter", "tuple", "reversed", "enumerate"})

#: Calls that impose a canonical order — taint is cleansed.
_ORDER_CLEANSING = frozenset({"sorted", "sort", "min", "max", "len", "frozenset"})

#: Modules whose *every* function is a loop-blocking primitive: the
#: identification kernels (REP005/REP010's analyzable surface) plus the
#: shard dispatch layer.  One inline call from a coroutine stalls every
#: tenant sharing the event loop.
BLOCKING_KERNEL_FILES = frozenset(
    {
        "repro/core/batch.py",
        "repro/core/cycle.py",
        "repro/core/superposition.py",
        "repro/core/changepoint.py",
        "repro/core/shard.py",
    }
)

#: Out-of-tree calls that synchronously block, by canonical dotted name
#: (import aliases resolved).  Deliberately small: ``open``/``sleep``/
#: ``subprocess`` are unambiguous; method tails like ``.result()`` or
#: ``.read()`` are too generic to match without receiver types.
_BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)

#: In-tree pool entry points: they join worker processes, so the *call*
#: blocks even though the work itself runs elsewhere.
_POOL_BLOCKING = frozenset({"pmap", "pmap_seeded"})


@dataclass(frozen=True)
class Site:
    """One effect occurrence: where, and a short human label."""

    path: str
    lineno: int
    col: int
    detail: str


@dataclass
class EffectSummary:
    """Externally visible effects of one function (local + transitive)."""

    qualname: str
    # -- cache coherence ------------------------------------------------
    data_writes: List[Site] = field(default_factory=list)
    bad_memo_fills: List[Site] = field(default_factory=list)
    invalidates_full: bool = False
    invalidates_derived: bool = False
    # -- process isolation ---------------------------------------------
    escapes: List[Tuple[str, Site]] = field(default_factory=list)
    mutations: List[Tuple[str, Site]] = field(default_factory=list)
    mutated_params: Set[str] = field(default_factory=set)
    # -- set-order taint ------------------------------------------------
    returns_unordered: bool = False
    unordered_sink_params: Set[str] = field(default_factory=set)
    # -- async discipline -----------------------------------------------
    #: Local loop-blocking primitives in this body (time.sleep, open,
    #: pool fan-outs, ...).
    blocking_sites: List[Site] = field(default_factory=list)
    #: ``self.<attr>`` slots this method writes (assignment, aug-assign,
    #: deletion, mutating method call — incl. through local aliases),
    #: excluding construction.
    self_attr_writes: List[Tuple[str, Site]] = field(default_factory=list)
    # -- transitive bits (fixpoint) -------------------------------------
    writes_data: bool = False
    invalidates: bool = False
    #: Whether calling this function may block the event loop, and the
    #: qualname chain that first proved it (for messages).
    may_block: bool = False
    block_chain: Tuple[str, ...] = ()
    #: Post-fixpoint anchors for REP012: every site in *this* body that
    #: enters a blocking chain (local primitive, call edge, or
    #: non-offload function reference), sorted and deduped by line.
    loop_block_anchors: List[Site] = field(default_factory=list)
    #: Call sites through which a transitive data write is reached,
    #: used to anchor findings at the caller when the write is remote.
    write_call_sites: List[Site] = field(default_factory=list)


@dataclass
class Program:
    """The whole-program analysis result the rules consume."""

    graph: CallGraph
    effects: Dict[str, EffectSummary]
    #: Shared pytest fixtures: name -> defining function qualname, for
    #: every ``@pytest.fixture(scope="session"|"module")`` in the tree.
    shared_fixtures: Dict[str, str]
    #: Suppressions consumed at the effect level, so the engine's
    #: unused-suppression audit counts them as used.
    used_suppressions: Set[Tuple[str, int, str]]
    #: Coroutines handed to ``create_task``/``ensure_future`` by library
    #: code (``Tenant.start`` spawning ``_run_writer``): the roots of
    #: the writer-task classification.  Spawns in tests/benchmarks are
    #: producers driving the system, not writer tasks, so they do not
    #: seed this set.
    writer_roots: Set[str] = field(default_factory=set)
    #: Everything the writer task may execute — the closure of the
    #: roots over call edges *and* function references (``_run_writer``
    #: hands ``self._apply`` to ``run_guarded`` / the executor).
    writer_reachable: Set[str] = field(default_factory=set)
    #: Precision-lattice fixpoint over the same call graph: per-function
    #: parameter/return precision, parity-sink conduits, and the
    #: collected sub-float64 violations REP017 reports.
    numeric: NumericAnalysis = field(default_factory=NumericAnalysis)
    #: ``# repro: tolerance[ulp=N]`` markers (the compiled tier's
    #: boundary annotation): function qualname -> declared ULP budget.
    tolerance_markers: Dict[str, int] = field(default_factory=dict)
    #: Marker lines that failed to parse or sit on no function
    #: definition: ``(path, lineno, reason)`` — REP019 reports them.
    tolerance_orphans: List[Tuple[str, int, str]] = field(
        default_factory=list
    )


SuppressionCheck = Callable[[str, int, str], bool]


def _never_suppressed(_path: str, _line: int, _rule: str) -> bool:
    return False


# ----------------------------------------------------------------------
# Local (per-function) effect extraction
# ----------------------------------------------------------------------

def _is_store_expr(fn: FunctionInfo, node: ast.expr) -> bool:
    """Whether *node* evaluates to a store instance, per the type env."""
    env = fn.env
    if env is None:
        return False
    t = env.type_of(node)
    return t is not None and t.split(".")[-1] in STORE_CLASSES


def _store_attr_target(
    fn: FunctionInfo, node: ast.expr
) -> Optional[Tuple[str, bool]]:
    """``(attr, subscripted)`` when *node* targets ``<store>.<attr>``.

    Handles both ``store.attr`` and ``store.attr[...]`` shapes.
    """
    subscripted = False
    if isinstance(node, ast.Subscript):
        node = node.value
        subscripted = True
    if isinstance(node, ast.Attribute) and _is_store_expr(fn, node.value):
        return node.attr, subscripted
    return None


def _tuple_valued(node: ast.expr, fn_node: ast.AST) -> bool:
    """Whether a memo-key expression is (bound to) a tuple of >= 2 items."""
    if isinstance(node, ast.Tuple):
        return len(node.elts) >= 2
    if isinstance(node, ast.Name):
        for sub in ast.walk(fn_node):
            if isinstance(sub, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == node.id for t in sub.targets
            ):
                if isinstance(sub.value, ast.Tuple) and len(sub.value.elts) >= 2:
                    return True
    return False


def _root_name(node: ast.expr) -> Optional[str]:
    """Name at the root of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


CONSTRUCTION_EXEMPT = frozenset(
    {"__init__", "__new__", "__setstate__", "__getstate__", "_init_derived"}
)


def _local_cache_effects(
    fn: FunctionInfo,
    summary: EffectSummary,
    suppressed: SuppressionCheck,
    used: Set[Tuple[str, int, str]],
) -> None:
    """Store writes / memo fills / invalidations in *fn*'s own body."""
    if fn.name in CONSTRUCTION_EXEMPT:
        # construction and (un)pickling build the store before it is
        # shared; there is nothing cached yet to invalidate
        return
    for node in own_nodes(fn.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for tgt in targets:
            hit = _store_attr_target(fn, tgt)
            if hit is None:
                continue
            attr, subscripted = hit
            lineno = getattr(tgt, "lineno", node.lineno)
            col = getattr(tgt, "col_offset", 0)
            if attr in DATA_ATTRS:
                if suppressed(fn.path, lineno, "REP007"):
                    used.add((fn.path, lineno, "REP007"))
                    continue
                summary.data_writes.append(
                    Site(fn.path, lineno, col, f"write to store.{attr}")
                )
            elif attr == CACHE_ATTR:
                if isinstance(node, ast.Delete) or not subscripted:
                    # ``del store.cache[...]`` / rebinding the whole memo
                    # is a purge, i.e. a derived invalidation
                    summary.invalidates_derived = True
                elif isinstance(node, ast.Assign) and isinstance(
                    tgt, ast.Subscript
                ):
                    if not _tuple_valued(tgt.slice, fn.node):
                        if suppressed(fn.path, lineno, "REP007"):
                            used.add((fn.path, lineno, "REP007"))
                            continue
                        summary.bad_memo_fills.append(
                            Site(
                                fn.path,
                                lineno,
                                col,
                                "memo fill with a non-tuple key",
                            )
                        )
            elif attr in VIEW_ATTRS:
                if isinstance(node, ast.Delete):
                    summary.invalidates_derived = True
                # fills of the per-light view caches are safe
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                # ``store.invalidate_light(...)``
                if func.attr == "invalidate_light" and _is_store_expr(
                    fn, func.value
                ):
                    derived_only = any(
                        kw.arg == "derived_only"
                        and not (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        )
                        for kw in node.keywords
                    )
                    if derived_only:
                        summary.invalidates_derived = True
                    else:
                        summary.invalidates_full = True
                elif func.attr == "_init_derived" and _is_store_expr(
                    fn, func.value
                ):
                    summary.invalidates_full = True
                # ``store._partitions.pop(...)`` / ``store.cache.clear()``
                elif func.attr in ("pop", "clear") and isinstance(
                    func.value, ast.Attribute
                ):
                    inner = _store_attr_target(fn, func.value)
                    if inner is not None and (
                        inner[0] in VIEW_ATTRS or inner[0] == CACHE_ATTR
                    ):
                        summary.invalidates_derived = True


def _escape_sites(fn: FunctionInfo, node: ast.Call) -> List[str]:
    """Names escaping into a worker pool through *node*, if any."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    escaped: List[str] = []
    if name in _ESCAPE_CALLS:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            root = _root_name(arg)
            if root is not None:
                escaped.append(root)
    elif (
        isinstance(func, ast.Attribute)
        and func.attr in _EXECUTOR_METHODS
        and fn.env is not None
    ):
        recv = fn.env.type_of(func.value)
        recv_name = _root_name(func.value)
        looks_like_executor = (
            (recv is not None and recv.split(".")[-1] == "ProcessPoolExecutor")
            or (recv_name is not None and "exec" in recv_name.lower())
            or (recv_name is not None and recv_name in ("pool", "ex"))
        )
        if looks_like_executor:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                root = _root_name(arg)
                if root is not None:
                    escaped.append(root)
    return escaped


def _mutation_of(node: ast.AST) -> Optional[Tuple[str, str, int, int]]:
    """(root name, detail, lineno, col) when *node* mutates a name."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for tgt in targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                root = _root_name(tgt)
                if root is not None:
                    kind = (
                        "item assignment"
                        if isinstance(tgt, ast.Subscript)
                        else "attribute assignment"
                    )
                    return root, kind, tgt.lineno, tgt.col_offset
    elif isinstance(node, ast.Delete):
        for tgt in node.targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                root = _root_name(tgt)
                if root is not None:
                    return root, "deletion", tgt.lineno, tgt.col_offset
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            root = _root_name(node.func.value)
            if root is not None:
                return (
                    root,
                    f".{node.func.attr}(...)",
                    node.lineno,
                    node.col_offset,
                )
    return None


def _alias_map(fn: FunctionInfo) -> Dict[str, str]:
    """name -> ultimate root for plain attribute/subscript aliases.

    ``sub = part.trace`` makes mutating ``sub`` a mutation of ``part``;
    call results are deliberately *not* aliased (functions returning
    views are beyond a linter's reach — the runtime fixture guard
    stays as backstop).
    """
    aliases: Dict[str, str] = {}
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        tgt = node.targets[0]
        if not isinstance(tgt, ast.Name):
            continue
        value = node.value
        if isinstance(value, (ast.Attribute, ast.Subscript, ast.Name)):
            root = _root_name(value)
            if root is not None and root != tgt.id:
                aliases[tgt.id] = aliases.get(root, root)
    return aliases


def _local_isolation_effects(fn: FunctionInfo, summary: EffectSummary) -> None:
    """Escape sites, later mutations, and per-parameter mutations."""
    aliases = _alias_map(fn)

    def canon(name: str) -> str:
        return aliases.get(name, name)

    params = set(fn.params)
    nodes = sorted(
        own_nodes(fn.node), key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0))
    )
    for node in nodes:
        if isinstance(node, ast.Call):
            for name in _escape_sites(fn, node):
                summary.escapes.append(
                    (
                        canon(name),
                        Site(
                            fn.path,
                            node.lineno,
                            node.col_offset,
                            "escape into worker pool",
                        ),
                    )
                )
        hit = _mutation_of(node)
        if hit is not None:
            root, detail, lineno, col = hit
            root = canon(root)
            summary.mutations.append(
                (root, Site(fn.path, lineno, col, detail))
            )
            if root in params and root not in ("self", "cls"):
                summary.mutated_params.add(root)


def _canonical_call_name(node: ast.Call, graph: CallGraph, fn: FunctionInfo) -> Optional[str]:
    """Dotted call name with the head resolved through import aliases.

    ``sleep(...)`` after ``from time import sleep`` → ``time.sleep``;
    ``sp.run(...)`` after ``import subprocess as sp`` →
    ``subprocess.run``.
    """
    func = node.func
    parts: List[str] = []
    n: ast.AST = func
    while isinstance(n, ast.Attribute):
        parts.append(n.attr)
        n = n.value
    if not isinstance(n, ast.Name):
        return None
    parts.append(n.id)
    parts.reverse()
    mod = graph.modules.get(fn.module)
    if mod is not None and parts[0] in mod.imports:
        head = mod.imports[parts[0]]
        return ".".join([head] + parts[1:])
    return ".".join(parts)


def _local_blocking_effects(
    fn: FunctionInfo, graph: CallGraph, summary: EffectSummary
) -> None:
    """Loop-blocking primitives called directly from *fn*'s body."""
    for site in fn.calls:
        detail: Optional[str] = None
        if site.callee is not None:
            callee_fn = graph.functions.get(site.callee)
            if callee_fn is not None:
                if module_path(callee_fn.path) in BLOCKING_KERNEL_FILES:
                    detail = f"{site.callee} runs kernel code on the calling thread"
                elif callee_fn.name in _POOL_BLOCKING:
                    detail = f"{site.callee} joins a process pool"
        if detail is None:
            canonical = _canonical_call_name(site.node, graph, fn)
            if canonical in _BLOCKING_CALLS:
                detail = f"{canonical}() blocks the calling thread"
            elif (
                canonical is not None
                and canonical.split(".")[-1] in _POOL_BLOCKING
            ):
                detail = f"{canonical} joins a process pool"
        if detail is not None:
            summary.blocking_sites.append(
                Site(fn.path, site.lineno, site.node.col_offset, detail)
            )


def _self_attr_of(node: ast.AST) -> Optional[str]:
    """First attribute above ``self`` in a target/receiver chain.

    ``self._plan_changes.setdefault(k, []).extend(v)`` →
    ``_plan_changes``; chains rooted elsewhere return ``None``.
    """
    attr: Optional[str] = None
    while True:
        if isinstance(node, ast.Attribute):
            attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self":
        return attr
    return None


def _self_alias_map(fn: FunctionInfo) -> Dict[str, str]:
    """Local name -> self attribute for ``x = self.attr`` aliases."""
    aliases: Dict[str, str] = {}
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        tgt = node.targets[0]
        value = node.value
        if (
            isinstance(tgt, ast.Name)
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            aliases[tgt.id] = value.attr
    return aliases


def _local_state_effects(fn: FunctionInfo, summary: EffectSummary) -> None:
    """``self.<attr>`` writes in *fn*'s own body, excluding construction."""
    if fn.name in CONSTRUCTION_EXEMPT or fn.cls is None:
        return
    aliases = _self_alias_map(fn)
    for node in own_nodes(fn.node):
        targets: List[ast.expr] = []
        kind = ""
        if isinstance(node, ast.Assign):
            targets, kind = list(node.targets), "assignment"
        elif isinstance(node, ast.AugAssign):
            targets, kind = [node.target], "augmented assignment"
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, kind = [node.target], "assignment"
        elif isinstance(node, ast.Delete):
            targets, kind = list(node.targets), "deletion"
        for tgt in targets:
            attr = _self_attr_of(tgt)
            if attr is not None:
                summary.self_attr_writes.append(
                    (
                        attr,
                        Site(
                            fn.path,
                            tgt.lineno,
                            tgt.col_offset,
                            f"{kind} to self.{attr}",
                        ),
                    )
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            attr = _self_attr_of(node.func.value)
            if attr is None:
                root = _root_name(node.func.value)
                if root is not None and root in aliases:
                    attr = aliases[root]
            if attr is not None:
                summary.self_attr_writes.append(
                    (
                        attr,
                        Site(
                            fn.path,
                            node.lineno,
                            node.col_offset,
                            f".{node.func.attr}(...) on self.{attr}",
                        ),
                    )
                )


def unordered_locals(fn: FunctionInfo, effects: Dict[str, EffectSummary]) -> Set[str]:
    """Names bound to set-order-tainted values in *fn* (one pass)."""
    tainted: Set[str] = set()

    def expr_tainted(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in ("set",):
                return True
            if name in _ORDER_CLEANSING:
                return False
            if name in _ORDER_PRESERVING:
                return bool(node.args) and expr_tainted(node.args[0])
            # through calls: a callee that returns unordered data
            site = _call_site_of(fn, node)
            if site is not None and site.callee is not None:
                callee = effects.get(site.callee)
                if callee is not None and callee.returns_unordered:
                    return True
            return False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(expr_tainted(gen.iter) for gen in node.generators)
        return False

    for node in own_nodes(fn.node):
        if isinstance(node, ast.Assign):
            if expr_tainted(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        tainted.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if expr_tainted(node.value) and isinstance(node.target, ast.Name):
                tainted.add(node.target.id)
    return tainted


def call_tainted_locals(
    fn: FunctionInfo, effects: Dict[str, EffectSummary]
) -> Set[str]:
    """Names whose set-order taint arrived *through a call boundary*.

    The subset of :func:`unordered_locals` seeded only by calls to
    ``returns_unordered`` callees — the provenance REP009 reports on,
    leaving locally visible set literals to the intra-procedural
    REP006.
    """
    tainted: Set[str] = set()

    def expr_tainted(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Call):
            name = _callee_name(node)
            if name in _ORDER_CLEANSING:
                return False
            if name in _ORDER_PRESERVING:
                return bool(node.args) and expr_tainted(node.args[0])
            site = _call_site_of(fn, node)
            if site is not None and site.callee is not None:
                callee = effects.get(site.callee)
                if callee is not None and callee.returns_unordered:
                    return True
            return False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(expr_tainted(gen.iter) for gen in node.generators)
        return False

    for node in own_nodes(fn.node):
        if isinstance(node, ast.Assign):
            if expr_tainted(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        tainted.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if expr_tainted(node.value) and isinstance(node.target, ast.Name):
                tainted.add(node.target.id)
    return tainted


def _call_site_of(fn: FunctionInfo, node: ast.Call) -> Optional[CallSite]:
    for site in fn.calls:
        if site.node is node:
            return site
    return None


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------

def _propagate(graph: CallGraph, effects: Dict[str, EffectSummary]) -> None:
    """Iterate summaries to a fixpoint over the call graph.

    Monotone boolean/set lattice, so termination is bounded by the
    total number of bits; the loop re-sweeps every function until a
    full sweep changes nothing (handles recursion and mutual recursion
    without special cases).
    """
    changed = True
    sweeps = 0
    limit = len(graph.functions) + 2
    while changed and sweeps <= limit:
        changed = False
        sweeps += 1
        for fn in graph.functions.values():
            summary = effects[fn.qualname]
            before = (
                summary.writes_data,
                summary.invalidates,
                summary.may_block,
                len(summary.write_call_sites),
                len(summary.mutated_params),
                summary.returns_unordered,
                len(summary.unordered_sink_params),
            )
            summary.writes_data = summary.writes_data or bool(summary.data_writes)
            summary.invalidates = summary.invalidates or summary.invalidates_full
            if summary.blocking_sites and not summary.may_block:
                summary.may_block = True
                summary.block_chain = (summary.blocking_sites[0].detail,)
            for ref in fn.refs:
                # blocking taint follows sync references only: handing
                # over a coroutine function does not run it, and an
                # offload reference runs off the loop by construction
                if ref.offload or graph.functions[ref.target].is_async:
                    continue
                target = effects.get(ref.target)
                if target is not None and target.may_block and not summary.may_block:
                    summary.may_block = True
                    summary.block_chain = (ref.target,) + target.block_chain
            for site in fn.calls:
                if site.callee is None:
                    continue
                callee = effects.get(site.callee)
                if callee is None:
                    continue
                if callee.invalidates:
                    summary.invalidates = True
                if (
                    callee.may_block
                    and not summary.may_block
                    # an async callee blocks inside its own body — the
                    # finding anchors there, not at every await of it
                    and not graph.functions[site.callee].is_async
                ):
                    summary.may_block = True
                    summary.block_chain = (site.callee,) + callee.block_chain
                if callee.writes_data and not callee.invalidates:
                    if not summary.writes_data:
                        summary.writes_data = True
                    anchor = Site(
                        fn.path,
                        site.lineno,
                        site.node.col_offset,
                        f"call to {site.callee} (which mutates store data)",
                    )
                    if anchor not in summary.write_call_sites:
                        summary.write_call_sites.append(anchor)
                # parameter mutation propagation: passing my param as a
                # positional arg into a mutating parameter of the callee
                callee_fn = graph.functions[site.callee]
                callee_params = list(callee_fn.params)
                if callee_fn.cls is not None and callee_params[:1] in (
                    ["self"], ["cls"]
                ):
                    callee_params = callee_params[1:]
                for i, arg in enumerate(site.node.args):
                    if i >= len(callee_params):
                        break
                    if not isinstance(arg, ast.Name):
                        continue
                    if callee_params[i] in callee.mutated_params:
                        if arg.id in fn.params:
                            if arg.id not in summary.mutated_params:
                                summary.mutated_params.add(arg.id)
                        anchor = (
                            arg.id,
                            Site(
                                fn.path,
                                site.lineno,
                                site.node.col_offset,
                                f"passed to {site.callee}, which mutates it",
                            ),
                        )
                        if anchor not in summary.mutations:
                            summary.mutations.append(anchor)
                for kw in site.node.keywords:
                    if kw.arg is None or not isinstance(kw.value, ast.Name):
                        continue
                    if kw.arg in callee.mutated_params:
                        anchor = (
                            kw.value.id,
                            Site(
                                fn.path,
                                site.lineno,
                                site.node.col_offset,
                                f"passed to {site.callee}, which mutates it",
                            ),
                        )
                        if anchor not in summary.mutations:
                            summary.mutations.append(anchor)
                        if kw.value.id in fn.params:
                            summary.mutated_params.add(kw.value.id)
            after = (
                summary.writes_data,
                summary.invalidates,
                summary.may_block,
                len(summary.write_call_sites),
                len(summary.mutated_params),
                summary.returns_unordered,
                len(summary.unordered_sink_params),
            )
            if after != before:
                changed = True


def _propagate_order_taint(
    graph: CallGraph, effects: Dict[str, EffectSummary]
) -> None:
    """Fixpoint for returns_unordered / unordered_sink_params."""
    changed = True
    sweeps = 0
    limit = len(graph.functions) + 2
    while changed and sweeps <= limit:
        changed = False
        sweeps += 1
        for fn in graph.functions.values():
            summary = effects[fn.qualname]
            tainted = unordered_locals(fn, effects)
            # returns
            for node in own_nodes(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if expr_unordered(fn, node.value, tainted, effects):
                        if not summary.returns_unordered:
                            summary.returns_unordered = True
                            changed = True
            # sink params: param -> local reducer, or param passed on to
            # a callee's sink param
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _callee_name(node)
                if name in _REDUCERS and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Name) and arg.id in fn.params:
                        if arg.id not in summary.unordered_sink_params:
                            summary.unordered_sink_params.add(arg.id)
                            changed = True
                site = _call_site_of(fn, node)
                if site is not None and site.callee in effects:
                    callee = effects[site.callee]
                    callee_fn = graph.functions[site.callee]
                    callee_params = list(callee_fn.params)
                    if callee_fn.cls is not None and callee_params[:1] in (
                        ["self"], ["cls"]
                    ):
                        callee_params = callee_params[1:]
                    for i, arg in enumerate(node.args):
                        if i >= len(callee_params):
                            break
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in fn.params
                            and callee_params[i] in callee.unordered_sink_params
                            and arg.id not in summary.unordered_sink_params
                        ):
                            summary.unordered_sink_params.add(arg.id)
                            changed = True


def _callee_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def expr_unordered(
    fn: FunctionInfo,
    node: ast.expr,
    tainted: Set[str],
    effects: Dict[str, EffectSummary],
) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        if name == "set":
            return True
        if name in _ORDER_CLEANSING:
            return False
        if name in _ORDER_PRESERVING:
            return bool(node.args) and expr_unordered(
                fn, node.args[0], tainted, effects
            )
        site = _call_site_of(fn, node)
        if site is not None and site.callee in effects:
            return effects[site.callee].returns_unordered
        return False
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return any(
            expr_unordered(fn, gen.iter, tainted, effects)
            for gen in node.generators
        )
    return False


# ----------------------------------------------------------------------
# Tolerance-boundary markers (the compiled tier's annotation, REP019)
# ----------------------------------------------------------------------

#: Strict grammar: a trailing ``# repro: tolerance[ulp=N]`` on a
#: ``def`` line declares the function tolerance-tier with an N-ULP
#: divergence budget against the exact float64 kernel.  Anchored at
#: the comment's start so prose *mentioning* the marker never parses.
_TOLERANCE_RE = re.compile(r"#\s*repro:\s*tolerance\[ulp=(\d+)\]\s*$")
#: Anything that *opens* a comment like a tolerance marker but fails
#: the strict grammar is reported rather than silently ignored — a
#: typo here would silently open the parity tier to a relaxed kernel.
_TOLERANCE_HINT_RE = re.compile(r"#\s*repro:\s*tolerance")


def _collect_tolerance_markers(
    files: Sequence[Tuple[str, str]], graph: CallGraph
) -> Tuple[Dict[str, int], List[Tuple[str, int, str]]]:
    """``(qualname -> ulp, orphans)`` for every marker in *files*.

    A well-formed marker must sit on a function's ``def`` signature
    (any line from ``def`` through the first body statement, so
    multi-line signatures can carry it on the closing paren).  Markers
    elsewhere, and malformed spellings, come back as orphans with a
    reason string.

    Only real ``COMMENT`` tokens are scanned — docstrings and string
    literals that merely *describe* the marker grammar never register
    — and the marker must open the comment, so ``#:`` field notes
    mentioning tolerance stay inert.
    """
    by_path: Dict[str, List[FunctionInfo]] = {}
    for fn in graph.functions.values():
        by_path.setdefault(fn.path, []).append(fn)
    markers: Dict[str, int] = {}
    orphans: List[Tuple[str, int, str]] = []
    for path, source in files:
        fns = by_path.get(path, [])
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            continue  # unparsable files are REP001's problem
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            lineno = tok.start[0]
            if _TOLERANCE_HINT_RE.match(tok.string) is None:
                continue
            match = _TOLERANCE_RE.match(tok.string)
            if match is None:
                orphans.append(
                    (
                        path,
                        lineno,
                        "malformed tolerance marker (expected "
                        "'# repro: tolerance[ulp=N]')",
                    )
                )
                continue
            owner: Optional[FunctionInfo] = None
            for fn in fns:
                body = getattr(fn.node, "body", None)
                body_start = body[0].lineno if body else fn.lineno + 1
                if fn.lineno <= lineno < max(body_start, fn.lineno + 1):
                    owner = fn
                    break
            if owner is None:
                orphans.append(
                    (
                        path,
                        lineno,
                        "tolerance marker must sit on a function's "
                        "def signature",
                    )
                )
                continue
            markers[owner.qualname] = int(match.group(1))
    return markers, orphans


# ----------------------------------------------------------------------
# Shared pytest fixtures
# ----------------------------------------------------------------------

def _collect_shared_fixtures(graph: CallGraph) -> Dict[str, str]:
    """Session-/module-scoped ``@pytest.fixture`` functions by name."""
    out: Dict[str, str] = {}
    for fn in graph.functions.values():
        for deco in getattr(fn.node, "decorator_list", []):
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain_parts: List[str] = []
            n: ast.AST = target
            while isinstance(n, ast.Attribute):
                chain_parts.append(n.attr)
                n = n.value
            if isinstance(n, ast.Name):
                chain_parts.append(n.id)
            chain_parts.reverse()
            if not chain_parts or chain_parts[-1] != "fixture":
                continue
            if not isinstance(deco, ast.Call):
                continue  # default scope is per-test: not shared
            for kw in deco.keywords:
                if (
                    kw.arg == "scope"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in ("session", "module", "package", "class")
                ):
                    out[fn.name] = fn.qualname
    return out


# ----------------------------------------------------------------------
# Async topology (post-fixpoint)
# ----------------------------------------------------------------------

def _collect_block_anchors(
    graph: CallGraph, effects: Dict[str, EffectSummary]
) -> None:
    """Anchor every entry into a blocking chain at its own call/ref site.

    Runs after the fixpoint so ``may_block`` is final; anchors are
    deduped per line (a pool call and the kernel reference it carries
    share one report) and sorted, keeping findings deterministic.
    """
    for fn in graph.functions.values():
        summary = effects[fn.qualname]
        anchors = list(summary.blocking_sites)
        for site in fn.calls:
            if site.callee is None or graph.functions[site.callee].is_async:
                continue
            callee = effects.get(site.callee)
            if callee is not None and callee.may_block:
                chain = " -> ".join((site.callee,) + callee.block_chain)
                anchors.append(
                    Site(
                        fn.path,
                        site.lineno,
                        site.node.col_offset,
                        f"calls into blocking chain: {chain}",
                    )
                )
        for ref in fn.refs:
            if ref.offload or graph.functions[ref.target].is_async:
                continue
            target = effects.get(ref.target)
            if target is not None and target.may_block:
                chain = " -> ".join((ref.target,) + target.block_chain)
                anchors.append(
                    Site(
                        fn.path,
                        ref.lineno,
                        ref.col,
                        f"hands over a reference into blocking chain: {chain}",
                    )
                )
        anchors.sort(key=lambda s: (s.lineno, s.col, s.detail))
        deduped: List[Site] = []
        for site_ in anchors:
            if not deduped or deduped[-1].lineno != site_.lineno:
                deduped.append(site_)
        summary.loop_block_anchors = deduped


def _writer_closure(graph: CallGraph) -> Tuple[Set[str], Set[str]]:
    """(writer roots, writer-reachable closure) over library spawns."""
    roots: Set[str] = set()
    for spawner, targets in graph.task_spawns.items():
        fn = graph.functions.get(spawner)
        if fn is not None and module_path(fn.path).startswith("repro/"):
            roots |= targets
    return roots, graph.reachable_with_refs(sorted(roots))


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_program(
    files: Sequence[Tuple[str, str]],
    *,
    suppressed: Optional[SuppressionCheck] = None,
    trees: Optional[Dict[str, ast.Module]] = None,
) -> Program:
    """Parse *files*, build the call graph, and compute all summaries.

    *trees* lets the engine share ASTs already parsed by the per-file
    pass instead of re-parsing every module.
    """
    check = suppressed if suppressed is not None else _never_suppressed
    used: Set[Tuple[str, int, str]] = set()
    graph = build_callgraph(files, trees=trees)
    effects: Dict[str, EffectSummary] = {}
    for fn in graph.functions.values():
        summary = EffectSummary(qualname=fn.qualname)
        if module_path(fn.path) in BLOCKING_KERNEL_FILES:
            # every kernel-module function is a blocking primitive
            summary.may_block = True
            summary.block_chain = (f"defined in {module_path(fn.path)}",)
        _local_cache_effects(fn, summary, check, used)
        _local_isolation_effects(fn, summary)
        _local_blocking_effects(fn, graph, summary)
        _local_state_effects(fn, summary)
        effects[fn.qualname] = summary
    _propagate(graph, effects)
    _propagate_order_taint(graph, effects)
    _collect_block_anchors(graph, effects)
    writer_roots, writer_reachable = _writer_closure(graph)
    tolerance_markers, tolerance_orphans = _collect_tolerance_markers(
        files, graph
    )
    return Program(
        graph=graph,
        effects=effects,
        shared_fixtures=_collect_shared_fixtures(graph),
        used_suppressions=used,
        writer_roots=writer_roots,
        writer_reachable=writer_reachable,
        numeric=build_numeric(graph),
        tolerance_markers=tolerance_markers,
        tolerance_orphans=tolerance_orphans,
    )
