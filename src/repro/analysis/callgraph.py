"""Module-level call graph over the analyzed tree.

The per-file rules (:mod:`repro.analysis.rules`) see one AST at a time,
so they cannot prove anything about *pairs* of functions — exactly the
shape of the two bug classes that have bitten this repo at runtime
(store mutation without the matching cache invalidation, and objects
escaping into process-pool workers and being mutated afterwards).  This
module supplies the whole-program substrate: every analyzed file is
parsed once, functions and classes get stable qualified names
(``repro.trace.store.PartitionStore.append_partitions``), imports —
including relative ones — are resolved to those names, and every call
site is resolved to its callee where a lightweight type inference can
see it:

* ``name(...)`` through module-level defs and import aliases;
* ``self.m(...)`` through the enclosing class and its (project-local)
  bases;
* ``obj.m(...)`` / ``obj.attr.m(...)`` through inferred receiver types
  (parameter annotations, annotated ``self.x: T`` assignments,
  ``x = ClassName(...)`` constructor assignments, and annotated
  property returns);
* ``ClassName(...)`` to the class's ``__init__``.

On top of the plain call edges the graph records the **coroutine/task
topology** the async-discipline rules (REP012–REP016) consume:

* every function knows whether it is an ``async def`` and where its
  ``await`` points sit (:attr:`FunctionInfo.awaits`);
* ``create_task(...)`` / ``ensure_future(...)`` spawns are collected
  into :attr:`CallGraph.task_spawns` — the seed of the writer-task
  classification (``Tenant.start``'s ``create_task(self._run_writer())``
  makes ``_run_writer`` a *writer root*);
* a function **reference** passed as a call argument
  (``run_guarded(self._apply, item)``) produces a :class:`RefSite` —
  the callee may invoke it, so reachability-based rules follow the
  reference; references passed through ``run_in_executor`` are marked
  ``offload=True``, the sanctioned seam that runs blocking work *off*
  the event loop.

Resolution is deliberately conservative: an unresolvable call simply
produces no edge, so downstream rules under-approximate reachability
rather than inventing it.  The graph is pure data — effect analysis
(:mod:`repro.analysis.effects`) and the whole-program rules are built
on top of it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "module_path",
    "AwaitSite",
    "CallSite",
    "RefSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallGraph",
    "TypeEnv",
    "build_callgraph",
    "dotted_module",
    "own_nodes",
]

#: Call names (syntactic tails) that spawn a task from their first
#: argument.  ``asyncio`` itself is outside the analyzed tree, so the
#: spawn is recognized by shape, not by resolution.
_SPAWN_CALLS = frozenset({"create_task", "ensure_future"})

#: The sanctioned offload seam: function references passed through
#: ``loop.run_in_executor(executor, fn, *args)`` run on a worker
#: thread, not on the event loop, so blocking taint must not follow
#: them back into the awaiting coroutine.
_OFFLOAD_CALLS = frozenset({"run_in_executor"})


def module_path(path: str) -> str:
    """Path from the ``repro`` package root, else the normalized path.

    ``/any/prefix/src/repro/core/batch.py`` → ``repro/core/batch.py``;
    paths outside the package (tests, benchmarks, examples) come back
    with separators normalized so rule scoping is platform-stable.
    """
    norm = path.replace(os.sep, "/").replace("\\", "/")
    marker = "/repro/"
    i = norm.rfind(marker)
    if i != -1:
        return "repro/" + norm[i + len(marker):]
    if norm.startswith("repro/"):
        return norm
    return norm


def dotted_module(path: str) -> str:
    """Dotted module name for *path*, stable across checkouts.

    ``/any/prefix/src/repro/trace/store.py`` → ``repro.trace.store``;
    ``tests/test_stream.py`` → ``tests.test_stream``; a package
    ``__init__.py`` maps to the package itself.
    """
    mod = module_path(path)
    if mod.endswith(".py"):
        mod = mod[: -len(".py")]
    if mod.endswith("/__init__"):
        mod = mod[: -len("/__init__")]
    return mod.replace("/", ".")


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the resolved function qualname (``None`` when the
    target is outside the analyzed tree or could not be resolved);
    ``callee_module`` is filled whenever at least the defining module is
    known — REP010 needs the module even when the exact function is a
    class constructor or re-export.
    """

    node: ast.Call
    lineno: int
    callee: Optional[str]
    callee_module: Optional[str]


@dataclass(frozen=True)
class AwaitSite:
    """One ``await`` expression inside a coroutine body.

    ``target`` is the resolved qualname of the awaited call when the
    expression is a direct ``await fn(...)``; ``detail`` keeps the
    syntactic dotted form (``self._publish_event.wait``) even when the
    target lives outside the tree.
    """

    lineno: int
    col: int
    target: Optional[str]
    detail: str


@dataclass(frozen=True)
class RefSite:
    """A function *reference* passed as a call argument.

    The receiving callee may invoke the reference, so writer-task
    reachability follows it.  ``offload=True`` marks references routed
    through ``run_in_executor`` — still reachable (the code runs), but
    off the event loop, so loop-blocking taint stops there.
    """

    lineno: int
    col: int
    target: str
    offload: bool


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    module: str
    path: str
    name: str
    cls: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    end_lineno: int
    params: Tuple[str, ...]
    is_async: bool = False
    decorators: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    awaits: List[AwaitSite] = field(default_factory=list)
    refs: List[RefSite] = field(default_factory=list)
    #: Per-function type environment, cached by :func:`build_callgraph`
    #: for the effect analysis.
    env: Optional["TypeEnv"] = None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One analyzed class: methods, bases, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...]
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qualname (from ``self.x: T = ...``,
    #: ``self.x = ClassName(...)``, and property return annotations).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed file."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> dotted target (module, class, or function).
    imports: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and resolved call edges over a file set."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        #: spawner qualname -> coroutines it hands to ``create_task`` /
        #: ``ensure_future``.  These are *task* edges, not call edges:
        #: the spawned body runs concurrently, so reader-side
        #: reachability must not walk through them.
        self.task_spawns: Dict[str, Set[str]] = {}

    # -- queries --------------------------------------------------------
    def callees_of(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def callers_of(self, qualname: str) -> Set[str]:
        return self.callers.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """All functions reachable from *roots* through resolved edges."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.edges.get(fn, ()))
        return seen

    def reachable_with_refs(self, roots: Iterable[str]) -> Set[str]:
        """Reachability over call edges *and* function references.

        The writer-task closure needs this: ``_run_writer`` hands
        ``self._apply`` to ``run_guarded`` (and to the executor), so
        ``_apply`` runs on the writer's behalf even though no direct
        call edge exists.  Offload references count — the code still
        executes, just off the loop.
        """
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.edges.get(qual, ()))
            fn = self.functions.get(qual)
            if fn is not None:
                stack.extend(ref.target for ref in fn.refs)
        return seen

    def functions_in_file(self, mod_path: str) -> List[FunctionInfo]:
        return [
            f for f in self.functions.values() if module_path(f.path) == mod_path
        ]

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """Class named *name* as seen from *module* (imports honored)."""
        info = self.modules.get(module)
        if info is not None and name in info.imports:
            target = info.imports[name]
            if target in self.classes:
                return self.classes[target]
        return self.classes.get(f"{module}.{name}")

    def method_of(self, cls: ClassInfo, method: str) -> Optional[str]:
        """Resolve *method* on *cls*, walking project-local bases."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.qualname in seen:
                continue
            seen.add(c.qualname)
            if method in c.methods:
                return c.methods[method]
            for base in c.bases:
                if base in self.classes:
                    stack.append(self.classes[base])
        return None


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def _package_of(module: str, path: str) -> str:
    """The package a module's relative imports resolve against."""
    if path.replace("\\", "/").endswith("__init__.py"):
        return module
    return module.rpartition(".")[0]


def _collect_imports(tree: ast.Module, module: str, path: str) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    package = _package_of(module, path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".") if package else []
                if node.level - 1 <= len(parts):
                    anchor = parts[: len(parts) - (node.level - 1)]
                else:  # over-deep relative import: unresolvable
                    continue
                base = ".".join(anchor + ([node.module] if node.module else []))
            for name in node.names:
                if name.name != "*":
                    aliases[name.asname or name.name] = f"{base}.{name.name}"
    return aliases


def _annotation_class(
    annotation: Optional[ast.expr], graph: CallGraph, module: str
) -> Optional[str]:
    """Class qualname named by an annotation, unwrapping Optional/quotes."""
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] / "Mapping[K, X]" heads
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name in ("Optional", "Annotated") and isinstance(
            node.slice, (ast.Name, ast.Attribute, ast.Constant)
        ):
            return _annotation_class(node.slice, graph, module)  # type: ignore[arg-type]
        return None
    if isinstance(node, ast.Name):
        cls = graph.resolve_class(module, node.id)
        return cls.qualname if cls else None
    if isinstance(node, ast.Attribute):
        chain = _dotted(node)
        if chain is None:
            return None
        resolved = _resolve_dotted(chain, graph.modules.get(module), graph)
        return resolved if resolved in graph.classes else None
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _resolve_dotted(
    chain: str, mod: Optional[ModuleInfo], graph: CallGraph
) -> Optional[str]:
    """Resolve a dotted name seen in *mod* to a graph qualname."""
    if mod is None:
        return None
    head, _, rest = chain.partition(".")
    target = mod.imports.get(head)
    if target is None:
        # a module-local def or class
        local = f"{mod.name}.{chain}"
        if local in graph.functions or local in graph.classes:
            return local
        return None
    full = f"{target}.{rest}" if rest else target
    if full in graph.functions or full in graph.classes:
        return full
    # ``import repro.core.batch as b; b.identify_batch`` — target is a
    # module; or ``from . import cycle; cycle.spectrum``.
    if target in graph.modules and rest:
        cand = f"{target}.{rest}"
        if cand in graph.functions or cand in graph.classes:
            return cand
    return None


class _FunctionCollector(ast.NodeVisitor):
    """First pass: register every function/method and class skeleton."""

    def __init__(self, graph: CallGraph, mod: ModuleInfo) -> None:
        self.graph = graph
        self.mod = mod
        self.class_stack: List[ClassInfo] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = f"{self.mod.name}.{node.name}"
        bases = tuple(b for b in (_dotted(base) for base in node.bases) if b)
        info = ClassInfo(
            qualname=qual, module=self.mod.name, name=node.name, bases=bases
        )
        self.graph.classes[qual] = info
        self.class_stack.append(info)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_func(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        cls = self.class_stack[-1] if self.class_stack else None
        qual = f"{cls.qualname}.{name}" if cls else f"{self.mod.name}.{name}"
        args = node.args  # type: ignore[attr-defined]
        params = tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )
        decos = tuple(
            d for d in (_dotted(_deco_target(deco)) for deco in node.decorator_list)  # type: ignore[attr-defined]
            if d
        )
        info = FunctionInfo(
            qualname=qual,
            module=self.mod.name,
            path=self.mod.path,
            name=name,
            cls=cls.qualname if cls else None,
            node=node,
            lineno=node.lineno,  # type: ignore[attr-defined]
            end_lineno=getattr(node, "end_lineno", node.lineno),  # type: ignore[attr-defined]
            params=params,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            decorators=decos,
        )
        # latest definition wins (e.g. @overload stacks, conditional defs)
        self.graph.functions[qual] = info
        if cls is not None:
            cls.methods[name] = qual
        # nested defs are registered but resolved against the module scope
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)


def _deco_target(deco: ast.expr) -> ast.expr:
    return deco.func if isinstance(deco, ast.Call) else deco


def _class_bases_resolve(graph: CallGraph) -> None:
    """Second pass: rewrite base-name strings to class qualnames."""
    for cls in graph.classes.values():
        mod = graph.modules.get(cls.module)
        resolved = []
        for base in cls.bases:
            target = _resolve_dotted(base, mod, graph)
            resolved.append(target if target in graph.classes else base)
        cls.bases = tuple(resolved)


def _collect_attr_types(graph: CallGraph) -> None:
    """Infer ``self.x`` attribute types for every class.

    Sources, in priority order: annotated assignments
    (``self.x: T = ...``), dataclass-style class-level annotations,
    property return annotations, and constructor assignments
    (``self.x = ClassName(...)``).
    """
    for cls in graph.classes.values():
        mod = graph.modules.get(cls.module)
        for method_qual in cls.methods.values():
            fn = graph.functions[method_qual]
            is_property = any(d.split(".")[-1] == "property" for d in fn.decorators)
            if is_property:
                returns = getattr(fn.node, "returns", None)
                target = _annotation_class(returns, graph, cls.module)
                if target is not None:
                    cls.attr_types.setdefault(fn.name, target)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
                    target = _annotation_class(node.annotation, graph, cls.module)
                    if target is not None:
                        cls.attr_types[node.target.attr] = target  # type: ignore[union-attr]
                elif isinstance(node, ast.Assign):
                    # ``self.x = param`` where the parameter is
                    # annotated with an in-tree class.
                    if isinstance(node.value, ast.Name):
                        ann = _param_annotation(fn, node.value.id)
                        target = _annotation_class(ann, graph, cls.module)
                        if target is not None:
                            for tgt in node.targets:
                                if _is_self_attr(tgt):
                                    attr = tgt.attr  # type: ignore[union-attr]
                                    cls.attr_types.setdefault(attr, target)
                        continue
                    # ``self.x = C(...)`` — or the defaulting idiom
                    # ``self.x = C(...) if x is None else x``, where
                    # either conditional arm naming a constructor pins
                    # the attribute type.
                    values: List[ast.expr] = [node.value]
                    if isinstance(node.value, ast.IfExp):
                        values = [node.value.body, node.value.orelse]
                    ctor = None
                    for value in values:
                        if not isinstance(value, ast.Call):
                            continue
                        chain = _dotted(value.func)
                        if chain is None:
                            continue
                        cand = _resolve_dotted(chain, mod, graph)
                        if cand is not None and cand in graph.classes:
                            ctor = cand
                            break
                    if ctor is None:
                        continue
                    for tgt in node.targets:
                        if _is_self_attr(tgt):
                            cls.attr_types.setdefault(tgt.attr, ctor)  # type: ignore[union-attr]
        # class-level annotations (dataclass fields)
        cls_node = _class_node(graph, cls)
        if cls_node is not None:
            for stmt in cls_node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    target = _annotation_class(stmt.annotation, graph, cls.module)
                    if target is not None:
                        cls.attr_types.setdefault(stmt.target.id, target)


def _param_annotation(fn: FunctionInfo, name: str) -> Optional[ast.expr]:
    """The annotation of *fn*'s parameter *name*, if any."""
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == name:
            return arg.annotation
    return None


def _class_node(graph: CallGraph, cls: ClassInfo) -> Optional[ast.ClassDef]:
    mod = graph.modules.get(cls.module)
    if mod is None:
        return None
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.name:
            return node
    return None


class TypeEnv:
    """Per-function local types: name -> class qualname."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.mod = graph.modules.get(fn.module)
        self.names: Dict[str, str] = {}
        self._seed()

    def _seed(self) -> None:
        fn, graph = self.fn, self.graph
        args = fn.node.args  # type: ignore[attr-defined]
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if fn.cls is not None and all_args and all_args[0].arg in ("self", "cls"):
            self.names[all_args[0].arg] = fn.cls
            all_args = all_args[1:]
        for a in all_args:
            target = _annotation_class(a.annotation, graph, fn.module)
            if target is not None:
                self.names[a.arg] = target
        # straight-line constructor/alias assignments
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if not isinstance(tgt, ast.Name):
                    continue
                t = self.type_of(node.value)
                if t is not None:
                    self.names.setdefault(tgt.id, t)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                t = _annotation_class(node.annotation, graph, self.fn.module)
                if t is not None:
                    self.names[node.target.id] = t

    def type_of(self, node: ast.expr) -> Optional[str]:
        """Class qualname of *node*'s value, where inference can see it."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is not None and base in self.graph.classes:
                cls: Optional[ClassInfo] = self.graph.classes[base]
                while cls is not None:
                    if node.attr in cls.attr_types:
                        return cls.attr_types[node.attr]
                    parent = next(
                        (b for b in cls.bases if b in self.graph.classes), None
                    )
                    cls = self.graph.classes[parent] if parent else None
            return None
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain is not None:
                resolved = _resolve_dotted(chain, self.mod, self.graph)
                if resolved in self.graph.classes:
                    return resolved
                if resolved in self.graph.functions:
                    returns = getattr(
                        self.graph.functions[resolved].node, "returns", None
                    )
                    ret_cls = _annotation_class(
                        returns, self.graph, self.graph.functions[resolved].module
                    )
                    if ret_cls is not None:
                        return ret_cls
            # ``cls(...)`` inside a classmethod constructs the class
            if isinstance(node.func, ast.Name) and node.func.id == "cls":
                return self.names.get("cls")
            return None
        return None


def _resolve_call(
    call: ast.Call, env: TypeEnv, graph: CallGraph
) -> Tuple[Optional[str], Optional[str]]:
    """(callee qualname, callee module) for one call, best effort."""
    func = call.func
    # plain / dotted target through imports and module scope
    chain = _dotted(func)
    if chain is not None:
        resolved = _resolve_dotted(chain, env.mod, graph)
        if resolved in graph.functions:
            return resolved, graph.functions[resolved].module
        if resolved in graph.classes:
            init = graph.method_of(graph.classes[resolved], "__init__")
            mod = graph.classes[resolved].module
            return (init if init else None), mod
    # method call on a typed receiver
    if isinstance(func, ast.Attribute):
        recv_type = env.type_of(func.value)
        if recv_type is not None and recv_type in graph.classes:
            method = graph.method_of(graph.classes[recv_type], func.attr)
            if method is not None:
                return method, graph.functions[method].module
            return None, graph.classes[recv_type].module
    # ``cls(...)`` in a classmethod
    if isinstance(func, ast.Name) and func.id == "cls":
        cls_qual = env.names.get("cls")
        if cls_qual is not None and cls_qual in graph.classes:
            init = graph.method_of(graph.classes[cls_qual], "__init__")
            return (init if init else None), graph.classes[cls_qual].module
    return None, None


def _call_tail(func: ast.expr) -> Optional[str]:
    """Syntactic name a call is spelled with (``loop.create_task`` →
    ``create_task``), independent of whether the receiver resolves."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _resolve_func_ref(
    expr: ast.expr, env: TypeEnv, graph: CallGraph
) -> Optional[str]:
    """Resolve a bare (uncalled) expression to an in-tree function.

    Handles ``name`` / ``mod.name`` through imports and ``self.m`` /
    ``obj.m`` through inferred receiver types.  Class references are
    deliberately *not* treated as function references: passing a class
    hands over a constructor, which the construction-exempt effect
    rules already ignore.
    """
    if isinstance(expr, (ast.Name, ast.Attribute)):
        chain = _dotted(expr)
        if chain is not None:
            resolved = _resolve_dotted(chain, env.mod, graph)
            if resolved in graph.functions:
                return resolved
        if isinstance(expr, ast.Attribute):
            recv_type = env.type_of(expr.value)
            if recv_type is not None and recv_type in graph.classes:
                return graph.method_of(graph.classes[recv_type], expr.attr)
    return None


def _collect_call_refs(
    fn: FunctionInfo, call: ast.Call, env: TypeEnv, graph: CallGraph
) -> None:
    """Record spawn edges and function-reference arguments of *call*."""
    tail = _call_tail(call.func)
    if tail in _SPAWN_CALLS and call.args:
        spawned: Optional[str] = None
        first = call.args[0]
        if isinstance(first, ast.Call):
            spawned, _ = _resolve_call(first, env, graph)
        else:
            spawned = _resolve_func_ref(first, env, graph)
        if spawned is not None:
            graph.task_spawns.setdefault(fn.qualname, set()).add(spawned)
        return
    offload = tail in _OFFLOAD_CALLS
    # run_in_executor(executor, fn, *args): the executor argument is
    # never invoked, everything after it may be (run_guarded calls the
    # function reference it is handed).
    args = call.args[1:] if offload else list(call.args)
    values = list(args) + [kw.value for kw in call.keywords]
    for value in values:
        target = _resolve_func_ref(value, env, graph)
        if target is not None:
            fn.refs.append(
                RefSite(
                    lineno=value.lineno,
                    col=value.col_offset,
                    target=target,
                    offload=offload,
                )
            )


#: Memo for :func:`own_nodes`, keyed by node identity.  Function nodes
#: are walked by every effect collector and most program rules; the
#: walk is pure, so sharing one result per node is safe.  The node
#: itself is kept alongside the list to pin its lifetime (ids recycle).
_OWN_NODES_MEMO: Dict[int, Tuple[ast.AST, List[ast.AST]]] = {}


def own_nodes(fn_node: ast.AST) -> List[ast.AST]:
    """AST nodes belonging to *fn_node* but not to a nested def/class."""
    memo = _OWN_NODES_MEMO.get(id(fn_node))
    if memo is not None and memo[0] is fn_node:
        return memo[1]
    nested: Set[int] = set()
    out: List[ast.AST] = []
    for node in ast.walk(fn_node):
        if node is fn_node:
            continue
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            for sub in ast.walk(node):
                if sub is not node:
                    nested.add(id(sub))
    for node in ast.walk(fn_node):
        if node is not fn_node and id(node) not in nested:
            out.append(node)
    if len(_OWN_NODES_MEMO) > 65536:
        _OWN_NODES_MEMO.clear()
    _OWN_NODES_MEMO[id(fn_node)] = (fn_node, out)
    return out


def build_callgraph(
    files: Sequence[Tuple[str, str]],
    *,
    trees: Optional[Dict[str, ast.Module]] = None,
) -> CallGraph:
    """Build the graph over ``(path, source)`` pairs.

    Files that fail to parse are skipped (the per-file pass already
    reports the syntax error as REP000).  *trees* lets the engine share
    ASTs already parsed by the per-file pass instead of re-parsing
    every module.
    """
    graph = CallGraph()
    for path, source in files:
        tree = trees.get(path) if trees is not None else None
        if tree is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
        name = dotted_module(path)
        mod = ModuleInfo(name=name, path=path, tree=tree)
        graph.modules[name] = mod
    # imports need every module name known first
    for mod in graph.modules.values():
        mod.imports = _collect_imports(mod.tree, mod.name, mod.path)
    for mod in graph.modules.values():
        _FunctionCollector(graph, mod).visit(mod.tree)
    _class_bases_resolve(graph)
    _collect_attr_types(graph)
    # resolve calls, awaits, spawns, and function-reference arguments
    for fn in graph.functions.values():
        env = TypeEnv(graph, fn)
        fn.env = env
        for node in own_nodes(fn.node):
            if isinstance(node, ast.Await):
                target: Optional[str] = None
                detail_node: ast.expr = node.value
                if isinstance(node.value, ast.Call):
                    target, _ = _resolve_call(node.value, env, graph)
                    detail_node = node.value.func
                fn.awaits.append(
                    AwaitSite(
                        lineno=node.lineno,
                        col=node.col_offset,
                        target=target,
                        detail=_dotted(detail_node) or "<expr>",
                    )
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            callee, callee_module = _resolve_call(node, env, graph)
            fn.calls.append(
                CallSite(
                    node=node,
                    lineno=node.lineno,
                    callee=callee,
                    callee_module=callee_module,
                )
            )
            if callee is not None:
                graph.edges.setdefault(fn.qualname, set()).add(callee)
                graph.callers.setdefault(callee, set()).add(fn.qualname)
            _collect_call_refs(fn, node, env, graph)
    return graph


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )
