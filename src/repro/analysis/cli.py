"""``python -m repro.analysis`` — the invariant linter CLI.

Exit status: 0 when the tree is clean, 1 when any finding survives
suppression, 2 on usage errors or a blown ``--max-seconds`` budget.
Designed to sit next to ``ruff`` and ``mypy`` as a third named CI
step, so failures attribute cleanly; ``--format sarif`` feeds the same
findings to GitHub code scanning, and ``--diff BASE`` narrows a local
run to the functions a branch actually touched.
"""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import (
    Finding,
    iter_python_files,
    run_paths,
    strip_suppressions,
    to_sarif,
)
from .rules import ALL_RULES, AUDIT_RULES, PROGRAM_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific invariant linter (REP rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the formatted findings to FILE instead of stdout",
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="BASE",
        help=(
            "only report findings in functions changed since the git "
            "revision BASE (e.g. origin/main)"
        ),
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="fail (exit 2) if the analysis takes longer than S seconds",
    )
    parser.add_argument(
        "--fix-unused",
        action="store_true",
        help=(
            "rewrite files in place, removing every suppression comment "
            "the unused-suppression audit (REP011) reported"
        ),
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def _changed_ranges(base: str, paths: Sequence[str]) -> Dict[str, List[Tuple[int, int]]]:
    """path -> [(start, end)] line ranges changed since *base*.

    Parsed from ``git diff -U0``: each ``@@ -a,b +c,d @@`` hunk
    contributes the post-image range ``[c, c+max(d,1))`` (a pure
    deletion still marks the line it landed on, so a finding introduced
    by deleting an invalidation next to line ``c`` stays in scope).

    ``--find-renames`` is forced on (repositories can disable rename
    detection via ``diff.renames``): without it a renamed file shows up
    as a full delete + add, flagging every line as changed and burying
    the hunks the author actually touched.
    """
    cmd = [
        "git", "diff", "-U0", "--no-color", "--find-renames",
        base, "--", *paths,
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    ranges: Dict[str, List[Tuple[int, int]]] = {}
    current: Optional[str] = None
    for line in proc.stdout.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            current = None if target == "/dev/null" else target.removeprefix("b/")
        elif line.startswith("@@") and current is not None:
            try:
                plus = line.split("+", 1)[1].split(" ", 1)[0]
            except IndexError:
                continue
            if "," in plus:
                start_s, count_s = plus.split(",", 1)
                start, count = int(start_s), int(count_s)
            else:
                start, count = int(plus), 1
            ranges.setdefault(current, []).append((start, start + max(count, 1)))
    # Files new relative to BASE but not yet tracked never appear in
    # ``git diff BASE`` — every line of them is changed, so every
    # finding in them is in scope.
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--", *paths],
        capture_output=True,
        text=True,
        check=True,
    )
    for path in untracked.stdout.splitlines():
        if path.endswith(".py"):
            ranges.setdefault(path, []).append((1, sys.maxsize))
    return ranges


def _function_spans(source: str) -> List[Tuple[int, int]]:
    """(start, end) line spans of every function/method in *source*."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _diff_filter(findings: List[Finding], base: str, paths: Sequence[str]) -> List[Finding]:
    """Keep findings whose enclosing function overlaps the diff.

    A finding in an untouched file is dropped; a finding in a changed
    file survives when its line sits in a changed range, or when the
    innermost function containing it overlaps one (editing any line of
    a function can flip a whole-function property like REP007).
    """
    ranges = _changed_ranges(base, paths)
    span_cache: Dict[str, List[Tuple[int, int]]] = {}
    kept: List[Finding] = []
    for finding in findings:
        changed = ranges.get(finding.path)
        if not changed:
            continue
        if any(start <= finding.line < end for start, end in changed):
            kept.append(finding)
            continue
        if finding.path not in span_cache:
            try:
                with open(finding.path, encoding="utf-8") as fp:
                    span_cache[finding.path] = _function_spans(fp.read())
            except OSError:
                span_cache[finding.path] = []
        enclosing = [
            span
            for span in span_cache[finding.path]
            if span[0] <= finding.line <= span[1]
        ]
        if not enclosing:
            continue
        # innermost function containing the finding
        fn_start, fn_end = max(enclosing, key=lambda span: span[0])
        if any(start <= fn_end and fn_start < end for start, end in changed):
            kept.append(finding)
    return kept


def _apply_fix_unused(findings: List[Finding]) -> int:
    """Strip the suppressions REP011 reported; returns files rewritten."""
    by_path: Dict[str, Dict[int, Set[str]]] = {}
    for finding in findings:
        if finding.rule != "REP011":
            continue
        match = finding.message.split("`allow[", 1)
        if len(match) != 2:
            continue
        rule_id = match[1].split("]", 1)[0]
        by_path.setdefault(finding.path, {}).setdefault(finding.line, set()).add(
            rule_id
        )
    for path, removals in sorted(by_path.items()):
        with open(path, encoding="utf-8") as fp:
            source = fp.read()
        fixed = strip_suppressions(source, removals)
        if fixed != source:
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(fixed)
    return len(by_path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in (*ALL_RULES, *PROGRAM_RULES, *AUDIT_RULES):
            print(f"{rule.id}  {rule.summary}")
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.id for rule in (*ALL_RULES, *PROGRAM_RULES, *AUDIT_RULES)}
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    started = time.perf_counter()
    try:
        findings = run_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    elapsed = time.perf_counter() - started

    if args.diff is not None:
        try:
            findings = _diff_filter(findings, args.diff, args.paths)
        except subprocess.CalledProcessError as exc:
            parser.error(
                f"git diff against {args.diff!r} failed: "
                f"{exc.stderr.strip() or exc}"
            )

    if args.fix_unused:
        fixed = _apply_fix_unused(findings)
        findings = [f for f in findings if f.rule != "REP011"]
        if not args.quiet and fixed:
            print(f"removed unused suppressions in {fixed} file(s)", file=sys.stderr)

    if args.format == "sarif":
        payload = json.dumps(to_sarif(findings), indent=2, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fp:
                fp.write(payload + "\n")
        else:
            print(payload)
    else:
        rendered = "\n".join(finding.render() for finding in findings)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fp:
                fp.write(rendered + ("\n" if rendered else ""))
        elif rendered:
            print(rendered)

    if not args.quiet:
        checked = ", ".join(args.paths)
        if findings:
            print(
                f"{len(findings)} finding(s) in {checked} "
                f"({elapsed:.2f}s)",
                file=sys.stderr,
            )
        else:
            print(f"clean: {checked} ({elapsed:.2f}s)", file=sys.stderr)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"analysis took {elapsed:.2f}s, over the --max-seconds "
            f"{args.max_seconds:g} budget",
            file=sys.stderr,
        )
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
