"""``python -m repro.analysis`` — the invariant linter CLI.

Exit status: 0 when the tree is clean, 1 when any finding survives
suppression, 2 on usage errors.  Designed to sit next to ``ruff`` and
``mypy`` as a third named CI step, so failures attribute cleanly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .engine import run_paths
from .rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific invariant linter (REP rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.id for rule in ALL_RULES}
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    try:
        findings = run_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    for finding in findings:
        print(finding.render())
    if not args.quiet:
        checked = ", ".join(args.paths)
        if findings:
            print(f"{len(findings)} finding(s) in {checked}", file=sys.stderr)
        else:
            print(f"clean: {checked}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
