"""The REP rule set: repo-specific invariants as AST checks.

Each rule is a small, stateless class: ``applies(mod_path)`` scopes it
to the part of the tree whose contract it encodes, and ``check(...)``
yields findings.  ``mod_path`` is the path from the ``repro`` package
root (``"repro/core/batch.py"``) for library files, or the normalized
input path for everything else (tests, benchmarks, examples), so rules
can be scoped precisely no matter where the tree is checked out.

Rules deliberately over-approximate: a pattern that is *sometimes*
legitimate still fires and carries a ``# repro: allow[REP00x]``
suppression at the call site, which turns every exception to an
invariant into a reviewable, greppable artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .callgraph import FunctionInfo, module_path, own_nodes
from .effects import (
    CONSTRUCTION_EXEMPT,
    Program,
    Site,
    _mutation_of,
    _self_attr_of,
    call_tainted_locals,
    expr_unordered,
    unordered_locals,
)
from .numeric import LEVEL_NAMES, PrecisionViolation

__all__ = [
    "Finding",
    "Rule",
    "ProgramRule",
    "ALL_RULES",
    "PROGRAM_RULES",
    "AUDIT_RULES",
    "SUPPRESSION_SCOPE",
    "module_path",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


#: Files whose broad ``except`` handlers are the sanctioned containment
#: seams: every caught exception is converted into a typed
#: ``LightFailure`` / ``WorkerError`` there, and *only* there.  REP002
#: suppression comments anywhere else are themselves violations.
CONTAINMENT_SEAMS = (
    "repro/core/pipeline.py",
    "repro/parallel/pool.py",
)

#: Files allowed to carry an ``allow[REP007]``: the store internals,
#: where the sanctioned representation flip (``_swap_backing``) lives.
STORE_FILES = (
    "repro/trace/store.py",
    "repro/stream/store.py",
)

#: Files allowed to carry an ``allow[REP012]``: the tenant writer, whose
#: inline (``executor=None``) apply branch deliberately runs the
#: identification kernel on the loop — the fully deterministic posture
#: the virtual-clock concurrency tests rely on.
ASYNC_SEAM_FILES = (
    "repro/serve/tenant.py",
)

#: Rules whose suppression comments are only honored in specific files.
SUPPRESSION_SCOPE: Dict[str, Tuple[str, ...]] = {
    "REP002": CONTAINMENT_SEAMS,
    "REP007": STORE_FILES,
    "REP012": ASYNC_SEAM_FILES,
}

#: Parity-critical kernels: every float op here must be bit-for-bit
#: reproducible between the serial and batched backends.
PARITY_FILES = (
    "repro/core/batch.py",
    "repro/core/cycle.py",
    "repro/core/superposition.py",
    "repro/core/changepoint.py",
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted module/function name.

    Covers ``import numpy as np`` (``np -> numpy``) and
    ``from time import perf_counter as pc`` (``pc -> time.perf_counter``).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name != "*":
                    aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted chain with its head import alias resolved.

    ``_dt.datetime.now`` under ``import datetime as _dt`` becomes
    ``datetime.datetime.now``; a bare ``perf_counter`` imported from
    ``time`` becomes ``time.perf_counter``.
    """
    chain = dotted_name(node)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


class Rule:
    """Base class: one identifier, one scope, one AST check."""

    id = "REP000"
    summary = ""

    def applies(self, mod_path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _is_library(mod_path: str) -> bool:
    return mod_path.startswith("repro/")


_MUTABLE_DEFAULTS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
    ast.GeneratorExp,
)

#: Calls producing immutable values that are safe to share at def time.
_IMMUTABLE_FACTORIES = frozenset({"tuple", "frozenset", "frozendict"})


class MutableDefaultRule(Rule):
    """REP001 — no mutable or call-expression argument defaults.

    A default is evaluated once, at ``def`` time; a mutable value or a
    constructed object (``config=PipelineConfig()``) is then shared by
    every call in the process.  PR 2 shipped exactly this bug: one
    process-wide ``PipelineConfig`` instance reachable (and mutable via
    ``object.__setattr__``) from every pipeline call.  Use ``None`` and
    construct per call.
    """

    id = "REP001"
    summary = "mutable/shared default argument (construct per call, default to None)"

    def applies(self, mod_path: str) -> bool:
        return True

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults)
                defaults += [d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    yield from self._check_default(path, node, default)
            elif isinstance(node, ast.ClassDef) and self._is_dataclass(node):
                yield from self._check_dataclass_fields(path, node)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = dotted_name(target)
            if chain is not None and chain.split(".")[-1] == "dataclass":
                return True
        return False

    def _check_dataclass_fields(
        self, path: str, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        """Dataclass field defaults share one instance across objects.

        ``field(default_factory=...)`` is the sanctioned per-instance
        pattern; a literal container or a constructor call as a field
        default is the class-level twin of the shared-argument bug.
        """
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            default = stmt.value
            if isinstance(default, _MUTABLE_DEFAULTS):
                kind = type(default).__name__.lower()
                yield self.finding(
                    path,
                    default,
                    f"mutable dataclass field default ({kind}) in "
                    f"`{cls.name}` is shared across instances; use "
                    f"field(default_factory=...)",
                )
            elif isinstance(default, ast.Call):
                callee = dotted_name(default.func) or "<call>"
                tail = callee.split(".")[-1]
                if tail == "field" or tail in _IMMUTABLE_FACTORIES:
                    continue
                yield self.finding(
                    path,
                    default,
                    f"dataclass field default `{callee}(...)` in "
                    f"`{cls.name}` runs once at class-definition time and "
                    f"shares one instance across every object; use "
                    f"field(default_factory={callee})",
                )

    def _check_default(
        self, path: str, func: ast.AST, default: ast.expr
    ) -> Iterator[Finding]:
        name = getattr(func, "name", "<lambda>")
        if isinstance(default, _MUTABLE_DEFAULTS):
            kind = type(default).__name__.lower()
            yield self.finding(
                path,
                default,
                f"mutable default ({kind}) in `{name}` is shared across calls; "
                f"default to None and construct inside the body",
            )
        elif isinstance(default, ast.Call):
            callee = dotted_name(default.func) or "<call>"
            if callee.split(".")[-1] in _IMMUTABLE_FACTORIES:
                return
            yield self.finding(
                path,
                default,
                f"call `{callee}(...)` as default of `{name}` runs once at def "
                f"time and shares one instance across every call "
                f"(the PR 2 `config=PipelineConfig()` bug class); "
                f"default to None and construct per call",
            )


class BroadExceptRule(Rule):
    """REP002 — broad ``except`` only at the sanctioned containment seams.

    Catch-all handlers silently swallow programming errors.  The fault
    containment model allows exactly two seams to catch ``Exception``
    — ``repro/core/pipeline.py`` (per-light containment, routing to
    ``LightFailure``) and ``repro/parallel/pool.py`` (per-work-item
    containment, routing to ``WorkerError``).  Everything else must
    catch specific types or route through those seams
    (``repro.parallel.pool.run_guarded``).
    """

    id = "REP002"
    summary = "broad/bare except outside the sanctioned containment seams"

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies(self, mod_path: str) -> bool:
        return _is_library(mod_path)

    def _is_broad(self, exc_type: Optional[ast.expr]) -> bool:
        if exc_type is None:
            return True
        if isinstance(exc_type, ast.Tuple):
            return any(self._is_broad(e) for e in exc_type.elts)
        chain = dotted_name(exc_type)
        return chain is not None and chain.split(".")[-1] in self._BROAD

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and self._is_broad(node.type):
                caught = "bare except" if node.type is None else "except Exception"
                yield self.finding(
                    path,
                    node,
                    f"{caught} outside the sanctioned containment seams "
                    f"{CONTAINMENT_SEAMS}; catch specific exceptions or route "
                    f"through repro.parallel.pool.run_guarded / "
                    f"repro.obs.LightFailure",
                )


class RngSeamRule(Rule):
    """REP003 — RNGs enter library code via ``as_rng``/``seed_sequence_for``.

    A ``np.random.default_rng()`` (or legacy global ``np.random.*`` /
    stdlib ``random``) call buried in library code creates a stream the
    caller cannot seed, so results stop being reproducible across runs
    and worker scheduling orders.  All randomness flows through
    ``repro._util.as_rng`` / ``seed_sequence_for``, which accept and
    thread caller-provided seeds.
    """

    id = "REP003"
    summary = "RNG constructed outside the _util.as_rng/seed_sequence_for seams"

    #: np.random attributes that are types/seeds, not entropy sources.
    _ALLOWED_NP_RANDOM = frozenset({"Generator", "SeedSequence", "BitGenerator"})

    #: In the tests tree the test *is* the caller, so seeding its own
    #: ``default_rng(seed)`` is the reproducible pattern, and the
    #: conftest RNG guard must read ``get_state``.  Global entropy
    #: (``np.random.seed``/``rand``/...) and stdlib ``random`` stay
    #: banned there too.
    _ALLOWED_NP_RANDOM_TESTS = _ALLOWED_NP_RANDOM | frozenset(
        {"default_rng", "get_state"}
    )

    def applies(self, mod_path: str) -> bool:
        return mod_path != "repro/_util.py"

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        aliases = _import_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random":
                        yield self.finding(
                            path,
                            node,
                            "stdlib `random` is process-global state; thread a "
                            "numpy Generator via repro._util.as_rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        path,
                        node,
                        "stdlib `random` is process-global state; thread a "
                        "numpy Generator via repro._util.as_rng instead",
                    )
            elif isinstance(node, ast.Attribute):
                chain = canonical(node, aliases)
                if chain is None:
                    continue
                parts = chain.split(".")
                allowed = (
                    self._ALLOWED_NP_RANDOM
                    if _is_library(mod_path)
                    else self._ALLOWED_NP_RANDOM_TESTS
                )
                if (
                    len(parts) >= 3
                    and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] not in allowed
                ):
                    yield self.finding(
                        path,
                        node,
                        f"`{chain}` bypasses the RNG seams; use "
                        f"repro._util.as_rng / seed_sequence_for so callers "
                        f"control the stream",
                    )


class WallClockRule(Rule):
    """REP004 — no wall-clock reads in ``repro.core`` / ``repro.trace``.

    Identification and trace handling are pure functions of their
    inputs; a hidden clock read makes a result impossible to reproduce
    and silently couples kernels to the host.  Timing belongs to the
    telemetry layer (``repro.obs.StageTelemetry`` /
    ``RunReport.run_timer``), which the pipeline threads explicitly.
    """

    id = "REP004"
    summary = "wall-clock read in repro.core/repro.trace (telemetry goes through repro.obs)"

    _CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.clock_gettime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies(self, mod_path: str) -> bool:
        return mod_path.startswith(("repro/core/", "repro/trace/"))

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        aliases = _import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = canonical(node.func, aliases)
            if chain in self._CLOCKS:
                yield self.finding(
                    path,
                    node,
                    f"`{chain}()` reads the host clock inside a deterministic "
                    f"layer; route timing through repro.obs "
                    f"(StageTelemetry / RunReport.run_timer)",
                )


class ParityDtypeRule(Rule):
    """REP005 — explicit dtypes in the parity-critical kernels.

    The batched backend's bit-for-bit contract holds only in float64:
    a float32 downcast, or an ``np.asarray(x)`` whose dtype floats with
    the caller's input, changes rounding and breaks serial/batched
    equality on the last bit.  Every array coercion in the kernel files
    names its dtype.
    """

    id = "REP005"
    summary = "float32 downcast or dtype-ambiguous coercion in a parity kernel"

    _COERCIONS = frozenset({"asarray", "ascontiguousarray", "array", "frombuffer"})
    _F32 = frozenset({"float32", "single", "half", "float16"})
    _F32_STRINGS = frozenset({"float32", "float16", "f4", "f2", "<f4", ">f4"})
    #: Sub-float64 dtype spellings only meaningful *in dtype position*
    #: (a bare "f" constant elsewhere is not a dtype).
    _F32_DTYPE_STRINGS = _F32_STRINGS | frozenset({"f", "e", "<f2", ">f2"})
    #: float64-in-fact but ambiguous spellings: the builtin ``float``
    #: and its string twin leave the reader (and grep) unsure the
    #: parity contract is intentional — write ``np.float64``.
    _AMBIGUOUS_DTYPES = frozenset({"float"})

    def applies(self, mod_path: str) -> bool:
        return mod_path in PARITY_FILES

    def _dtype_spelling(
        self, path: str, expr: ast.expr, context: str
    ) -> Iterator[Finding]:
        """Ambiguous / sub-float64 spellings in dtype position."""
        if isinstance(expr, ast.Name) and expr.id in self._AMBIGUOUS_DTYPES:
            yield self.finding(
                path,
                expr,
                f"{context} uses the builtin `float` as a dtype: float64 in "
                f"fact but ambiguous in spelling; write np.float64 so the "
                f"parity contract is explicit",
            )
        elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            if expr.value in self._AMBIGUOUS_DTYPES:
                yield self.finding(
                    path,
                    expr,
                    f"{context} spells the dtype as {expr.value!r}; write "
                    f"np.float64 so the parity contract is explicit",
                )
            elif (
                expr.value in self._F32_DTYPE_STRINGS
                and expr.value not in self._F32_STRINGS
                # _F32_STRINGS fire from the position-independent
                # constant scan; don't report those twice
            ):
                yield self.finding(
                    path,
                    expr,
                    f"{context} dtype {expr.value!r} downcasts below float64 "
                    f"in a parity-critical kernel",
                )

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                parts = chain.split(".")
                if parts[0] in ("np", "numpy") and parts[-1] in self._F32:
                    yield self.finding(
                        path,
                        node,
                        f"`{chain}` downcasts below float64 in a parity-critical "
                        f"kernel; the serial/batched bit-for-bit contract holds "
                        f"only in float64",
                    )
            elif isinstance(node, ast.Constant):
                if isinstance(node.value, str) and node.value in self._F32_STRINGS:
                    yield self.finding(
                        path,
                        node,
                        f"dtype string {node.value!r} downcasts below float64 "
                        f"in a parity-critical kernel",
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                ):
                    yield from self._dtype_spelling(
                        path, node.args[0], ".astype(...)"
                    )
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if parts[0] not in ("np", "numpy"):
                    continue
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        yield from self._dtype_spelling(
                            path, kw.value, f"`{chain}(...)`"
                        )
                if parts[-1] not in self._COERCIONS:
                    continue
                if len(node.args) >= 2:
                    yield from self._dtype_spelling(
                        path, node.args[1], f"`{chain}(...)`"
                    )
                has_dtype = len(node.args) >= 2 or any(
                    kw.arg == "dtype" for kw in node.keywords
                )
                if not has_dtype:
                    yield self.finding(
                        path,
                        node,
                        f"`{chain}(...)` without an explicit dtype inherits the "
                        f"caller's (possibly float32) dtype; pass "
                        f"dtype=np.float64 to pin the parity contract",
                    )


class SetOrderRule(Rule):
    """REP006 — set iteration order must not feed numeric reductions.

    ``set`` iteration order depends on insertion history and hash
    randomization; a float sum over it is not associative-stable, so
    the same city can produce different last bits run to run.  Sort
    first (``sorted(s)``) or accumulate over an ordered container.
    """

    id = "REP006"
    summary = "iteration/accumulation over a set feeds an order-sensitive reduction"

    _REDUCERS = frozenset({"sum", "fsum", "prod", "cumsum", "nansum", "mean", "std", "var"})

    def applies(self, mod_path: str) -> bool:
        return True

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            return chain in ("set", "frozenset")
        return False

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.For) and self._is_set_expr(node.iter):
                yield self.finding(
                    path,
                    node.iter,
                    "iterating a set directly: order is arbitrary; "
                    "iterate sorted(...) so downstream arithmetic is "
                    "order-stable",
                )
            elif isinstance(node, ast.comprehension) and self._is_set_expr(node.iter):
                yield self.finding(
                    path,
                    node.iter,
                    "comprehension over a set: order is arbitrary; "
                    "iterate sorted(...) so downstream arithmetic is "
                    "order-stable",
                )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is None or not node.args:
                    continue
                parts = chain.split(".")
                is_reducer = parts[-1] in self._REDUCERS and (
                    len(parts) == 1 or parts[0] in ("np", "numpy", "math")
                )
                if is_reducer and self._is_set_expr(node.args[0]):
                    yield self.finding(
                        path,
                        node.args[0],
                        f"`{chain}` over a set accumulates in arbitrary order; "
                        f"float reductions must run over sorted(...) input",
                    )


# ----------------------------------------------------------------------
# Whole-program rules (REP007+): consume the call-graph/effect engine
# ----------------------------------------------------------------------


class ProgramRule:
    """Base for rules over interprocedural effect summaries.

    Unlike :class:`Rule`, these see the whole analyzed tree at once (a
    :class:`~repro.analysis.effects.Program`); per-line suppressions
    still apply to their findings, and effect-level suppressions are
    consumed inside the engine before findings exist.
    """

    id = "REP000"
    summary = ""

    def check_program(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(rule=self.id, path=path, line=line, col=col, message=message)


def _in_library(path: str) -> bool:
    return module_path(path).startswith("repro/")


class StoreCoherenceRule(ProgramRule):
    """REP007 — store mutations must carry their cache invalidation.

    ``PartitionStore``/``StreamStore`` layer three caches over the
    column data (partition views, stop events, the open memo); a write
    to a data attribute that no ``invalidate_light`` / ``_init_derived``
    accompanies — on any path, through any depth of helpers — leaves
    those caches describing rows that no longer exist.  PR 4's
    append path got this right by convention; this rule makes the
    convention load-bearing.  Memo fills are additionally checked
    against the tuple-key convention ``invalidate_light`` purges by.
    """

    id = "REP007"
    summary = "store column/memo write not covered by invalidate_light/cache drop"

    def check_program(self, program: Program) -> Iterator[Finding]:
        for qualname in sorted(program.graph.functions):
            fn = program.graph.functions[qualname]
            if not _in_library(fn.path):
                continue
            summary = program.effects[qualname]
            for site in summary.bad_memo_fills:
                yield self.finding_at(
                    site.path,
                    site.lineno,
                    site.col,
                    f"`{qualname}` fills store.cache with a key that is not "
                    f"a (kind, LightKey, ...) tuple; invalidate_light cannot "
                    f"purge it, so appends leave stale hits behind",
                )
            if fn.name in CONSTRUCTION_EXEMPT:
                continue
            if not summary.writes_data or summary.invalidates:
                continue
            if not (fn.is_public or not program.graph.callers_of(qualname)):
                # a private helper's write is charged to whichever
                # public entry reaches it without invalidating
                continue
            anchors = summary.data_writes or summary.write_call_sites
            if not anchors:
                continue
            site = anchors[0]
            yield self.finding_at(
                site.path,
                site.lineno,
                site.col,
                f"`{qualname}` mutates store data ({site.detail}) with no "
                f"invalidate_light/_init_derived on the path; partition/stop/"
                f"interval views and memo entries go stale",
            )


class WorkerEscapeRule(ProgramRule):
    """REP008 — nothing captured by a worker fan-out is mutated after.

    ``pmap``/``pmap_seeded``/``ProcessPoolExecutor`` pickle their
    arguments into worker processes; a later mutation in the parent
    diverges parent and workers (and on the in-process ``serial=True``
    path mutates state the "workers" still share).  In the tests tree
    the same contract binds session-/module-scoped pytest fixtures:
    they are shared across tests by construction, so any mutation —
    direct or through a helper — makes results order-dependent (the
    bug PR 4's conftest fingerprint guard caught only at runtime).
    """

    id = "REP008"
    summary = "object escaping into a worker fan-out (or shared fixture) mutated afterwards"

    @staticmethod
    def _is_test_or_fixture(fn_node: ast.AST, name: str) -> bool:
        if name.startswith("test_"):
            return True
        for deco in getattr(fn_node, "decorator_list", []):
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = dotted_name(target)
            if chain is not None and chain.split(".")[-1] == "fixture":
                return True
        return False

    def check_program(self, program: Program) -> Iterator[Finding]:
        for qualname in sorted(program.graph.functions):
            fn = program.graph.functions[qualname]
            summary = program.effects[qualname]
            first_escape: Dict[str, Site] = {}
            for name, site in summary.escapes:
                prev = first_escape.get(name)
                if prev is None or site.lineno < prev.lineno:
                    first_escape[name] = site
            seen: set = set()
            for name, msite in summary.mutations:
                esc = first_escape.get(name)
                if esc is not None and msite.lineno > esc.lineno:
                    key = (msite.path, msite.lineno, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding_at(
                        msite.path,
                        msite.lineno,
                        msite.col,
                        f"`{name}` escaped into a worker fan-out at line "
                        f"{esc.lineno} and is mutated afterwards "
                        f"({msite.detail}); workers hold the pre-mutation "
                        f"copy, so results depend on scheduling",
                    )
            if _in_library(fn.path):
                continue
            if not self._is_test_or_fixture(fn.node, fn.name):
                continue
            for name, msite in summary.mutations:
                if name not in fn.params or name not in program.shared_fixtures:
                    continue
                if program.shared_fixtures[name] == qualname:
                    continue  # the fixture may build its own value
                key = (msite.path, msite.lineno, name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding_at(
                    msite.path,
                    msite.lineno,
                    msite.col,
                    f"`{qualname}` mutates `{name}` ({msite.detail}), a "
                    f"session/module-scoped fixture shared across tests; "
                    f"copy it (or narrow the fixture scope) instead",
                )


class CrossCallSetOrderRule(ProgramRule):
    """REP009 — set-order taint must not reach reductions through calls.

    The intra-procedural REP006 sees ``sum(a_set)``; it is blind when
    the set is built in one function and reduced in another.  This rule
    follows the taint across call boundaries in both directions: a
    callee that *returns* set-ordered data feeding a local float
    reduction, and a locally tainted value passed into a callee
    parameter that feeds one.
    """

    id = "REP009"
    summary = "set-iteration-order taint reaches a float reduction through a call"

    _REDUCERS = SetOrderRule._REDUCERS

    def check_program(self, program: Program) -> Iterator[Finding]:
        effects = program.effects
        for qualname in sorted(program.graph.functions):
            fn = program.graph.functions[qualname]
            tainted = unordered_locals(fn, effects)
            via_call = call_tainted_locals(fn, effects)
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                parts = chain.split(".") if chain else []
                is_reducer = bool(parts) and parts[-1] in self._REDUCERS and (
                    len(parts) == 1 or parts[0] in ("np", "numpy", "math")
                )
                if is_reducer and node.args:
                    arg = node.args[0]
                    fires = False
                    if isinstance(arg, ast.Name) and arg.id in via_call:
                        fires = True
                    elif isinstance(arg, ast.Call):
                        fires = expr_unordered(fn, arg, via_call, effects)
                    if fires:
                        yield self.finding_at(
                            fn.path,
                            arg.lineno,
                            arg.col_offset,
                            f"`{chain}` in `{qualname}` reduces a value whose "
                            f"iteration order came from a set in a *callee*; "
                            f"sort before reducing (REP006's cross-call twin)",
                        )
                # locally tainted value handed to a callee's reducer
                site = None
                for cs in fn.calls:
                    if cs.node is node:
                        site = cs
                        break
                if site is None or site.callee not in effects:
                    continue
                callee_summary = effects[site.callee]
                if not callee_summary.unordered_sink_params:
                    continue
                callee_fn = program.graph.functions[site.callee]
                callee_params = list(callee_fn.params)
                if callee_fn.cls is not None and callee_params[:1] in (
                    ["self"], ["cls"]
                ):
                    callee_params = callee_params[1:]
                for i, arg in enumerate(node.args):
                    if i >= len(callee_params):
                        break
                    if callee_params[i] not in callee_summary.unordered_sink_params:
                        continue
                    if expr_unordered(fn, arg, tainted, effects):
                        yield self.finding_at(
                            fn.path,
                            arg.lineno,
                            arg.col_offset,
                            f"set-ordered value flows from `{qualname}` into "
                            f"`{site.callee}` parameter "
                            f"`{callee_params[i]}`, which feeds an "
                            f"order-sensitive float reduction; sort at the "
                            f"boundary",
                        )


class StrictFrontierRule(ProgramRule):
    """REP010 — parity kernels only call into the mypy-strict frontier.

    The bit-for-bit serial/batched/stream contract is only as strong as
    the types it flows through: a parity-reachable call into an
    untyped module is where an accidental float32 or object-dtype array
    enters unchecked.  ``STRICT_MODULES`` mirrors the
    ``[[tool.mypy.overrides]]`` strict tier in ``pyproject.toml``
    (asserted in tests); extend both together.
    """

    id = "REP010"
    summary = "function reachable from the parity kernels calls a non-strict-typed module"

    #: Mirror of pyproject's strict-override list.  mypy's ``foo.*``
    #: matches ``foo`` itself as well, so each glob entry appears in
    #: both spellings.
    STRICT_MODULES: Tuple[str, ...] = (
        "repro._util",
        "repro.analysis", "repro.analysis.*",
        "repro.core", "repro.core.*",
        "repro.eval.frontier",
        "repro.lights.controller",
        "repro.lights.schedule",
        "repro.matching.partition",
        "repro.network.geometry",
        "repro.obs", "repro.obs.*",
        "repro.parallel", "repro.parallel.*",
        "repro.serve", "repro.serve.*",
        "repro.stream", "repro.stream.*",
        "repro.trace", "repro.trace.*",
    )

    @classmethod
    def _is_strict(cls, module: str) -> bool:
        return any(fnmatch(module, pat) for pat in cls.STRICT_MODULES)

    def check_program(self, program: Program) -> Iterator[Finding]:
        roots = [
            qualname
            for qualname, fn in program.graph.functions.items()
            if module_path(fn.path) in PARITY_FILES
        ]
        reachable = program.graph.reachable_from(roots)
        seen: set = set()
        for qualname in sorted(reachable):
            fn = program.graph.functions[qualname]
            for site in fn.calls:
                module = site.callee_module
                if module is None or not module.startswith("repro."):
                    continue
                if self._is_strict(module):
                    continue
                key = (fn.path, site.lineno, module)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding_at(
                    fn.path,
                    site.lineno,
                    site.node.col_offset,
                    f"`{qualname}` is reachable from the parity kernels but "
                    f"calls into `{module}`, outside the mypy-strict "
                    f"frontier; add the module to the strict tier (pyproject "
                    f"+ STRICT_MODULES) or break the dependency",
                )


# ----------------------------------------------------------------------
# Async-discipline rules (REP012–REP016): the serving layer's contracts
# ----------------------------------------------------------------------


def _awaits_with_trys(
    fn_node: ast.AST,
) -> List[Tuple[ast.Await, List[ast.Try]]]:
    """Every ``await`` in *fn_node*'s own body with its enclosing trys."""
    out: List[Tuple[ast.Await, List[ast.Try]]] = []

    def visit(node: ast.AST, trys: List[ast.Try]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.Await):
                out.append((child, list(trys)))
            if isinstance(child, ast.Try):
                visit(child, trys + [child])
            else:
                visit(child, trys)

    visit(fn_node, [])
    return out


def _sorted_own_nodes(fn_node: ast.AST) -> List[ast.AST]:
    return sorted(
        own_nodes(fn_node),
        key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
    )


class LoopBlockingRule(ProgramRule):
    """REP012 — no loop-blocking call reachable from an ``async def`` body.

    One inline ``identify_batch`` (or ``time.sleep``, file read, pool
    join, ...) on the event loop stalls *every* tenant's reads at once —
    the whole-fleet latency regression the serving layer's SLO tests
    can only sample.  The effect layer propagates a ``may_block`` bit
    through sync call edges and function-reference arguments; this rule
    reports every site where a coroutine enters such a chain.  The one
    sanctioned exception is the ``run_in_executor`` offload seam
    (references routed through it run off-loop and carry no taint);
    ``Tenant._run_writer``'s deliberate inline branch carries the only
    sanctioned ``allow[REP012]``.
    """

    id = "REP012"
    summary = "loop-blocking call reachable from an async def (offload via run_in_executor)"

    def check_program(self, program: Program) -> Iterator[Finding]:
        for qualname in sorted(program.graph.functions):
            fn = program.graph.functions[qualname]
            if not fn.is_async or not _in_library(fn.path):
                continue
            summary = program.effects[qualname]
            for site in summary.loop_block_anchors:
                yield self.finding_at(
                    site.path,
                    site.lineno,
                    site.col,
                    f"`{qualname}` is async but {site.detail}; this stalls "
                    f"every coroutine sharing the loop — offload through "
                    f"run_in_executor (the Tenant._run_writer seam) or move "
                    f"the work out of the coroutine",
                )


class SingleWriterRule(ProgramRule):
    """REP013 — writer-owned state is written only by the writer task.

    The serving layer's isolation story is a single-writer protocol:
    exactly one task per tenant (spawned by ``Tenant.start`` via
    ``create_task(self._run_writer())``) applies chunks and publishes
    snapshots, so readers never need a lock.  Any attribute the writer
    closure writes (``Tenant._snapshot``, the ``StreamSession`` state,
    the store columns...) is *writer-owned*; a reader-side coroutine
    reaching a write to it — directly or through any depth of helpers —
    reintroduces the mixed-version race the PR 7 snapshot swap was
    built to kill.  Construction paths (``__init__`` and friends) run
    before the object is shared and are exempt.
    """

    id = "REP013"
    summary = "writer-owned tenant/session state written from a reader-side coroutine"

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        if not program.writer_roots:
            return
        owned: Dict[Tuple[str, str], Site] = {}
        for qualname in sorted(program.writer_reachable):
            fn = graph.functions.get(qualname)
            if fn is None or fn.cls is None:
                continue
            for attr, site in program.effects[qualname].self_attr_writes:
                owned.setdefault((fn.cls, attr), site)
        if not owned:
            return
        for entry_qual in sorted(graph.functions):
            entry = graph.functions[entry_qual]
            if (
                not entry.is_async
                or not _in_library(entry.path)
                or entry_qual in program.writer_reachable
            ):
                continue
            parents = self._reader_closure(program, entry_qual)
            reported: set = set()
            for qual in sorted(parents):
                fn = graph.functions[qual]
                if fn.cls is None:
                    continue
                for attr, wsite in program.effects[qual].self_attr_writes:
                    key = (fn.cls, attr)
                    if key not in owned or key in reported:
                        continue
                    reported.add(key)
                    yield self._report(program, entry, qual, parents, attr, wsite, owned[key])

    @staticmethod
    def _reader_closure(
        program: Program, entry_qual: str
    ) -> Dict[str, Optional[str]]:
        """BFS parents from a reader entry.

        Task spawns are not call paths (the spawned body runs in its
        own task), and construction-exempt functions run before the
        object is shared — neither is traversed.
        """
        graph = program.graph
        parents: Dict[str, Optional[str]] = {entry_qual: None}
        queue = [entry_qual]
        while queue:
            cur = queue.pop(0)
            fn = graph.functions[cur]
            spawned = graph.task_spawns.get(cur, set())
            nexts = set(graph.edges.get(cur, set())) - spawned
            nexts |= {ref.target for ref in fn.refs}
            for nxt in sorted(nexts):
                if nxt in parents or nxt not in graph.functions:
                    continue
                if graph.functions[nxt].name in CONSTRUCTION_EXEMPT:
                    continue
                parents[nxt] = cur
                queue.append(nxt)
        return parents

    def _report(
        self,
        program: Program,
        entry: FunctionInfo,
        writer_fn: str,
        parents: Dict[str, Optional[str]],
        attr: str,
        wsite: Site,
        owner_site: Site,
    ) -> Finding:
        chain: List[str] = []
        cur: Optional[str] = writer_fn
        while cur is not None:
            chain.append(cur)
            cur = parents[cur]
        chain.reverse()
        cls_name = (program.graph.functions[writer_fn].cls or "").split(".")[-1]
        if len(chain) == 1:
            anchor = wsite
            route = f"writes `{cls_name}.{attr}` directly ({wsite.detail})"
        else:
            anchor = self._entry_anchor(entry, chain[1]) or wsite
            route = (
                f"reaches a write to `{cls_name}.{attr}` via "
                f"{' -> '.join(q.split('.')[-1] for q in chain)} "
                f"({wsite.path}:{wsite.lineno})"
            )
        return self.finding_at(
            anchor.path,
            anchor.lineno,
            anchor.col,
            f"`{entry.qualname}` is a reader-side coroutine but {route}; "
            f"`{cls_name}.{attr}` is writer-owned (the writer task also "
            f"writes it at {owner_site.path}:{owner_site.lineno}), so this "
            f"races the single-writer protocol — route the mutation through "
            f"the writer queue",
        )

    @staticmethod
    def _entry_anchor(entry: FunctionInfo, first_hop: str) -> Optional[Site]:
        for cs in entry.calls:
            if cs.callee == first_hop:
                return Site(entry.path, cs.lineno, cs.node.col_offset, "")
        for ref in entry.refs:
            if ref.target == first_hop:
                return Site(entry.path, ref.lineno, ref.col, "")
        return Site(entry.path, entry.lineno, 0, "")


class PublishOnceRule(ProgramRule):
    """REP014 — a published ``Snapshot`` is never mutated afterwards.

    Readers are lock-free *because* the snapshot swap publishes an
    immutable value: mutate it after the ``self._snapshot = ...``
    assignment and concurrent readers observe a half-updated advisory —
    the async twin of REP008's escape-then-mutate rule, and exactly the
    mixed-version cache-stamp race PR 7 closed.  The rule flags
    mutations of a name after it is published, of anything read back
    out of a ``_snapshot`` attribute, of any ``Snapshot``-typed value
    (frozen by construction — mutating one is a bug anywhere), and of
    values passed to callees that mutate them.
    """

    id = "REP014"
    summary = "Snapshot (or _snapshot-published value) mutated after publication"

    _ATTR = "_snapshot"

    def check_program(self, program: Program) -> Iterator[Finding]:
        for qualname in sorted(program.graph.functions):
            fn = program.graph.functions[qualname]
            if fn.name in CONSTRUCTION_EXEMPT:
                continue
            yield from self._check_fn(program, fn)

    def _check_fn(self, program: Program, fn: FunctionInfo) -> Iterator[Finding]:
        env = fn.env
        snapshot_since: Dict[str, int] = {}
        published: Dict[str, int] = {}
        if env is not None:
            for name, t in env.names.items():
                if name not in ("self", "cls") and t.split(".")[-1] == "Snapshot":
                    snapshot_since[name] = 0
        nodes = _sorted_own_nodes(fn.node)
        for node in nodes:
            if isinstance(node, ast.Assign):
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == self._ATTR
                ):
                    snapshot_since.setdefault(node.targets[0].id, node.lineno)
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr == self._ATTR
                        and isinstance(node.value, ast.Name)
                    ):
                        published.setdefault(node.value.id, node.lineno)
        seen: set = set()

        def fire(lineno: int, col: int, message: str) -> Iterator[Finding]:
            key = (lineno, col)
            if key not in seen:
                seen.add(key)
                yield self.finding_at(fn.path, lineno, col, message)

        for node in nodes:
            targets: List[ast.expr] = []
            if isinstance(node, (ast.Assign, ast.Delete)):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for tgt in targets:
                if self._chain_touches(tgt, allow_outer=True):
                    yield from fire(
                        tgt.lineno,
                        tgt.col_offset,
                        f"`{fn.qualname}` writes through `{self._ATTR}` after "
                        f"publication; the swap must be the only store — "
                        f"build a fresh Snapshot and republish",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SNAPSHOT_MUTATORS
                and self._chain_touches(node.func.value, allow_outer=False)
            ):
                yield from fire(
                    node.lineno,
                    node.col_offset,
                    f"`{fn.qualname}` calls `.{node.func.attr}(...)` on a "
                    f"published snapshot's state; published values are "
                    f"frozen — build a fresh Snapshot and republish",
                )
            hit = _mutation_of(node)
            if hit is None:
                continue
            root, detail, lineno, col = hit
            if root in published and lineno > published[root]:
                yield from fire(
                    lineno,
                    col,
                    f"`{fn.qualname}` mutates `{root}` ({detail}) after "
                    f"publishing it via `{self._ATTR}` at line "
                    f"{published[root]}; concurrent readers already hold it "
                    f"— publish-once means build-then-swap, never patch",
                )
            elif root in snapshot_since and lineno >= snapshot_since[root]:
                yield from fire(
                    lineno,
                    col,
                    f"`{fn.qualname}` mutates `{root}` ({detail}), a "
                    f"Snapshot (frozen by construction); snapshots and "
                    f"everything they freeze are immutable after "
                    f"publication — build a fresh one instead",
                )
        for root, msite in program.effects[fn.qualname].mutations:
            if not msite.detail.startswith("passed to"):
                continue
            if (root in published and msite.lineno > published[root]) or (
                root in snapshot_since and msite.lineno >= snapshot_since[root]
            ):
                yield from fire(
                    msite.lineno,
                    msite.col,
                    f"`{fn.qualname}` hands the published snapshot `{root}` "
                    f"to a callee that mutates it ({msite.detail}); "
                    f"publish-once holds through calls too",
                )

    @staticmethod
    def _chain_touches(node: ast.AST, *, allow_outer: bool) -> bool:
        """Whether a target/receiver chain passes *through* ``_snapshot``.

        The swap itself (outermost ``x._snapshot = ...``) is the
        sanctioned publication and is exempted via *allow_outer*.
        """
        first = allow_outer
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                if node.attr == PublishOnceRule._ATTR and not first:
                    return True
                node = node.value
            else:
                node = node.value
            first = False
        return False


#: Container mutators relevant to snapshot state (subset of the effect
#: layer's mutator set — snapshots hold mappings and lists).
_SNAPSHOT_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "popitem", "clear",
     "update", "setdefault", "add", "discard", "sort", "reverse"}
)


class QuotaRollbackRule(ProgramRule):
    """REP015 — a quota reserve crossing an await must roll back on failure.

    ``Tenant.submit`` reserves lights *before* its first await so
    concurrent submits see a consistent budget; if the coroutine is
    then cancelled (or the writer dies) while parked on the queue, an
    unprotected reserve leaks quota forever — the resource analogue of
    REP007's write-dominated-by-invalidation.  Detection is structural:
    an attribute compared against a ``*Quota`` limit is a reserve
    counter; growing it (``+=`` / ``|=``) and then awaiting requires
    every later await to sit inside a ``try`` whose ``finally`` (or
    handler) releases the same attribute.
    """

    id = "REP015"
    summary = "quota reserve held across an await without a try/finally release"

    _GROW_OPS = (ast.Add, ast.BitOr)
    _RELEASE_CALLS = frozenset(
        {"discard", "remove", "difference_update", "clear", "pop"}
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        reserve_attrs: Dict[str, frozenset] = {}
        for cls_qual in sorted(graph.classes):
            attrs = self._reserve_attrs(program, cls_qual)
            if attrs:
                reserve_attrs[cls_qual] = attrs
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if (
                not fn.is_async
                or not _in_library(fn.path)
                or fn.cls is None
                or fn.cls not in reserve_attrs
            ):
                continue
            reserves = reserve_attrs[fn.cls]
            awaits = _awaits_with_trys(fn.node)
            for node in _sorted_own_nodes(fn.node):
                if not isinstance(node, ast.AugAssign) or not isinstance(
                    node.op, self._GROW_OPS
                ):
                    continue
                attr = _self_attr_of(node.target)
                if attr is None or attr not in reserves:
                    continue
                for aw, trys in awaits:
                    if aw.lineno <= node.lineno:
                        continue
                    if any(self._try_releases(t, attr) for t in trys):
                        continue
                    yield self.finding_at(
                        fn.path,
                        node.lineno,
                        node.col_offset,
                        f"`{qualname}` reserves quota state `self.{attr}` "
                        f"and then awaits at line {aw.lineno} outside any "
                        f"try/finally that releases it; a cancellation (or "
                        f"crash surfacing at the await) leaks the reserve "
                        f"forever — wrap the awaits and roll back in "
                        f"finally",
                    )
                    break
                else:
                    continue

    @staticmethod
    def _reserve_attrs(program: Program, cls_qual: str) -> frozenset:
        """Self attributes compared against a ``*Quota`` limit."""
        graph = program.graph
        cls = graph.classes[cls_qual]
        out: set = set()
        for method_qual in sorted(cls.methods.values()):
            fn = graph.functions.get(method_qual)
            if fn is None or fn.env is None:
                continue
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Compare):
                    continue
                self_attrs: set = set()
                quota_read = False
                for sub in ast.walk(node):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    recv = fn.env.type_of(sub.value)
                    if recv is not None and recv.split(".")[-1].endswith("Quota"):
                        quota_read = True
                        continue
                    attr = _self_attr_of(sub)
                    if attr is not None:
                        self_attrs.add(attr)
                if quota_read:
                    out |= self_attrs
        return frozenset(out)

    @classmethod
    def _try_releases(cls, try_node: ast.Try, attr: str) -> bool:
        """Whether the try's finally/handlers release ``self.<attr>``."""
        regions: List[ast.stmt] = list(try_node.finalbody)
        for handler in try_node.handlers:
            regions.extend(handler.body)
        for stmt in regions:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, ast.Sub
                ):
                    if _self_attr_of(node.target) == attr:
                        return True
                elif isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if _self_attr_of(tgt) == attr:
                            return True
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in cls._RELEASE_CALLS
                    and _self_attr_of(node.func.value) == attr
                ):
                    return True
        return False


class PublishEventRule(ProgramRule):
    """REP016 — the publish event is swapped fresh, then the old one set.

    ``Tenant._wake`` wakes freshness-waiting readers with a
    swap-and-set: capture the current event, install a *fresh*
    ``asyncio.Event``, then set the captured one.  Every ordering
    mistake is a lost-wakeup or deadlock: setting before the swap lets
    a reader re-wait on the already-set event and sleep forever;
    swapping without setting strands every parked reader; ``clear()``
    races wakers by design; and the writer awaiting its own publish
    event deadlocks the tenant (only the writer sets it).  The rule
    applies to every attribute a class manages with the swap pattern.
    """

    id = "REP016"
    summary = "publish-event swap-and-set protocol violation (lost wakeup / deadlock)"

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        for cls_qual in sorted(graph.classes):
            cls = graph.classes[cls_qual]
            mod = graph.modules.get(cls.module)
            if mod is None or not _in_library(mod.path):
                continue
            protocol_attrs = self._swap_managed_attrs(program, cls_qual)
            if not protocol_attrs:
                continue
            for method_qual in sorted(set(cls.methods.values())):
                fn = graph.functions.get(method_qual)
                if fn is None or fn.name in CONSTRUCTION_EXEMPT:
                    continue
                yield from self._check_method(program, fn, protocol_attrs)

    @staticmethod
    def _is_event_ctor(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = dotted_name(node.func)
        return chain is not None and chain.split(".")[-1] == "Event"

    def _swap_managed_attrs(self, program: Program, cls_qual: str) -> frozenset:
        """Event attributes re-assigned outside construction: the swap
        pattern's fingerprint."""
        graph = program.graph
        cls = graph.classes[cls_qual]
        out: set = set()
        for method_qual in sorted(set(cls.methods.values())):
            fn = graph.functions.get(method_qual)
            if fn is None or fn.name in CONSTRUCTION_EXEMPT:
                continue
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_event_ctor(node.value):
                    continue
                for tgt in node.targets:
                    attr = _self_attr_of(tgt)
                    if attr is not None:
                        out.add(attr)
        return frozenset(out)

    def _check_method(
        self, program: Program, fn: FunctionInfo, attrs: frozenset
    ) -> Iterator[Finding]:
        captures: Dict[str, Tuple[str, int]] = {}  # local name -> (attr, line)
        swaps: List[Tuple[str, int, int]] = []  # (attr, lineno, col)
        set_calls: Dict[str, List[int]] = {}  # captured name -> set() lines
        nodes = _sorted_own_nodes(fn.node)
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                value = node.value
                if isinstance(tgt, ast.Name) and isinstance(value, ast.Attribute):
                    attr = _self_attr_of(value)
                    if attr in attrs:
                        captures[tgt.id] = (str(attr), value.lineno)
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    attr = _self_attr_of(tgt)
                    if attr in attrs:
                        swaps.append((str(attr), tgt.lineno, tgt.col_offset))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in captures
            ):
                set_calls.setdefault(node.func.value.id, []).append(node.lineno)
        for node in nodes:
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = _self_attr_of(node.func.value)
            if attr not in attrs:
                continue
            if node.func.attr == "set":
                yield self.finding_at(
                    fn.path,
                    node.lineno,
                    node.col_offset,
                    f"`{fn.qualname}` sets `self.{attr}` in place; the "
                    f"swap-and-set protocol requires installing a fresh "
                    f"event first (capture, swap, then set the old one), or "
                    f"a reader can re-wait on a set event and miss every "
                    f"later publish",
                )
            elif node.func.attr == "clear":
                yield self.finding_at(
                    fn.path,
                    node.lineno,
                    node.col_offset,
                    f"`{fn.qualname}` clears `self.{attr}`; clear() races "
                    f"waiters that were about to wake — swap in a fresh "
                    f"event instead",
                )
        for attr, lineno, col in swaps:
            capture = None
            for name, (cattr, cline) in captures.items():
                if cattr == attr and cline < lineno:
                    if capture is None or cline > capture[1]:
                        capture = (name, cline)
            if capture is None:
                yield self.finding_at(
                    fn.path,
                    lineno,
                    col,
                    f"`{fn.qualname}` replaces `self.{attr}` without "
                    f"capturing the old event; readers parked on it never "
                    f"wake",
                )
                continue
            lines = set_calls.get(capture[0], [])
            if not lines:
                yield self.finding_at(
                    fn.path,
                    lineno,
                    col,
                    f"`{fn.qualname}` captures and replaces `self.{attr}` "
                    f"but never sets the captured event; readers parked on "
                    f"it never wake",
                )
            elif min(lines) < lineno:
                yield self.finding_at(
                    fn.path,
                    min(lines),
                    col,
                    f"`{fn.qualname}` sets the old `self.{attr}` *before* "
                    f"installing the fresh one; a reader waking between the "
                    f"two re-waits on the already-set event and sleeps "
                    f"through every later publish",
                )
        if fn.qualname in program.writer_reachable:
            for node in nodes:
                if not (
                    isinstance(node, ast.Await)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "wait"
                ):
                    continue
                recv = node.value.func.value
                attr = _self_attr_of(recv)
                if attr is None and isinstance(recv, ast.Name):
                    cap = captures.get(recv.id)
                    attr = cap[0] if cap is not None else None
                if attr in attrs:
                    yield self.finding_at(
                        fn.path,
                        node.lineno,
                        node.col_offset,
                        f"`{fn.qualname}` runs on the writer task but awaits "
                        f"`self.{attr}` — only the writer sets the publish "
                        f"event, so this deadlocks the tenant",
                    )


class UnusedSuppressionRule(Rule):
    """REP011 — a suppression that suppresses nothing is a finding.

    Mirrors ruff's RUF100: stale ``allow`` comments read as standing
    exemptions and hide real regressions when the code around them
    changes.  The check itself lives in the engine (it needs the full
    per-file *and* program finding sets to know what each comment
    caught); this class carries the id/summary for ``--list-rules``,
    ``--select`` validation, and SARIF metadata.  REP011 findings are
    not themselves suppressible — remove the dead comment instead.
    """

    id = "REP011"
    summary = "suppression comment that suppresses nothing (remove it)"

    def applies(self, mod_path: str) -> bool:
        return False

    def check(self, tree: ast.AST, path: str, mod_path: str) -> Iterator[Finding]:
        return iter(())


class NumericParityRule(ProgramRule):
    """REP017 — no sub-float64 value reaches a parity-kernel parameter.

    REP005 polices the *spelling* of dtypes inside the kernel files;
    it cannot see a float32 (or dtype-unproven) array produced three
    calls away and handed to ``fold_zscore_grid`` through helpers.
    This rule consumes the precision-lattice fixpoint
    (:mod:`repro.analysis.numeric`): every parameter of every function
    in a parity file is a sink, sink-ness flows backward through
    parameter conduits, and any tracked value whose level is sub-f64
    or unknown meeting a sink is a finding — charged at the public
    entry of the call chain (REP007's charging convention), with the
    full chain down to the kernel named in the message.

    Producers prove exactness with an explicit seam blessing
    (``.astype(np.float64)`` / ``np.asarray(..., dtype=np.float64)``)
    at the boundary where raw samples enter the kernel tier — a
    bit-exact no-op on data that already honors the store's float64
    contract, and the cut point the canary tests exercise.
    """

    id = "REP017"
    summary = "sub-float64 or unproven-precision value reaches a parity-kernel parameter"

    def _entry(
        self, program: Program, violation: PrecisionViolation
    ) -> Tuple[str, int, int, List[str]]:
        """Anchor site + caller chain, walked up to a public entry."""
        graph = program.graph
        callers = program.numeric.callers
        chain_up = [violation.qualname]
        site = (violation.path, violation.lineno, violation.col)
        seen = {violation.qualname}
        current = violation.qualname
        while True:
            fn = graph.functions[current]
            if fn.is_public:
                break
            candidates = sorted(
                c for c in callers.get(current, []) if c[0] not in seen
            )
            if not candidates:
                break
            caller_qual, line, col = candidates[0]
            caller_fn = graph.functions[caller_qual]
            site = (caller_fn.path, line, col)
            chain_up.append(caller_qual)
            seen.add(caller_qual)
            current = caller_qual
        chain_up.reverse()
        return site[0], site[1], site[2], chain_up

    def check_program(self, program: Program) -> Iterator[Finding]:
        for violation in program.numeric.violations:
            path, line, col, chain_up = self._entry(program, violation)
            links = chain_up + list(violation.kernel_chain)
            chain = " -> ".join(q.rsplit(".", 1)[-1] for q in links)
            kernel = violation.kernel_chain[-1]
            yield self.finding_at(
                path,
                line,
                col,
                f"{LEVEL_NAMES[violation.level]} value reaches float64 "
                f"parity-kernel parameter `{violation.param}` of `{kernel}` "
                f"via {chain}; bless the seam with .astype(np.float64) or "
                f"pin the producer's dtype",
            )


class ReductionOrderRule(ProgramRule):
    """REP018 — parity-reachable reductions must be order-stable.

    Float addition is not associative: the same multiset of addends
    summed in two different orders can differ in the last bit, which
    is exactly the bit the golden fixtures pin.  Within the closure of
    code reachable from the parity kernels this rule flags the three
    ways an unstable order sneaks into a reduction: reducing a
    set-order-tainted value (``unordered_locals`` provenance, the
    interprocedural REP006/REP009 machinery), accumulating in a loop
    whose iteration order derives from a set, and ``math.fsum`` —
    whose compensated result differs from ``np.sum``'s pairwise one —
    anywhere outside the documented ``FSUM_SEAMS`` allowlist.
    """

    id = "REP018"
    summary = "order-unstable reduction inside the parity-reachable closure"

    #: Documented seams allowed to mix ``math.fsum`` into the parity
    #: closure.  Empty by design: the parity tier pins *one* summation
    #: scheme (NumPy's pairwise), and a seam earns its row here only
    #: with a golden fixture proving the scheme change is contained.
    FSUM_SEAMS: Tuple[str, ...] = ()

    _REDUCERS = SetOrderRule._REDUCERS

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        effects = program.effects
        roots = [
            q
            for q, fn in graph.functions.items()
            if module_path(fn.path) in PARITY_FILES
        ]
        reachable = graph.reachable_from(roots)
        for qualname in sorted(reachable):
            fn = graph.functions.get(qualname)
            if fn is None:
                continue
            tainted = unordered_locals(fn, effects)
            for node in own_nodes(fn.node):
                if isinstance(node, ast.Call):
                    chain = dotted_name(node.func)
                    parts = chain.split(".") if chain else []
                    if not parts:
                        continue
                    if parts[-1] == "fsum" and (
                        len(parts) == 1 or parts[0] == "math"
                    ):
                        if qualname not in self.FSUM_SEAMS:
                            yield self.finding_at(
                                fn.path,
                                node.lineno,
                                node.col_offset,
                                f"`{chain}` in parity-reachable `{qualname}` "
                                f"mixes fsum's compensated summation with "
                                f"np.sum's pairwise scheme; the parity tier "
                                f"pins one reduction order (see "
                                f"ReductionOrderRule.FSUM_SEAMS)",
                            )
                    is_reducer = parts[-1] in self._REDUCERS and (
                        len(parts) == 1 or parts[0] in ("np", "numpy", "math")
                    )
                    if (
                        is_reducer
                        and node.args
                        and expr_unordered(fn, node.args[0], tainted, effects)
                    ):
                        yield self.finding_at(
                            fn.path,
                            node.args[0].lineno,
                            node.args[0].col_offset,
                            f"`{chain}` in parity-reachable `{qualname}` "
                            f"reduces set-order-tainted data; the reduction "
                            f"order must be canonical (sort first)",
                        )
                elif isinstance(node, ast.For):
                    if not expr_unordered(fn, node.iter, tainted, effects):
                        continue
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.AugAssign) and isinstance(
                            sub.op, (ast.Add, ast.Mult)
                        ):
                            yield self.finding_at(
                                fn.path,
                                sub.lineno,
                                sub.col_offset,
                                f"accumulation in `{qualname}` inside a loop "
                                f"whose iteration order derives from a set; "
                                f"parity-reachable accumulation must iterate "
                                f"a canonical order (sorted(...))",
                            )
                            break


#: The sanctioned dispatch seam between the exact float64 tier and the
#: (future compiled) tolerance tier.  Only code in this module may
#: call or reference ``tolerance[ulp=N]``-marked functions.
KERNEL_TIER_SEAM = "repro/core/kernel_tier.py"


class ToleranceBoundaryRule(ProgramRule):
    """REP019 — the exact/tolerance kernel boundary crosses one seam.

    The compiled-kernel roadmap item relaxes bit-for-bit parity to a
    documented ULP budget *behind an explicit flag*.  Statically that
    contract is: a function marked ``# repro: tolerance[ulp=N]`` may
    only be called (or passed as a function reference) by other marked
    functions or by the ``kernel_tier`` dispatch module; nothing in a
    parity-kernel file may carry the marker; and a marker that fails
    the strict grammar, or sits on no ``def``, is itself a finding —
    a typo must not silently open the parity tier to a relaxed kernel.
    Golden-fixture and parity-oracle entry points therefore cannot
    reach tolerance-tier code except through the seam's explicit
    ``tier=`` dispatch.
    """

    id = "REP019"
    summary = "tolerance-tier function reached outside the kernel_tier dispatch seam"

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        marked = program.tolerance_markers
        for path, line, reason in program.tolerance_orphans:
            yield self.finding_at(path, line, 0, reason)
        for qualname in sorted(marked):
            fn = graph.functions.get(qualname)
            if fn is None:
                continue
            if module_path(fn.path) in PARITY_FILES:
                yield self.finding_at(
                    fn.path,
                    fn.lineno,
                    fn.node.col_offset,
                    f"`{qualname}` declares tolerance[ulp="
                    f"{marked[qualname]}] inside a parity-kernel file; the "
                    f"exact float64 tier admits no tolerance — relaxed "
                    f"kernels live behind the kernel_tier seam",
                )
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if qualname in marked or module_path(fn.path) == KERNEL_TIER_SEAM:
                continue
            for call_site in fn.calls:
                if call_site.callee in marked:
                    yield self.finding_at(
                        fn.path,
                        call_site.lineno,
                        call_site.node.col_offset,
                        f"`{qualname}` calls tolerance-tier "
                        f"`{call_site.callee}` (ulp="
                        f"{marked[call_site.callee]}) directly; only the "
                        f"kernel_tier dispatch seam may cross the "
                        f"exact/tolerance boundary",
                    )
            for ref in fn.refs:
                if ref.target in marked:
                    yield self.finding_at(
                        fn.path,
                        ref.lineno,
                        ref.col,
                        f"`{qualname}` hands a reference to tolerance-tier "
                        f"`{ref.target}` across the boundary; route kernel "
                        f"selection through kernel_tier's explicit "
                        f"tier= dispatch",
                    )


ALL_RULES: Sequence[Rule] = (
    MutableDefaultRule(),
    BroadExceptRule(),
    RngSeamRule(),
    WallClockRule(),
    ParityDtypeRule(),
    SetOrderRule(),
)

PROGRAM_RULES: Sequence[ProgramRule] = (
    StoreCoherenceRule(),
    WorkerEscapeRule(),
    CrossCallSetOrderRule(),
    StrictFrontierRule(),
    LoopBlockingRule(),
    SingleWriterRule(),
    PublishOnceRule(),
    QuotaRollbackRule(),
    PublishEventRule(),
    NumericParityRule(),
    ReductionOrderRule(),
    ToleranceBoundaryRule(),
)

AUDIT_RULES: Sequence[Rule] = (UnusedSuppressionRule(),)
