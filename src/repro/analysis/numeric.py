"""Numeric precision dataflow: the float64 parity lattice (REP017).

The batched / stream / shard / serve backends all rest on one numeric
invariant: every value that reaches an identification kernel is
``float64``, so identical operation order gives bit-for-bit parity
against the golden fixtures.  REP005 enforces the *spelling* of that
contract per file; this module proves the *semantics* — no sub-float64
(or unproven) value flows into a parity-kernel parameter on any call
chain, however many helpers it crosses.

**The lattice.**  Each tracked value carries a precision level from the
four-point chain

    EXACT (0)  ⊑  AMBIGUOUS (1)  ⊑  SUB (2)  ⊑  UNKNOWN (3)

* ``EXACT`` — provably ``float64`` (or an exact-in-float64 integer /
  bool dtype): ``dtype=np.float64``, ``.astype(np.float64)``, float
  literals, default-dtype NumPy constructors.
* ``AMBIGUOUS`` — float64 in fact but via an ambiguous spelling
  (``dtype=float``, ``dtype="float"``): REP005's business, not a
  parity violation, so REP017 does not fire on it.
* ``SUB`` — provably below float64 (``float32`` / ``float16`` and
  their string spellings).
* ``UNKNOWN`` — an array whose dtype the analysis cannot pin down
  (e.g. the return of an annotated producer whose body defeats local
  inference).  Conservatively *not* float64 — the parity tier demands
  proof, so UNKNOWN at a kernel boundary is a finding.

``join`` is pointwise ``max`` over the chain, extended componentwise
to tuples / dicts / list-like containers; ``None`` means *untracked*
(not a numeric array value, or produced by code the analysis does not
model) and is the bottom element: ``join(None, v) == v``.

**Untracked is an under-approximation, deliberately.**  A value only
becomes tracked through an explicit dtype, a NumPy constructor, or an
in-tree producer whose return annotation names ``ndarray``.  Joining
untracked operands as identity means an f32 smuggled through an
unmodeled API will not fire — the analyzer's contract is "no false
positives against the committed-empty baseline" first, coverage
second.  Widening the tracked frontier (more annotations, more
modeled APIs) monotonically grows coverage without churning existing
findings.

**Interprocedural fixpoint.**  Parameter precision is the join over
all call sites' tracked argument values; return precision is the join
over ``return`` expressions evaluated under those parameters.  Both
only ever climb the lattice, so the sweep loop terminates (bounded by
function count times lattice height; we cap sweeps like the effect
fixpoints in :mod:`repro.analysis.effects`).  ``run_guarded(f, ...)``
— the sanctioned containment seam — is modeled as a direct call to
``f`` so precision flows through the guard.

**Parity sinks.**  Every parameter of every function defined in a
parity-kernel file is a sink.  Sink-ness propagates *backward* through
bare-``Name`` parameter conduits (``_score_light`` passing its ``t``
straight into ``_select_cycle`` makes ``_score_light.t`` a sink), so
the violation is charged where a concrete non-parameter value enters
the chain — typically the public batch entry — and the finding names
the whole chain down to the kernel.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .callgraph import (
    CallGraph,
    FunctionInfo,
    _resolve_func_ref,
    module_path,
    own_nodes,
)

__all__ = [
    "EXACT",
    "AMBIGUOUS",
    "SUB",
    "UNKNOWN",
    "LEVELS",
    "LEVEL_NAMES",
    "PARITY_KERNEL_FILES",
    "TupleVal",
    "DictVal",
    "ListVal",
    "Value",
    "join",
    "worst",
    "leq",
    "dtype_level",
    "NumericSummary",
    "PrecisionViolation",
    "NumericAnalysis",
    "build_numeric",
]

# ----------------------------------------------------------------------
# The precision chain
# ----------------------------------------------------------------------

EXACT = 0  #: provably float64 (or exactly-representable integer/bool)
AMBIGUOUS = 1  #: float64 via an ambiguous spelling (``dtype=float``)
SUB = 2  #: provably below float64 (float32/float16)
UNKNOWN = 3  #: an array whose dtype cannot be pinned down

LEVELS = (EXACT, AMBIGUOUS, SUB, UNKNOWN)

LEVEL_NAMES = {
    EXACT: "float64",
    AMBIGUOUS: "float64 (ambiguous spelling)",
    SUB: "sub-float64",
    UNKNOWN: "unknown-precision",
}

#: Must stay in sync with ``rules.PARITY_FILES`` (kept separate to
#: avoid an import cycle; ``effects.BLOCKING_KERNEL_FILES`` follows the
#: same convention).
PARITY_KERNEL_FILES = (
    "repro/core/batch.py",
    "repro/core/cycle.py",
    "repro/core/superposition.py",
    "repro/core/changepoint.py",
)

#: Containment seams modeled as direct calls: ``run_guarded(f, *a)``
#: behaves, numerically, exactly like ``f(*a)``.
_GUARD_CALLS = frozenset({"run_guarded"})

#: Structured abstract values deeper than this collapse to their worst
#: scalar level — a widening that bounds the heap the fixpoint walks.
_MAX_DEPTH = 3

#: Bound on the sink-chain length recorded for messages.
_MAX_CHAIN = 8


@dataclass
class TupleVal:
    """Positional product value (tuple returns, unpacking)."""

    elements: List["Value"]


@dataclass
class DictVal:
    """String-keyed record (``dict(t=..., v=...)``, ``st["t"]``).

    ``default`` absorbs stores through non-constant keys
    (``states[key] = state``) and answers loads through them.
    """

    entries: Dict[str, "Value"] = field(default_factory=dict)
    default: "Value" = None


@dataclass
class ListVal:
    """Homogeneous sequence (list literals, comprehensions, appends)."""

    element: "Value" = None


Value = Union[None, int, TupleVal, DictVal, ListVal]


def _cap(val: Value, depth: int = 0) -> Value:
    """Collapse structure deeper than ``_MAX_DEPTH`` to its worst level."""
    if val is None or isinstance(val, int):
        return val
    if depth >= _MAX_DEPTH:
        return worst(val)
    if isinstance(val, TupleVal):
        return TupleVal([_cap(e, depth + 1) for e in val.elements])
    if isinstance(val, ListVal):
        return ListVal(_cap(val.element, depth + 1))
    return DictVal(
        {k: _cap(v, depth + 1) for k, v in val.entries.items()},
        _cap(val.default, depth + 1),
    )


def clone(val: Value) -> Value:
    """Deep copy so joins into one frame never alias another's state."""
    if val is None or isinstance(val, int):
        return val
    if isinstance(val, TupleVal):
        return TupleVal([clone(e) for e in val.elements])
    if isinstance(val, ListVal):
        return ListVal(clone(val.element))
    return DictVal(
        {k: clone(v) for k, v in val.entries.items()}, clone(val.default)
    )


def worst(val: Value) -> Optional[int]:
    """Worst scalar level anywhere inside *val* (None if fully untracked)."""
    if val is None or isinstance(val, int):
        return val
    if isinstance(val, TupleVal):
        parts = [worst(e) for e in val.elements]
    elif isinstance(val, ListVal):
        parts = [worst(val.element)]
    else:
        parts = [worst(v) for v in val.entries.values()]
        parts.append(worst(val.default))
    levels = [p for p in parts if p is not None]
    return max(levels) if levels else None


def join(a: Value, b: Value) -> Value:
    """Least upper bound; ``None`` (untracked) is the bottom element."""
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, int) and isinstance(b, int):
        return max(a, b)
    if (
        isinstance(a, TupleVal)
        and isinstance(b, TupleVal)
        and len(a.elements) == len(b.elements)
    ):
        return TupleVal(
            [join(x, y) for x, y in zip(a.elements, b.elements)]
        )
    if isinstance(a, ListVal) and isinstance(b, ListVal):
        return ListVal(join(a.element, b.element))
    if isinstance(a, DictVal) and isinstance(b, DictVal):
        keys = set(a.entries) | set(b.entries)
        return DictVal(
            {k: join(a.entries.get(k), b.entries.get(k)) for k in keys},
            join(a.default, b.default),
        )
    # structurally incompatible: widen to the worst scalar level
    wa, wb = worst(a), worst(b)
    if wa is None:
        return wb
    if wb is None:
        return wa
    return max(wa, wb)


def _sig(val: Value, depth: int = 0) -> object:
    """Hashable signature for change detection in the fixpoint."""
    if val is None or isinstance(val, int):
        return val
    if depth > _MAX_DEPTH + 1:
        return "..."
    if isinstance(val, TupleVal):
        return ("T",) + tuple(_sig(e, depth + 1) for e in val.elements)
    if isinstance(val, ListVal):
        return ("L", _sig(val.element, depth + 1))
    return (
        "D",
        tuple(
            sorted((k, _sig(v, depth + 1)) for k, v in val.entries.items())
        ),
        _sig(val.default, depth + 1),
    )


def leq(a: Value, b: Value) -> bool:
    """Whether *a* ⊑ *b* in the induced order (``join(a, b) == b``)."""
    return _sig(join(a, b)) == _sig(b)


# ----------------------------------------------------------------------
# Dtype classification (the transfer function for dtype expressions)
# ----------------------------------------------------------------------

_EXACT_TAILS = frozenset(
    {
        "float64", "double", "float_", "longdouble",
        "int8", "int16", "int32", "int64", "intp", "int_",
        "uint8", "uint16", "uint32", "uint64", "uintp",
        "bool_", "complex128", "complex_",
    }
)
_SUB_TAILS = frozenset({"float32", "float16", "half", "single", "csingle"})
_EXACT_STRINGS = frozenset(
    {"float64", "f8", "d", "i1", "i2", "i4", "i8", "u1", "u2", "u4",
     "u8", "b", "b1", "int64", "int32", "bool", "c16"}
)
_AMBIG_STRINGS = frozenset({"float"})
_SUB_STRINGS = frozenset(
    {"float32", "float16", "half", "single", "f", "f2", "f4", "e", "c8"}
)


def dtype_level(node: ast.expr) -> int:
    """Precision level a ``dtype=`` expression pins a value to."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        s = node.value.lstrip("<>=|")
        if s in _SUB_STRINGS:
            return SUB
        if s in _AMBIG_STRINGS:
            return AMBIGUOUS
        if s in _EXACT_STRINGS:
            return EXACT
        return UNKNOWN
    chain = _dotted_chain(node)
    if chain:
        tail = chain[-1]
        if tail in _SUB_TAILS:
            return SUB
        if tail in _EXACT_TAILS:
            return EXACT
        if tail == "float" and len(chain) == 1:
            # the builtin: float64 in fact, ambiguous in spelling
            return AMBIGUOUS
        if tail in ("int", "bool", "complex") and len(chain) == 1:
            return EXACT
    return UNKNOWN


def _dotted_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


# ----------------------------------------------------------------------
# Per-function machinery
# ----------------------------------------------------------------------

#: NumPy constructors whose *default* dtype is exact (float64 / int64).
_DEFAULT_F64_CONSTRUCTORS = frozenset(
    {
        "zeros", "ones", "empty", "full", "arange", "linspace",
        "logspace", "geomspace", "eye", "identity", "nan_to_num",
    }
)

#: Coercions whose second positional argument is the dtype.
_DTYPE_POSITIONAL = {
    "asarray": 1, "ascontiguousarray": 1, "array": 1,
    "asfortranarray": 1, "frombuffer": 1,
    "zeros": 1, "ones": 1, "empty": 1, "full": 2,
}


@dataclass
class CallRecord:
    """A resolved in-tree call, guard seams already unwrapped."""

    node: ast.Call
    callee: str
    args: List[ast.expr]
    keywords: List[ast.keyword]


@dataclass
class NumericSummary:
    """Per-function precision facts the fixpoint converges on."""

    qualname: str
    #: Joined precision of every tracked value each parameter receives.
    params: Dict[str, Value] = field(default_factory=dict)
    #: Joined abstract value of all ``return`` expressions.
    returns: Value = None
    #: Return annotation names ``ndarray`` — untracked returns are
    #: floored at UNKNOWN (the producer owes the parity tier a proof).
    tracked: bool = False
    #: Dtype-valued parameters (``dtype: npt.DTypeLike = float``):
    #: joined level of every dtype expression bound at call sites,
    #: seeded with the default's level.  Lets ``np.asarray(x,
    #: dtype=dtype)`` inside a validator resolve interprocedurally
    #: instead of collapsing to UNKNOWN.
    dtype_params: Dict[str, int] = field(default_factory=dict)
    #: Parameters that reach a parity-kernel parameter when passed
    #: through bare, mapped to the call chain down to the kernel.
    sink_params: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class PrecisionViolation:
    """A sub-float64 / unproven value meeting a parity sink."""

    qualname: str  #: function whose body contains the offending call
    path: str
    lineno: int
    col: int
    callee: str  #: direct callee receiving the value
    param: str  #: sink parameter on the callee
    kernel_chain: Tuple[str, ...]  #: callee → … → parity kernel
    level: int  #: SUB or UNKNOWN


@dataclass
class NumericAnalysis:
    """What :func:`build_numeric` hands to the rules via ``Program``."""

    summaries: Dict[str, NumericSummary] = field(default_factory=dict)
    violations: List[PrecisionViolation] = field(default_factory=list)
    #: callee qualname -> (caller qualname, lineno, col) of every
    #: numeric call record, guard seams unwrapped — the edges REP017
    #: walks to charge a violation at its public entry.
    callers: Dict[str, List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )


def _returns_ndarray(fn: FunctionInfo) -> bool:
    ann = getattr(fn.node, "returns", None)
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except (ValueError, AttributeError):  # pragma: no cover - malformed
        return False
    return "ndarray" in text


def _dtype_param_defaults(fn: FunctionInfo) -> Dict[str, int]:
    """Dtype-valued parameters of *fn* and their defaults' levels.

    A parameter is dtype-valued when its name is ``dtype`` or its
    annotation mentions ``DType`` (``npt.DTypeLike``).  The returned
    level seeds the interprocedural join — call sites that bind the
    parameter join their expression's level on top.
    """
    args = fn.node.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: Dict[str, Optional[ast.expr]] = {}
    pad = len(positional) - len(args.defaults)
    for i, a in enumerate(positional):
        defaults[a.arg] = args.defaults[i - pad] if i >= pad else None
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        defaults[a.arg] = d
    out: Dict[str, int] = {}
    for a in positional + list(args.kwonlyargs):
        is_dtype = a.arg == "dtype"
        if not is_dtype and a.annotation is not None:
            try:
                is_dtype = "DType" in ast.unparse(a.annotation)
            except (ValueError, AttributeError):  # pragma: no cover
                is_dtype = False
        if not is_dtype:
            continue
        default = defaults.get(a.arg)
        out[a.arg] = dtype_level(default) if default is not None else UNKNOWN
    return out


def _call_records(fn: FunctionInfo, graph: CallGraph) -> List[CallRecord]:
    """Resolved calls in *fn*, with ``run_guarded`` seams unwrapped."""
    site_by_node = {id(site.node): site.callee for site in fn.calls}
    records: List[CallRecord] = []
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        tail = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if tail in _GUARD_CALLS and node.args and fn.env is not None:
            target = _resolve_func_ref(node.args[0], fn.env, graph)
            if target is not None and target in graph.functions:
                records.append(
                    CallRecord(
                        node, target, list(node.args[1:]),
                        list(node.keywords),
                    )
                )
                continue
        callee = site_by_node.get(id(node))
        if callee is not None and callee in graph.functions:
            records.append(
                CallRecord(node, callee, list(node.args), list(node.keywords))
            )
    return records


def _callee_params(callee_fn: FunctionInfo) -> List[str]:
    params = list(callee_fn.params)
    if callee_fn.cls is not None and params[:1] in (["self"], ["cls"]):
        params = params[1:]
    return params


def _map_args(
    callee_fn: FunctionInfo, rec: CallRecord
) -> Iterator[Tuple[str, ast.expr]]:
    """Pair each argument expression with the parameter it binds."""
    params = _callee_params(callee_fn)
    for i, arg in enumerate(rec.args):
        if isinstance(arg, ast.Starred) or i >= len(params):
            break
        yield params[i], arg
    named = set(params)
    for kw in rec.keywords:
        if kw.arg is not None and kw.arg in named:
            yield kw.arg, kw.value


# ----------------------------------------------------------------------
# Expression evaluation (the transfer functions)
# ----------------------------------------------------------------------

class _Evaluator:
    """Evaluates expressions to abstract values under a local env."""

    def __init__(
        self,
        fn: FunctionInfo,
        env: Dict[str, Value],
        summaries: Dict[str, NumericSummary],
        records_by_node: Dict[int, CallRecord],
        dtype_params: Optional[Dict[str, int]] = None,
    ) -> None:
        self.fn = fn
        self.env = env
        self.summaries = summaries
        self.records_by_node = records_by_node
        self.dtype_params = dtype_params or {}

    def dtype_of(self, node: ast.expr) -> int:
        """Like :func:`dtype_level`, resolving dtype-valued parameters."""
        if isinstance(node, ast.Name) and node.id in self.dtype_params:
            return self.dtype_params[node.id]
        return dtype_level(node)

    def eval(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Constant):
            return EXACT if isinstance(node.value, (int, float, bool)) else None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Tuple):
            return _cap(TupleVal([self.eval(e) for e in node.elts]))
        if isinstance(node, ast.List):
            out: Value = None
            for e in node.elts:
                out = join(out, self.eval(e))
            return _cap(ListVal(out))
        if isinstance(node, ast.Dict):
            d = DictVal()
            for key, value in zip(node.keys, node.values):
                v = self.eval(value)
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    d.entries[key.value] = join(
                        d.entries.get(key.value), v
                    )
                else:
                    d.default = join(d.default, v)
            return _cap(d)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return _cap(ListVal(self._eval_comprehension(node)))
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BinOp):
            return join(
                self._scalarize(self.eval(node.left)),
                self._scalarize(self.eval(node.right)),
            )
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = None
            for v in node.values:
                out = join(out, self.eval(v))
            return out
        if isinstance(node, ast.Compare):
            return None  # boolean masks: exact by construction
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return None

    def _scalarize(self, val: Value) -> Value:
        """Arithmetic over containers degrades to the worst level."""
        if val is None or isinstance(val, int):
            return val
        return worst(val)

    def _eval_comprehension(self, node: ast.expr) -> Value:
        targets: Set[str] = set()
        for gen in node.generators:  # type: ignore[attr-defined]
            for sub in ast.walk(gen.target):
                if isinstance(sub, ast.Name):
                    targets.add(sub.id)
        saved = {t: self.env.get(t) for t in targets}
        try:
            for t in targets:
                self.env[t] = None
            return self.eval(node.elt)  # type: ignore[attr-defined]
        finally:
            for t, v in saved.items():
                if v is None:
                    self.env.pop(t, None)
                else:
                    self.env[t] = v

    def _eval_subscript(self, node: ast.Subscript) -> Value:
        base = self.eval(node.value)
        if base is None:
            return None
        if isinstance(base, int):
            return base  # indexing / slicing a tracked array preserves dtype
        key = node.slice
        if isinstance(base, DictVal):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return join(base.entries.get(key.value), None)
            return base.default
        if isinstance(base, TupleVal):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, int)
                and 0 <= key.value < len(base.elements)
            ):
                return base.elements[key.value]
            return worst(base)
        if isinstance(base, ListVal):
            return base.element
        return None

    def _eval_call(self, node: ast.Call) -> Value:
        rec = self.records_by_node.get(id(node))
        if rec is not None:
            summary = self.summaries.get(rec.callee)
            if summary is not None:
                return clone(summary.returns)
            return None
        func = node.func
        # dict(t=..., v=...) record construction
        if isinstance(func, ast.Name) and func.id == "dict":
            d = DictVal()
            for kw in node.keywords:
                if kw.arg is not None:
                    d.entries[kw.arg] = join(
                        d.entries.get(kw.arg), self.eval(kw.value)
                    )
                else:
                    d.default = join(d.default, worst(self.eval(kw.value)))
            return _cap(d)
        if isinstance(func, ast.Name):
            if func.id == "float":
                return EXACT
            if func.id in ("sorted", "list", "tuple", "reversed") and node.args:
                return self.eval(node.args[0])
            return None
        if isinstance(func, ast.Attribute):
            return self._eval_method(node, func)
        return None

    def _dtype_of_call(
        self, node: ast.Call, positional: Optional[int]
    ) -> Optional[int]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self.dtype_of(kw.value)
        if positional is not None and len(node.args) > positional:
            return self.dtype_of(node.args[positional])
        return None

    def _eval_method(self, node: ast.Call, func: ast.Attribute) -> Value:
        attr = func.attr
        if attr == "astype":
            # the blessing operation: result dtype is exactly the argument
            if node.args:
                return self.dtype_of(node.args[0])
            lvl = self._dtype_of_call(node, None)
            return lvl if lvl is not None else UNKNOWN
        chain = _dotted_chain(func)
        if chain is not None and chain[0] in ("np", "numpy"):
            pinned = self._dtype_of_call(node, _DTYPE_POSITIONAL.get(attr))
            if pinned is not None:
                return pinned
            if attr in _DEFAULT_F64_CONSTRUCTORS:
                return EXACT
            out: Value = None
            for arg in node.args:
                out = join(out, self._scalarize(self.eval(arg)))
            for kw in node.keywords:
                out = join(out, self._scalarize(self.eval(kw.value)))
            return out
        if chain is not None and chain[0] == "math":
            return EXACT if attr == "fsum" else None
        receiver = self.eval(func.value)
        if isinstance(receiver, int):
            return receiver  # array methods preserve the array's dtype
        if isinstance(receiver, DictVal):
            if attr == "get" and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    return join(receiver.entries.get(key.value), receiver.default)
                return receiver.default
            if attr == "copy":
                return clone(receiver)
            if attr == "values":
                out = receiver.default
                for v in receiver.entries.values():
                    out = join(out, v)
                return ListVal(out)
            return None
        if isinstance(receiver, ListVal):
            if attr in ("copy", "pop"):
                return receiver if attr == "copy" else receiver.element
            return None
        return None


# ----------------------------------------------------------------------
# Local environment (flow-insensitive, per-function fixpoint)
# ----------------------------------------------------------------------

_LOCAL_PASS_LIMIT = 8

#: Receiver-mutating methods modeled by :func:`_apply_mutator`.
_MUTATORS = frozenset({"update", "append", "extend"})


@dataclass
class _FnData:
    """Per-function facts extracted once, before the fixpoint runs.

    The worklist revisits a function many times; re-walking its whole
    AST each visit dominated the analysis cost, so the transfer-relevant
    statements are pre-extracted here (in source order — the local pass
    loop makes order-independence a non-issue anyway).
    """

    fn: FunctionInfo
    records: List[CallRecord]
    records_by_node: Dict[int, CallRecord]
    #: Assign / AnnAssign / AugAssign / For / mutator-Call nodes, in
    #: source order, dispatched by isinstance in :func:`_local_env`.
    stmts: List[ast.AST]
    returns: List[ast.Return]


def _extract(fn: FunctionInfo, records: List[CallRecord]) -> _FnData:
    stmts: List[ast.AST] = []
    returns: List[ast.Return] = []
    for node in own_nodes(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.For)):
            stmts.append(node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                stmts.append(node)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
            ):
                stmts.append(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            returns.append(node)
    return _FnData(
        fn=fn,
        records=records,
        records_by_node={id(r.node): r for r in records},
        stmts=stmts,
        returns=returns,
    )


def _local_env(
    data: _FnData,
    summary: NumericSummary,
    summaries: Dict[str, NumericSummary],
) -> Tuple[Dict[str, Value], _Evaluator]:
    """Converged name → value map for the function's body.

    Flow-insensitive: every assignment joins into its target, so a
    rebinding like ``x = x.astype(np.float64)`` does *not* launder
    precision — blessings must wrap the expression at the seam
    (``dict(t=t.astype(np.float64), ...)``), which is also where the
    canary tests cut.
    """
    env: Dict[str, Value] = {
        p: clone(v) for p, v in summary.params.items() if v is not None
    }
    ev = _Evaluator(
        data.fn, env, summaries, data.records_by_node, summary.dtype_params
    )
    for _ in range(_LOCAL_PASS_LIMIT):
        before = {k: _sig(v) for k, v in env.items()}
        for node in data.stmts:
            if isinstance(node, ast.Assign):
                val = ev.eval(node.value)
                for tgt in node.targets:
                    _assign(ev, tgt, val)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                _assign(ev, node.target, ev.eval(node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = join(
                        env.get(node.target.id),
                        ev._scalarize(ev.eval(node.value)),
                    )
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = join(
                        env.get(node.target.id),
                        _element_of(ev.eval(node.iter)),
                    )
            elif isinstance(node, ast.Call):
                _apply_mutator(ev, node)
        after = {k: _sig(v) for k, v in env.items()}
        if after == before:
            break
    return env, ev


def _element_of(val: Value) -> Value:
    if val is None:
        return None
    if isinstance(val, int):
        return val  # iterating an array yields rows of the same dtype
    if isinstance(val, ListVal):
        return val.element
    if isinstance(val, TupleVal):
        return worst(val)
    if isinstance(val, DictVal):
        return None  # iterating a dict yields keys
    return None


def _assign(ev: _Evaluator, target: ast.expr, val: Value) -> None:
    env = ev.env
    if isinstance(target, ast.Name):
        env[target.id] = join(env.get(target.id), clone(val))
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        parts: List[Value]
        if isinstance(val, TupleVal) and len(val.elements) == len(target.elts):
            parts = list(val.elements)
        elif isinstance(val, int):
            parts = [val] * len(target.elts)
        elif isinstance(val, ListVal):
            parts = [val.element] * len(target.elts)
        else:
            parts = [None] * len(target.elts)
        for tgt, part in zip(target.elts, parts):
            _assign(ev, tgt, part)
        return
    if isinstance(target, ast.Subscript):
        _store_subscript(ev, target, val)


def _store_subscript(ev: _Evaluator, target: ast.Subscript, val: Value) -> None:
    base_expr = target.value
    key = target.slice
    # one level: states[key] = ..., st["mag"] = ...
    if isinstance(base_expr, ast.Name):
        base = ev.env.get(base_expr.id)
        if isinstance(base, DictVal):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                base.entries[key.value] = join(
                    base.entries.get(key.value), clone(val)
                )
            else:
                base.default = join(base.default, clone(val))
        elif isinstance(base, ListVal):
            base.element = join(base.element, clone(val))
        # stores into a tracked array (int level) keep the array's own
        # dtype — NumPy casts the stored value — so they are ignored.
        return
    # two levels: states[key]["mag"] = ...
    if isinstance(base_expr, ast.Subscript) and isinstance(
        base_expr.value, ast.Name
    ):
        outer = ev.env.get(base_expr.value.id)
        inner: Value = None
        if isinstance(outer, DictVal):
            inner_key = base_expr.slice
            if isinstance(inner_key, ast.Constant) and isinstance(
                inner_key.value, str
            ):
                inner = outer.entries.get(inner_key.value)
            else:
                inner = outer.default
        elif isinstance(outer, ListVal):
            inner = outer.element
        if isinstance(inner, DictVal):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                inner.entries[key.value] = join(
                    inner.entries.get(key.value), clone(val)
                )
            else:
                inner.default = join(inner.default, clone(val))


def _apply_mutator(ev: _Evaluator, node: ast.Call) -> None:
    """Model ``d.update(...)`` / ``xs.append(...)`` on tracked locals."""
    func = node.func
    if not (
        isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
    ):
        return
    base = ev.env.get(func.value.id)
    if isinstance(base, DictVal) and func.attr == "update":
        for kw in node.keywords:
            v = ev.eval(kw.value)
            if kw.arg is not None:
                base.entries[kw.arg] = join(base.entries.get(kw.arg), v)
            else:
                merged = v
                if isinstance(merged, DictVal):
                    for k, sub in merged.entries.items():
                        base.entries[k] = join(base.entries.get(k), sub)
                    base.default = join(base.default, merged.default)
        for arg in node.args:
            v = ev.eval(arg)
            if isinstance(v, DictVal):
                for k, sub in v.entries.items():
                    base.entries[k] = join(base.entries.get(k), sub)
                base.default = join(base.default, v.default)
    elif isinstance(base, ListVal) and func.attr in ("append", "extend"):
        for arg in node.args:
            v = ev.eval(arg)
            if func.attr == "extend":
                v = _element_of(v)
            base.element = join(base.element, v)


# ----------------------------------------------------------------------
# Interprocedural fixpoint
# ----------------------------------------------------------------------

def _floor_unknown(val: Value) -> Value:
    """Annotated ndarray producers owe a proof: untracked → UNKNOWN."""
    if val is None:
        return UNKNOWN
    if isinstance(val, int):
        return val
    if isinstance(val, TupleVal):
        return TupleVal([_floor_unknown(e) for e in val.elements])
    if isinstance(val, ListVal):
        return ListVal(_floor_unknown(val.element))
    return val


#: Worklist safety valve — far above what monotone joins can need
#: (every summary can only climb the lattice a bounded number of times),
#: so hitting it would indicate a non-monotone transfer bug.
_WORKLIST_FACTOR = 50


def build_numeric(graph: CallGraph) -> NumericAnalysis:
    """Run the precision fixpoint and collect parity-sink violations.

    Worklist-driven: a function is revisited only when something it
    depends on moved — a callee's return climbed, one of its own
    parameters climbed (a caller passed something worse), or a callee
    parameter became a sink conduit.  With per-function statements
    pre-extracted (:func:`_extract`), whole-tree analysis stays well
    inside the CI time budget where a naive full-sweep loop did not.
    """
    summaries: Dict[str, NumericSummary] = {}
    data_map: Dict[str, _FnData] = {}
    callers: Dict[str, List[Tuple[str, int, int]]] = {}
    caller_quals: Dict[str, Set[str]] = {}
    for qual, fn in graph.functions.items():
        summaries[qual] = NumericSummary(
            qualname=qual,
            params={p: None for p in _callee_params(fn)},
            tracked=_returns_ndarray(fn),
            dtype_params=_dtype_param_defaults(fn),
        )
        if module_path(fn.path) in PARITY_KERNEL_FILES:
            summaries[qual].sink_params = {
                p: (qual,) for p in _callee_params(fn)
            }
    for qual, fn in graph.functions.items():
        data_map[qual] = _extract(fn, _call_records(fn, graph))
        for rec in data_map[qual].records:
            callers.setdefault(rec.callee, []).append(
                (qual, rec.node.lineno, rec.node.col_offset)
            )
            caller_quals.setdefault(rec.callee, set()).add(qual)

    queue = deque(graph.functions)
    queued: Set[str] = set(queue)

    def push(target: str) -> None:
        if target in summaries and target not in queued:
            queue.append(target)
            queued.add(target)

    # Parameter facts flow through per-(callee, caller) *contribution*
    # maps, recomputed fresh every time the caller is visited, rather
    # than historical joins.  The tracked-return floor makes the system
    # transiently non-monotone (a producer evaluated before its inputs
    # arrive reports UNKNOWN, then recovers) — sticky joins would
    # freeze that transient into the final answer; fresh recomputation
    # lets it heal, and convergence still holds because each value
    # makes the untracked→tracked transition at most once.
    contribs: Dict[str, Dict[str, Dict[str, Value]]] = {}

    def run(floor_active: bool) -> None:
        steps = 0
        budget = _WORKLIST_FACTOR * len(graph.functions) + 100
        while queue and steps < budget:
            steps += 1
            qual = queue.popleft()
            queued.discard(qual)
            fn = graph.functions[qual]
            summary = summaries[qual]
            data = data_map[qual]
            # refresh own parameters from the current contributions
            incoming = contribs.get(qual)
            if incoming is not None:
                fresh: Dict[str, Value] = {p: None for p in summary.params}
                for caller_map in incoming.values():
                    for param, val in caller_map.items():
                        if param in fresh:
                            fresh[param] = _cap(
                                join(fresh[param], clone(val))
                            )
                summary.params = fresh
            env, ev = _local_env(data, summary, summaries)
            ret: Value = None
            for node in data.returns:
                ret = join(ret, ev.eval(node.value))
            if floor_active and summary.tracked:
                ret = _floor_unknown(ret)
            merged = _cap(ret)
            if _sig(merged) != _sig(summary.returns):
                summary.returns = merged
                for caller in caller_quals.get(qual, ()):
                    push(caller)
            outgoing: Dict[str, Dict[str, Value]] = {}
            for rec in data.records:
                callee_fn = graph.functions[rec.callee]
                callee = summaries[rec.callee]
                contrib = outgoing.setdefault(rec.callee, {})
                for param, arg in _map_args(callee_fn, rec):
                    if param in callee.dtype_params:
                        # dtype-valued parameter: join the dtype level
                        # the site pins, not an abstract array value
                        # (these only climb, so a sticky max is exact)
                        lvl = ev.dtype_of(arg)
                        if lvl > callee.dtype_params[param]:
                            callee.dtype_params[param] = lvl
                            push(rec.callee)
                        continue
                    if param not in callee.params:
                        continue
                    val = ev.eval(arg)
                    if val is None:
                        continue
                    contrib[param] = _cap(join(contrib.get(param), val))
                # backward: a bare parameter forwarded into a sink
                # makes the forwarding parameter a sink (conduit) —
                # runs even when the forwarded value is untracked
                for param, arg in _map_args(callee_fn, rec):
                    chain = callee.sink_params.get(param)
                    if (
                        chain is not None
                        and isinstance(arg, ast.Name)
                        and arg.id in fn.params
                        and arg.id not in summary.sink_params
                    ):
                        summary.sink_params[arg.id] = ((qual,) + chain)[
                            :_MAX_CHAIN
                        ]
                        for caller in caller_quals.get(qual, ()):
                            push(caller)
            for callee_qual, contrib in outgoing.items():
                stored = contribs.setdefault(callee_qual, {}).get(qual)
                if stored is None or {
                    p: _sig(v) for p, v in stored.items()
                } != {p: _sig(v) for p, v in contrib.items()}:
                    contribs[callee_qual][qual] = contrib
                    push(callee_qual)

    # Phase 1: the pure least fixpoint, floors off.  Applying the
    # tracked-return floor *during* the fixpoint would turn every
    # dependency cycle into self-sustaining UNKNOWN: each member's
    # return is None only because the others are pending, the floor
    # promotes that transient to UNKNOWN, and the cycle feeds it back.
    run(floor_active=False)
    # Phase 2: floor the genuinely unmodeled tracked producers (their
    # returns stayed None with every input resolved) and re-propagate.
    # Only they and their transitive callers can move, so re-seeding
    # the full worklist converges in near-one visit per function.
    for qual in summaries:
        push(qual)
    run(floor_active=True)

    violations = _collect_violations(graph, summaries, data_map)
    return NumericAnalysis(
        summaries=summaries, violations=violations, callers=callers
    )


def _collect_violations(
    graph: CallGraph,
    summaries: Dict[str, NumericSummary],
    data_map: Dict[str, _FnData],
) -> List[PrecisionViolation]:
    out: List[PrecisionViolation] = []
    seen: Set[Tuple[str, int, int, str, str]] = set()
    for qual, fn in graph.functions.items():
        summary = summaries[qual]
        data = data_map[qual]
        _, ev = _local_env(data, summary, summaries)
        for rec in data.records:
            callee_fn = graph.functions[rec.callee]
            callee = summaries[rec.callee]
            for param, arg in _map_args(callee_fn, rec):
                chain = callee.sink_params.get(param)
                if chain is None:
                    continue
                if isinstance(arg, ast.Name) and arg.id in fn.params:
                    continue  # conduit: charged at the callers instead
                level = worst(ev.eval(arg))
                if level not in (SUB, UNKNOWN):
                    continue
                key = (fn.path, rec.node.lineno, rec.node.col_offset,
                       rec.callee, param)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    PrecisionViolation(
                        qualname=qual,
                        path=fn.path,
                        lineno=rec.node.lineno,
                        col=rec.node.col_offset,
                        callee=rec.callee,
                        param=param,
                        kernel_chain=chain,
                        level=level,  # type: ignore[arg-type]
                    )
                )
    out.sort(key=lambda v: (v.path, v.lineno, v.col, v.callee, v.param))
    return out
