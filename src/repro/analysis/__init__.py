"""Static invariant analysis for the repro codebase.

The parity and containment contracts the test suite enforces by
sampling (bit-for-bit serial/batched equality, typed failure routing,
deterministic RNG threading) are encoded here as repo-specific AST
lint rules, so whole bug classes are rejected before anything runs:

========  ==========================================================
REP001    no mutable or call-expression default arguments (the
          shared ``config=PipelineConfig()`` bug class)
REP002    no broad/bare ``except`` outside the two sanctioned
          containment seams (``repro/core/pipeline.py``,
          ``repro/parallel/pool.py``)
REP003    RNGs enter library code only through the
          ``repro._util.as_rng`` / ``seed_sequence_for`` seams
REP004    no wall-clock reads in ``repro.core`` / ``repro.trace``
          (telemetry goes through ``repro.obs``)
REP005    no float32 downcasts or dtype-ambiguous array coercions in
          the parity-critical kernels
REP006    no iteration or float accumulation over ``set`` values
          (iteration order would feed a numeric reduction)
========  ==========================================================

Run it as ``python -m repro.analysis [paths...]``; suppress a single
finding with a trailing ``# repro: allow[REP00x]`` comment (REP002
suppressions are themselves only honored at the sanctioned seams).
"""

from .engine import Finding, lint_file, lint_source, run_paths
from .rules import ALL_RULES, Rule, SUPPRESSION_SCOPE

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "SUPPRESSION_SCOPE",
    "lint_file",
    "lint_source",
    "run_paths",
]
