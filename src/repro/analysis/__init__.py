"""Static invariant analysis for the repro codebase.

The parity and containment contracts the test suite enforces by
sampling (bit-for-bit serial/batched equality, typed failure routing,
deterministic RNG threading) are encoded here as repo-specific AST
lint rules, so whole bug classes are rejected before anything runs:

========  ==========================================================
REP001    no mutable or call-expression default arguments (the
          shared ``config=PipelineConfig()`` bug class)
REP002    no broad/bare ``except`` outside the two sanctioned
          containment seams (``repro/core/pipeline.py``,
          ``repro/parallel/pool.py``)
REP003    RNGs enter library code only through the
          ``repro._util.as_rng`` / ``seed_sequence_for`` seams
REP004    no wall-clock reads in ``repro.core`` / ``repro.trace``
          (telemetry goes through ``repro.obs``)
REP005    no float32 downcasts or dtype-ambiguous array coercions in
          the parity-critical kernels
REP006    no iteration or float accumulation over ``set`` values
          (iteration order would feed a numeric reduction)
========  ==========================================================

On top of the per-file pass, a whole-program pass (call graph +
monotone effect fixpoint, ``callgraph.py`` / ``effects.py``) checks
the interprocedural contracts:

========  ==========================================================
REP007    store data writes dominated by cache invalidation, at any
          call depth
REP008    no mutation of values already dispatched into a worker
          closure
REP009    set-order taint must not cross a call boundary into a
          float reduction
REP010    kernel call paths stay inside the mypy-strict module tier
REP011    every ``allow`` suppression still matches a finding
REP012    no loop-blocking work reachable from an ``async def``
          (offload through ``run_in_executor``)
REP013    writer-owned tenant/session state is written only by the
          writer-task closure
REP014    a published ``Snapshot`` is never mutated afterwards
REP015    quota reserves crossing an ``await`` are try/finally
          released
REP016    publish events follow the capture/swap/set protocol
REP017    no sub-float64 or precision-unproven value reaches a
          parity-kernel parameter on any call chain (precision
          lattice over the same fixpoint, ``numeric.py``)
REP018    parity-reachable reductions are order-stable; ``math.fsum``
          only at allowlisted seams (none today)
REP019    ``# repro: tolerance[ulp=N]``-marked code is reached only
          through the ``repro/core/kernel_tier.py`` dispatch seam
========  ==========================================================

Run it as ``python -m repro.analysis [paths...]``; suppress a single
finding with a trailing ``# repro: allow[REP00x]`` comment (REP002,
REP007, and REP012 suppressions are themselves only honored at their
sanctioned seams).
"""

from .engine import Finding, lint_file, lint_source, run_paths
from .rules import ALL_RULES, Rule, SUPPRESSION_SCOPE

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "SUPPRESSION_SCOPE",
    "lint_file",
    "lint_source",
    "run_paths",
]
