"""Lint driver: file discovery, suppressions, rule dispatch.

Separated from :mod:`repro.analysis.rules` so rules stay declarative
and the driver owns everything positional: path normalization, the
trailing ``allow[REP00x]`` suppression protocol, the whole-program
pass (call graph + effect summaries feeding the REP007–REP010 rules),
the unused-suppression audit (REP011), and the policy that scoped
suppressions (REP002, REP007) are only honored at their sanctioned
files.
"""

from __future__ import annotations

import ast
import os
import re
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .effects import build_program
from .rules import (
    ALL_RULES,
    AUDIT_RULES,
    Finding,
    PROGRAM_RULES,
    ProgramRule,
    Rule,
    SUPPRESSION_SCOPE,
    module_path,
)

__all__ = [
    "Finding",
    "lint_source",
    "lint_sources",
    "lint_file",
    "run_paths",
    "module_path",
    "iter_python_files",
    "to_sarif",
    "strip_suppressions",
]

#: Trailing-comment suppression: ``allow[REP001]`` or
#: ``allow[REP001,REP003]`` (with the ``repro:`` prefix) on the
#: finding's line.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")

_RULE_IDS = frozenset(
    rule.id for rule in (*ALL_RULES, *PROGRAM_RULES, *AUDIT_RULES)
)

#: Rules whose findings can never be silenced by an ``allow`` comment:
#: the audit rule itself (remove the dead comment instead of blessing it).
_UNSUPPRESSIBLE = frozenset({"REP011"})


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed[lineno] = ids
    return allowed


def _unsanctioned_suppressions(
    suppressions: Dict[int, Set[str]], path: str, mod_path: str
) -> Tuple[List[Finding], Set[Tuple[str, int, str]]]:
    """Scoped suppressions used outside their sanctioned files.

    An ``allow`` comment for REP002/REP007 anywhere except its
    sanctioned seam would quietly re-open the bug class the rule
    closes, so the suppression itself is a violation (and cannot be
    suppressed).  Returns the findings plus the ``(path, line, rule)``
    keys they account for, so the unused-suppression audit does not
    double-report them.
    """
    findings: List[Finding] = []
    flagged: Set[Tuple[str, int, str]] = set()
    for lineno in sorted(suppressions):
        for rule_id in sorted(suppressions[lineno]):
            sanctioned = SUPPRESSION_SCOPE.get(rule_id)
            if sanctioned is not None and mod_path not in sanctioned:
                flagged.add((path, lineno, rule_id))
                findings.append(
                    Finding(
                        rule=rule_id,
                        path=path,
                        line=lineno,
                        col=0,
                        message=(
                            f"suppression of {rule_id} is only sanctioned in "
                            f"{sanctioned}; this file must satisfy the "
                            f"invariant instead"
                        ),
                    )
                )
            elif rule_id not in _RULE_IDS:
                flagged.add((path, lineno, rule_id))
                findings.append(
                    Finding(
                        rule="REP000",
                        path=path,
                        line=lineno,
                        col=0,
                        message=f"suppression names unknown rule {rule_id!r}",
                    )
                )
    return findings, flagged


def lint_source(
    source: str,
    path: str,
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint one file's source text (per-file rules only).

    The whole-program rules and the unused-suppression audit need the
    full tree; use :func:`lint_sources` / :func:`run_paths` for those.
    """
    findings, _ = _lint_one(source, path, select=select, rules=rules)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _lint_one(
    source: str,
    path: str,
    *,
    select: Optional[Sequence[str]],
    rules: Sequence[Rule],
    tree: Optional[ast.Module] = None,
) -> Tuple[List[Finding], "_FileState"]:
    state = _FileState(path=path, suppressions={}, flagged=set(), used=set())
    mod_path = module_path(path)
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        rule="REP000",
                        path=path,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}",
                    )
                ],
                state,
            )
    state.suppressions = _suppressions(source)
    scope_findings, state.flagged = _unsanctioned_suppressions(
        state.suppressions, path, mod_path
    )
    findings = list(scope_findings)
    for rule in rules:
        if select is not None and rule.id not in select:
            continue
        if not rule.applies(mod_path):
            continue
        for finding in rule.check(tree, path, mod_path):
            if finding.rule in state.suppressions.get(finding.line, ()):
                state.used.add((path, finding.line, finding.rule))
                continue
            findings.append(finding)
    if select is not None:
        findings = [f for f in findings if f.rule in select or f.rule == "REP000"]
    return findings, state


class _FileState:
    """Per-file suppression bookkeeping threaded through the passes."""

    def __init__(
        self,
        path: str,
        suppressions: Dict[int, Set[str]],
        flagged: Set[Tuple[str, int, str]],
        used: Set[Tuple[str, int, str]],
    ) -> None:
        self.path = path
        self.suppressions = suppressions
        self.flagged = flagged
        self.used = used


def lint_sources(
    files: Sequence[Tuple[str, str]],
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
    program_rules: Sequence[ProgramRule] = PROGRAM_RULES,
    audit_suppressions: Optional[bool] = None,
) -> List[Finding]:
    """Lint a set of ``(path, source)`` pairs as one program.

    Runs the per-file rules on each file, then — when any program rule
    is in play — builds the whole-program call graph/effect summaries
    once over *all* the files and runs REP007–REP010 on top.  Finally
    (by default only when no ``--select`` narrows the run, since a
    narrowed run cannot know what the other rules' suppressions catch)
    audits every ``allow`` comment that suppressed nothing (REP011).
    """
    audit = select is None if audit_suppressions is None else audit_suppressions
    findings: List[Finding] = []
    states: Dict[str, _FileState] = {}
    # Sort inputs and parse each file exactly once: the per-file pass
    # and the whole-program pass share the cached trees, and findings
    # (plus the baseline / SARIF output downstream) are independent of
    # the caller's directory-walk order.
    files = sorted(files, key=lambda pair: pair[0])
    trees: Dict[str, ast.Module] = {}
    for path, source in files:
        try:
            trees[path] = ast.parse(source, filename=path)
        except SyntaxError:
            pass  # _lint_one reports REP000; the program pass skips it
    for path, source in files:
        file_findings, state = _lint_one(
            source, path, select=select, rules=rules, tree=trees.get(path)
        )
        findings.extend(file_findings)
        states[path] = state

    active_program = [
        rule
        for rule in program_rules
        if select is None or rule.id in select
    ]
    if active_program:

        def suppressed(path: str, line: int, rule_id: str) -> bool:
            state = states.get(path)
            if state is None or rule_id not in state.suppressions.get(line, ()):
                return False
            sanctioned = SUPPRESSION_SCOPE.get(rule_id)
            return sanctioned is None or module_path(path) in sanctioned

        program = build_program(files, suppressed=suppressed, trees=trees)
        for key in program.used_suppressions:
            state = states.get(key[0])
            if state is not None:
                state.used.add(key)
        for rule in active_program:
            for finding in rule.check_program(program):
                state = states.get(finding.path)
                if (
                    state is not None
                    and finding.rule in state.suppressions.get(finding.line, ())
                    and finding.rule not in _UNSUPPRESSIBLE
                ):
                    state.used.add((finding.path, finding.line, finding.rule))
                    continue
                findings.append(finding)
        if select is not None:
            findings = [
                f for f in findings if f.rule in select or f.rule == "REP000"
            ]

    if audit:
        for path, state in states.items():
            for lineno in sorted(state.suppressions):
                for rule_id in sorted(state.suppressions[lineno]):
                    key = (path, lineno, rule_id)
                    if key in state.used or key in state.flagged:
                        continue
                    findings.append(
                        Finding(
                            rule="REP011",
                            path=path,
                            line=lineno,
                            col=0,
                            message=(
                                f"suppression `allow[{rule_id}]` matches no "
                                f"{rule_id} finding on this line; remove the "
                                f"dead comment"
                            ),
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str,
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint one file from disk (per-file rules only)."""
    with open(path, encoding="utf-8") as fp:
        source = fp.read()
    return lint_source(source, path, select=select, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(out)


def run_paths(
    paths: Iterable[str],
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
    program_rules: Sequence[ProgramRule] = PROGRAM_RULES,
    audit_suppressions: Optional[bool] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* as one program."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fp:
            files.append((path, fp.read()))
    return lint_sources(
        files,
        select=select,
        rules=rules,
        program_rules=program_rules,
        audit_suppressions=audit_suppressions,
    )


# ----------------------------------------------------------------------
# Output formats / fixers
# ----------------------------------------------------------------------

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """Findings as a SARIF 2.1.0 log (one run, one result per finding).

    The shape GitHub code scanning ingests: rule metadata on the tool
    driver, results referencing rules by index, physical locations with
    1-based lines/columns.
    """
    all_rules: List[Rule] = [*ALL_RULES, *PROGRAM_RULES, *AUDIT_RULES]
    known = {rule.id: i for i, rule in enumerate(all_rules)}
    rules_meta: List[Dict[str, object]] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary or rule.id},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules
    ]
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace(os.sep, "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        index = known.get(finding.rule)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://github.com/"  # repo-relative docs
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def strip_suppressions(
    source: str, removals: Mapping[int, Set[str]]
) -> str:
    """Remove the named rule ids from ``allow`` comments on given lines.

    When every id in a comment is removed the whole trailing comment
    goes; otherwise the comment is rewritten with the surviving ids.
    Lines not in *removals* pass through byte-identical.
    """
    out: List[str] = []
    newline = "\n" if source.endswith("\n") else ""
    for lineno, line in enumerate(source.splitlines(), start=1):
        drop = removals.get(lineno)
        if drop:
            match = _ALLOW_RE.search(line)
            if match is not None:
                ids = [
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                ]
                survivors = [i for i in ids if i not in drop]
                if survivors:
                    replacement = (
                        f"# repro: allow[{','.join(survivors)}]"
                    )
                    line = line[: match.start()] + replacement + line[match.end():]
                else:
                    line = line[: match.start()].rstrip()
        out.append(line)
    return "\n".join(out) + newline
