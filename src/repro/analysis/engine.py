"""Lint driver: file discovery, suppressions, rule dispatch.

Separated from :mod:`repro.analysis.rules` so rules stay declarative
and the driver owns everything positional: path normalization, the
``# repro: allow[REP00x]`` suppression protocol, and the policy that
scoped suppressions (REP002) are only honored at their sanctioned
files.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .rules import ALL_RULES, Finding, Rule, SUPPRESSION_SCOPE

__all__ = ["Finding", "lint_source", "lint_file", "run_paths", "module_path"]

#: Trailing-comment suppression: ``# repro: allow[REP001]`` or
#: ``# repro: allow[REP001,REP003]`` on the finding's line.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")

_RULE_IDS = frozenset(rule.id for rule in ALL_RULES)


def module_path(path: str) -> str:
    """Path from the ``repro`` package root, else the normalized path.

    ``/any/prefix/src/repro/core/batch.py`` → ``repro/core/batch.py``;
    paths outside the package (tests, benchmarks, examples) come back
    with separators normalized so rule scoping is platform-stable.
    """
    norm = path.replace(os.sep, "/").replace("\\", "/")
    marker = "/repro/"
    i = norm.rfind(marker)
    if i != -1:
        return "repro/" + norm[i + len(marker):]
    if norm.startswith("repro/"):
        return norm
    return norm


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> rule ids allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed[lineno] = ids
    return allowed


def _unsanctioned_suppressions(
    suppressions: Dict[int, Set[str]], path: str, mod_path: str
) -> List[Finding]:
    """Scoped suppressions used outside their sanctioned files.

    An ``allow`` comment for REP002 anywhere except the containment
    seams would quietly re-open the bug class the rule closes, so the
    suppression itself is a violation (and cannot be suppressed).
    """
    findings: List[Finding] = []
    for lineno in sorted(suppressions):
        for rule_id in sorted(suppressions[lineno]):
            sanctioned = SUPPRESSION_SCOPE.get(rule_id)
            if sanctioned is not None and mod_path not in sanctioned:
                findings.append(
                    Finding(
                        rule=rule_id,
                        path=path,
                        line=lineno,
                        col=0,
                        message=(
                            f"suppression of {rule_id} is only sanctioned in "
                            f"{sanctioned}; this file must satisfy the "
                            f"invariant instead"
                        ),
                    )
                )
            elif rule_id not in _RULE_IDS:
                findings.append(
                    Finding(
                        rule="REP000",
                        path=path,
                        line=lineno,
                        col=0,
                        message=f"suppression names unknown rule {rule_id!r}",
                    )
                )
    return findings


def lint_source(
    source: str,
    path: str,
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint one file's source text; returns unsuppressed findings."""
    mod_path = module_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="REP000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = _suppressions(source)
    findings = list(_unsanctioned_suppressions(suppressions, path, mod_path))
    for rule in rules:
        if select is not None and rule.id not in select:
            continue
        if not rule.applies(mod_path):
            continue
        for finding in rule.check(tree, path, mod_path):
            if finding.rule in suppressions.get(finding.line, ()):  # suppressed
                continue
            findings.append(finding)
    if select is not None:
        findings = [f for f in findings if f.rule in select or f.rule == "REP000"]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str,
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint one file from disk."""
    with open(path, encoding="utf-8") as fp:
        source = fp.read()
    return lint_source(source, path, select=select, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(out)


def run_paths(
    paths: Iterable[str],
    *,
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*; findings sorted by location."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select, rules=rules))
    return findings
