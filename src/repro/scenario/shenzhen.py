"""The Shenzhen-like evaluation scenario (Table II of the paper).

Nine signalized intersections (36 lights) at the paper's actual
geographic locations, with per-intersection taxi flows spanning the
25× record-rate imbalance of Table II — from ShenNan×WenJin
(5071 records/hour) down to BaGua×BaGuaSan (198/hour).

Each intersection is modelled as a four-leg crossroad: four approach
segments feed it from unsignalized feeder nodes ~400 m out.  Signal
plans are static for most lights, pre-programmed two-plan (peak /
off-peak) for the two downtown arterials — the two controller
categories the paper's system targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._util import as_rng
from ..lights.intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
)
from ..network.geometry import LocalFrame
from ..network.roadnet import Intersection, RoadNetwork, Segment
from ..sim.engine import CitySimulation
from ..sim.queueing import ApproachConfig

__all__ = ["Table2Row", "TABLE2", "ShenzhenScenario", "shenzhen_scenario"]


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II."""

    id: int
    name: str
    lon: float
    lat: float
    records_per_hour: int


#: The paper's Table II, verbatim.
TABLE2: Tuple[Table2Row, ...] = (
    Table2Row(1, "ShenNan x WenJin", 114.125, 22.547, 5071),
    Table2Row(2, "FuHua x FuTian", 114.072, 22.538, 1638),
    Table2Row(3, "FuHua x ZhongXinSi", 114.053, 22.538, 1039),
    Table2Row(4, "SunGang x BaoAn", 114.104, 22.558, 1863),
    Table2Row(5, "BaGua x BaGuaSan", 114.094, 22.564, 198),
    Table2Row(6, "ShenNan x BeiDou", 114.129, 22.548, 1687),
    Table2Row(7, "HongLi x HuangGang", 114.068, 22.551, 2178),
    Table2Row(8, "FuHua x ZhongXinWu", 114.056, 22.537, 708),
    Table2Row(9, "FuZhong x JinTian", 114.058, 22.547, 266),
)

#: Mean reports one simulated taxi emits while on a 400 m approach —
#: used to convert Table II record rates into vehicle arrival rates.
_REPORTS_PER_VEHICLE = 4.0

#: Approach length of every leg, meters.
APPROACH_LENGTH_M = 400.0

#: Intersections running a pre-programmed peak/off-peak plan pair
#: (downtown arterials; the rest are static).
_PREPROGRAMMED = {1, 7}


def _signal_plans(rng: np.random.Generator) -> Dict[int, List[SignalPlan]]:
    """Deterministic plan assignment shaped like the paper's lights.

    Cycles cluster in 90–160 s with NS reds between 35 % and 65 % of
    the cycle (the on-site mean red was 91.7 s across both groups).
    """
    plans: Dict[int, List[SignalPlan]] = {}
    for i, row in enumerate(TABLE2):
        cycle = float(rng.integers(90, 161))
        ns_red = float(np.round(cycle * rng.uniform(0.35, 0.65)))
        offset = float(rng.uniform(0.0, cycle))
        if row.id in _PREPROGRAMMED:
            peak_cycle = float(np.round(cycle * 1.3))
            peak_red = float(np.round(peak_cycle * 0.5))
            plans[i] = [
                # off-peak plan from 00:00 (wraps overnight)
                SignalPlan(cycle, ns_red, offset, start_second_of_day=0.0),
                # morning peak 07:00–10:00
                SignalPlan(peak_cycle, peak_red, offset, start_second_of_day=7 * 3600.0),
                SignalPlan(cycle, ns_red, offset, start_second_of_day=10 * 3600.0),
                # evening peak 17:00–20:00
                SignalPlan(peak_cycle, peak_red, offset, start_second_of_day=17 * 3600.0),
                SignalPlan(cycle, ns_red, offset, start_second_of_day=20 * 3600.0),
            ]
        else:
            plans[i] = [SignalPlan(cycle, ns_red, offset)]
    return plans


def _build_network(frame: LocalFrame) -> RoadNetwork:
    """Nine four-leg crossroads at the Table II coordinates."""
    intersections: List[Intersection] = []
    segments: List[Segment] = []
    # signalized cores first: ids 0..8 match TABLE2 order
    for i, row in enumerate(TABLE2):
        x, y = frame.to_local(row.lon, row.lat)
        intersections.append(
            Intersection(id=i, x=float(x), y=float(y), signalized=True, name=row.name)
        )
    # four unsignalized feeder nodes per core
    offsets = {
        "S": (0.0, -APPROACH_LENGTH_M),
        "N": (0.0, APPROACH_LENGTH_M),
        "W": (-APPROACH_LENGTH_M, 0.0),
        "E": (APPROACH_LENGTH_M, 0.0),
    }
    for i, _row in enumerate(TABLE2):
        core = intersections[i]
        for leg, (dx, dy) in offsets.items():
            feeder = Intersection(
                id=len(intersections),
                x=core.x + dx,
                y=core.y + dy,
                signalized=False,
                name=f"{core.name}/{leg}",
            )
            intersections.append(feeder)
            # inbound approach (controlled by the core's light) and the
            # outbound leg (uncontrolled).
            segments.append(
                Segment(
                    id=len(segments), from_id=feeder.id, to_id=core.id,
                    ax=feeder.x, ay=feeder.y, bx=core.x, by=core.y,
                    name=f"{core.name} {leg}-approach",
                )
            )
            segments.append(
                Segment(
                    id=len(segments), from_id=core.id, to_id=feeder.id,
                    ax=core.x, ay=core.y, bx=feeder.x, by=feeder.y,
                    name=f"{core.name} {leg}-exit",
                )
            )
    return RoadNetwork(intersections, segments, frame=frame)


@dataclass
class ShenzhenScenario:
    """A fully-instantiated Table II evaluation city.

    Attributes
    ----------
    net, signals:
        Road network and ground-truth controllers.
    rate_per_segment:
        Vehicle arrival rate per approach segment.
    plans:
        Ground-truth signal plans per intersection id (0-based; index
        ``i`` is Table II row ``i+1``).
    """

    net: RoadNetwork
    signals: Dict[int, IntersectionSignals]
    rate_per_segment: Dict[int, float]
    plans: Dict[int, List[SignalPlan]]

    def simulation(
        self,
        config: Optional[ApproachConfig] = None,
        hourly_profile=None,
    ) -> CitySimulation:
        """A ready-to-run city simulation over the scenario."""
        if config is None:
            config = ApproachConfig(segment_length_m=APPROACH_LENGTH_M)
        return CitySimulation(
            self.net,
            self.signals,
            self.rate_per_segment,
            config=config,
            hourly_profile=hourly_profile,
        )

    def truth_at(self, intersection_id: int, approach: str, t: float):
        """Ground-truth schedule of one light at absolute time ``t``."""
        return self.signals[intersection_id].schedule_at(approach, t)

    def intersection_rate(self, intersection_id: int) -> float:
        """Total vehicle arrivals/hour feeding one intersection."""
        return sum(
            r
            for sid, r in self.rate_per_segment.items()
            if self.net.segments[sid].to_id == intersection_id
        )


def shenzhen_scenario(seed: int = 20160314) -> ShenzhenScenario:
    """Build the canonical Table II scenario (deterministic per seed)."""
    rng = as_rng(seed)
    frame = LocalFrame()
    net = _build_network(frame)
    plans = _signal_plans(rng)
    signals = attach_signals_to_network(net, plans)

    rate_per_segment: Dict[int, float] = {}
    for i, row in enumerate(TABLE2):
        vehicles_per_hour = row.records_per_hour / _REPORTS_PER_VEHICLE
        per_approach = vehicles_per_hour / 4.0
        for seg in net.incoming(i):
            rate_per_segment[seg.id] = per_approach
    return ShenzhenScenario(
        net=net, signals=signals, rate_per_segment=rate_per_segment, plans=plans
    )
