"""Small fast scenarios for tests, examples and quick experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .._util import as_rng
from ..lights.intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
)
from ..network.roadnet import RoadNetwork, grid_network
from ..sim.engine import CitySimulation
from ..sim.queueing import ApproachConfig

__all__ = ["SmallScenario", "small_scenario"]


@dataclass
class SmallScenario:
    """A 2×2 signalized grid with known static plans.

    Small enough to simulate a couple of hours in seconds, yet it
    exercises every pipeline stage (two approach groups per light,
    perpendicular enhancement, stop statistics).
    """

    net: RoadNetwork
    signals: Dict[int, IntersectionSignals]
    rate_per_segment: Dict[int, float]
    plans: Dict[int, List[SignalPlan]]

    def simulation(
        self, config: Optional[ApproachConfig] = None
    ) -> CitySimulation:
        """A ready-to-run city simulation."""
        return CitySimulation(
            self.net,
            self.signals,
            self.rate_per_segment,
            config=config or ApproachConfig(segment_length_m=400.0),
        )

    def truth_at(self, intersection_id: int, approach: str, t: float):
        """Ground-truth schedule of one light at absolute time ``t``."""
        return self.signals[intersection_id].schedule_at(approach, t)


def small_scenario(
    *,
    cycle_s: float = 98.0,
    ns_red_s: float = 39.0,
    rate_per_hour: float = 400.0,
    spacing_m: float = 500.0,
    seed: int = 0,
) -> SmallScenario:
    """Build the canonical small test city.

    Every intersection runs the same (cycle, red) with staggered
    offsets, so tests know the exact ground truth of all eight lights.
    """
    rng = as_rng(seed)
    net = grid_network(2, 2, spacing_m)
    plans = {
        node.id: [
            SignalPlan(
                cycle_s=cycle_s,
                ns_red_s=ns_red_s,
                offset_s=float(rng.uniform(0.0, cycle_s)),
            )
        ]
        for node in net.signalized_intersections()
    }
    signals = attach_signals_to_network(net, plans)
    rates = {seg.id: rate_per_hour for seg in net.segments}
    return SmallScenario(
        net=net, signals=signals, rate_per_segment=rates, plans=plans
    )
