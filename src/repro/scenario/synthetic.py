"""Analytic per-light synthetic partitions for streaming tests and benches.

The canned scenarios (:mod:`repro.scenario.small`) exercise the whole
stack — simulation, trace sampling, map matching — which makes them the
right fixture for end-to-end parity but an expensive and inflexible one
for streaming workloads: there is no way to make taxi coverage *bursty*
(one light group reporting per minute) without rewriting the fleet
model.  This module builds :class:`~repro.matching.partition.LightPartition`
objects directly from a closed-form visit model:

* each **visit** is one taxi approaching the stop line at constant
  speed, waiting out the remaining red if it arrives on red (several
  consecutive near-zero-speed reports at the stop line — genuine stop
  events for §VI.A), and departing at the green onset;
* reports are sampled every ~15–25 s with a continuous-uniform phase
  per visit, so report timestamps are almost surely unique per light —
  the precondition under which chunked replay is bit-for-bit
  order-independent (see ``PartitionStore.append_partitions``);
* per-light **active windows** restrict when visits may arrive, which
  is how the streaming bench gets rotating bursty coverage.

Every estimator stage succeeds on these partitions at moderate rates:
the speed signal near the stop line is strongly periodic (cycle DFT),
waits produce ≥5 stop durations per window (red estimation), and the
phase window holds dozens of samples (superposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._util import as_rng, seed_sequence_for
from ..matching.partition import LightKey, LightPartition
from ..network.geometry import LocalFrame
from ..network.roadnet import Approach
from ..trace.records import TraceArrays

__all__ = ["SyntheticLight", "synthetic_lights", "synthetic_partitions"]

#: Time window type: (start_s, end_s) half-open.
Window = Tuple[float, float]


@dataclass(frozen=True)
class SyntheticLight:
    """One signal head group with a fixed-time plan (optionally switching).

    ``red_at``/``params_at`` define the ground truth: the light is red
    during ``[offset_s + k*cycle_s, offset_s + k*cycle_s + red_s)``.
    With ``switch_at_s`` set, a second plan ``(cycle2_s, red2_s)`` takes
    over from that instant, anchored there — the scheduling change the
    online monitor is supposed to catch.
    """

    intersection_id: int
    approach: str
    cycle_s: float
    red_s: float
    offset_s: float
    switch_at_s: Optional[float] = None
    cycle2_s: float = 0.0
    red2_s: float = 0.0

    @property
    def key(self) -> LightKey:
        return (self.intersection_id, self.approach)

    def params_at(self, t: float) -> Tuple[float, float, float]:
        """(cycle_s, red_s, offset_s) of the plan in force at ``t``."""
        if self.switch_at_s is not None and t >= self.switch_at_s:
            return self.cycle2_s, self.red2_s, self.switch_at_s
        return self.cycle_s, self.red_s, self.offset_s

    def red_remaining(self, t: float) -> float:
        """Seconds of red left at ``t`` (0.0 when the light is green)."""
        cycle_s, red_s, offset_s = self.params_at(t)
        phase = (t - offset_s) % cycle_s
        return red_s - phase if phase < red_s else 0.0


def synthetic_lights(
    n_intersections: int,
    *,
    seed: int = 0,
    switch_at_s: Optional[float] = None,
    switch_factor: float = 1.25,
) -> List[SyntheticLight]:
    """Two complementary lights (NS red = EW green) per intersection.

    Cycle lengths spread over ~[62, 128] s — comfortably inside the
    identifiable band — and every intersection gets a random phase
    offset.  With ``switch_at_s``, every light switches to a plan with
    the cycle scaled by ``switch_factor`` at that instant.
    """
    rng = as_rng(seed_sequence_for(seed, 0xC1))
    out: List[SyntheticLight] = []
    for iid in range(n_intersections):
        cycle_s = float(62.0 + 6.0 * (iid % 12))
        red_ns = float(np.round(cycle_s * rng.uniform(0.38, 0.52), 1))
        offset = float(rng.uniform(0.0, cycle_s))
        cycle2 = float(np.round(cycle_s * switch_factor, 1))
        for approach, red_s, off in (
            (Approach.NS, red_ns, offset),
            (Approach.EW, cycle_s - red_ns, offset + red_ns),
        ):
            ratio = red_s / cycle_s
            out.append(
                SyntheticLight(
                    intersection_id=iid,
                    approach=approach,
                    cycle_s=cycle_s,
                    red_s=red_s,
                    offset_s=off,
                    switch_at_s=switch_at_s,
                    cycle2_s=cycle2,
                    red2_s=float(np.round(cycle2 * ratio, 1)),
                )
            )
    return out


def _visit_arrivals(
    rng: np.random.Generator, windows: Sequence[Window], rate_per_hour: float
) -> np.ndarray:
    """Poisson visit arrival times over a union of active windows."""
    times: List[np.ndarray] = []
    for lo, hi in windows:
        span = max(float(hi) - float(lo), 0.0)
        n = int(rng.poisson(rate_per_hour / 3600.0 * span))
        if n:
            times.append(rng.uniform(lo, hi, size=n))
    if not times:
        return np.empty(0)
    return np.sort(np.concatenate(times))


def synthetic_partitions(
    lights: Sequence[SyntheticLight],
    t0: float,
    t1: float,
    *,
    rate_per_hour: float = 240.0,
    report_interval_s: float = 18.0,
    seed: int = 0,
    active: Optional[Mapping[LightKey, Sequence[Window]]] = None,
    frame: Optional[LocalFrame] = None,
) -> Dict[LightKey, LightPartition]:
    """Generate per-light partitions from the closed-form visit model.

    Parameters
    ----------
    lights:
        The ground-truth plans (see :func:`synthetic_lights`).
    t0, t1:
        Reports are restricted to ``[t0, t1)``.
    rate_per_hour:
        Visit arrival rate per light *per hour of active time*.
    report_interval_s:
        Mean report spacing; each visit jitters its own spacing ±20 %.
    active:
        Optional per-light active windows (visits arrive only inside
        them); missing keys / ``None`` mean the full ``[t0, t1)`` span.
    """
    frame = frame if frame is not None else LocalFrame()
    out: Dict[LightKey, LightPartition] = {}
    for light in lights:
        iid, approach = light.key
        code = 0 if approach == Approach.NS else 1
        rng = as_rng(seed_sequence_for(seed, iid, code))
        windows = (active or {}).get(light.key) or [(t0, t1)]
        arrivals = _visit_arrivals(rng, windows, rate_per_hour)

        ts: List[np.ndarray] = []
        dists: List[np.ndarray] = []
        speeds: List[np.ndarray] = []
        tids: List[np.ndarray] = []
        for visit, t_arr in enumerate(arrivals):
            depth_m = float(rng.uniform(250.0, 420.0))
            v_ms = float(rng.uniform(8.0, 13.0))
            dt_r = float(report_interval_s * rng.uniform(0.8, 1.2))
            t_cross = t_arr + depth_m / v_ms
            depart = t_cross + light.red_remaining(t_cross)
            t_rep = t_arr + rng.uniform(0.0, dt_r) + dt_r * np.arange(
                int((depart - t_arr) / dt_r) + 1
            )
            t_rep = t_rep[(t_rep < depart) & (t_rep >= t0) & (t_rep < t1)]
            if t_rep.size == 0:
                continue
            moving = t_rep < t_cross
            dist = np.where(moving, depth_m - v_ms * (t_rep - t_arr), 0.0)
            speed = np.where(moving, v_ms * 3.6, 0.0)
            ts.append(t_rep)
            dists.append(dist)
            speeds.append(speed)
            tids.append(np.full(t_rep.shape[0], visit + 1, dtype=np.int64))

        if ts:
            t_all = np.concatenate(ts)
            d_all = np.concatenate(dists)
            v_all = np.concatenate(speeds)
            id_all = np.concatenate(tids)
        else:
            t_all = d_all = v_all = np.empty(0)
            id_all = np.empty(0, dtype=np.int64)

        # Lay the approach along one axis of a 500 m grid; ~1.5 m GPS
        # noise keeps stationary displacement far under the 20 m
        # stop-extraction threshold while avoiding bit-identical fixes.
        cx, cy = 500.0 * (iid % 8), 500.0 * (iid // 8)
        gps = rng.normal(0.0, 1.5, size=(2, t_all.shape[0]))
        if approach == Approach.NS:
            x = cx + gps[0]
            y = cy - d_all + gps[1]
            heading = 0.0
        else:
            x = cx - d_all + gps[0]
            y = cy + gps[1]
            heading = 90.0
        lon, lat = frame.to_geographic(x, y)

        order = np.argsort(t_all, kind="stable")
        trace = TraceArrays(
            taxi_id=id_all[order],
            t=t_all[order],
            lon=np.asarray(lon)[order],
            lat=np.asarray(lat)[order],
            speed_kmh=v_all[order],
            heading_deg=np.full(t_all.shape[0], heading),
        )
        out[light.key] = LightPartition(
            intersection_id=iid,
            approach=approach,
            trace=trace,
            segment_id=np.full(t_all.shape[0], iid * 2 + code, dtype=np.int64),
            dist_to_stopline_m=d_all[order],
        )
    return out
