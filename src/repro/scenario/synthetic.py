"""Analytic per-light synthetic partitions for streaming tests and benches.

The canned scenarios (:mod:`repro.scenario.small`) exercise the whole
stack — simulation, trace sampling, map matching — which makes them the
right fixture for end-to-end parity but an expensive and inflexible one
for streaming workloads: there is no way to make taxi coverage *bursty*
(one light group reporting per minute) without rewriting the fleet
model.  This module builds :class:`~repro.matching.partition.LightPartition`
objects directly from a closed-form visit model:

* each **visit** is one taxi approaching the stop line at constant
  speed, waiting out the remaining red if it arrives on red (several
  consecutive near-zero-speed reports at the stop line — genuine stop
  events for §VI.A), and departing at the green onset;
* reports are sampled every ~15–25 s with a continuous-uniform phase
  per visit, so report timestamps are almost surely unique per light —
  the precondition under which chunked replay is bit-for-bit
  order-independent (see ``PartitionStore.append_partitions``);
* per-light **active windows** restrict when visits may arrive, which
  is how the streaming bench gets rotating bursty coverage.

Every estimator stage succeeds on these partitions at moderate rates:
the speed signal near the stop line is strongly periodic (cycle DFT),
waits produce ≥5 stop durations per window (red estimation), and the
phase window holds dozens of samples (superposition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .._util import as_rng, seed_sequence_for
from ..lights.controller import (
    ADAPTIVE_KINDS,
    ActuatedController,
    AdaptiveController,
    DemandSignal,
    FuzzyController,
    GapActuatedController,
    LightController,
)
from ..lights.schedule import LightSchedule
from ..matching.partition import LightKey, LightPartition
from ..network.geometry import LocalFrame
from ..network.roadnet import Approach
from ..trace.records import TraceArrays

__all__ = [
    "SyntheticLight",
    "AdaptiveSyntheticLight",
    "SinusoidalDemand",
    "synthetic_lights",
    "adaptive_synthetic_lights",
    "synthetic_partitions",
]

#: Time window type: (start_s, end_s) half-open.
Window = Tuple[float, float]


@dataclass(frozen=True)
class SyntheticLight:
    """One signal head group with a fixed-time plan (optionally switching).

    ``red_at``/``params_at`` define the ground truth: the light is red
    during ``[offset_s + k*cycle_s, offset_s + k*cycle_s + red_s)``.
    With ``switch_at_s`` set, a second plan ``(cycle2_s, red2_s)`` takes
    over from that instant, anchored there — the scheduling change the
    online monitor is supposed to catch.
    """

    intersection_id: int
    approach: str
    cycle_s: float
    red_s: float
    offset_s: float
    switch_at_s: Optional[float] = None
    cycle2_s: float = 0.0
    red2_s: float = 0.0

    @property
    def key(self) -> LightKey:
        return (self.intersection_id, self.approach)

    def params_at(self, t: float) -> Tuple[float, float, float]:
        """(cycle_s, red_s, offset_s) of the plan in force at ``t``."""
        if self.switch_at_s is not None and t >= self.switch_at_s:
            return self.cycle2_s, self.red2_s, self.switch_at_s
        return self.cycle_s, self.red_s, self.offset_s

    def red_remaining(self, t: float) -> float:
        """Seconds of red left at ``t`` (0.0 when the light is green)."""
        cycle_s, red_s, offset_s = self.params_at(t)
        phase = (t - offset_s) % cycle_s
        return red_s - phase if phase < red_s else 0.0


def synthetic_lights(
    n_intersections: int,
    *,
    seed: int = 0,
    switch_at_s: Optional[float] = None,
    switch_factor: float = 1.25,
) -> List[SyntheticLight]:
    """Two complementary lights (NS red = EW green) per intersection.

    Cycle lengths spread over ~[62, 128] s — comfortably inside the
    identifiable band — and every intersection gets a random phase
    offset.  With ``switch_at_s``, every light switches to a plan with
    the cycle scaled by ``switch_factor`` at that instant.
    """
    rng = as_rng(seed_sequence_for(seed, 0xC1))
    out: List[SyntheticLight] = []
    for iid in range(n_intersections):
        cycle_s = float(62.0 + 6.0 * (iid % 12))
        red_ns = float(np.round(cycle_s * rng.uniform(0.38, 0.52), 1))
        offset = float(rng.uniform(0.0, cycle_s))
        cycle2 = float(np.round(cycle_s * switch_factor, 1))
        for approach, red_s, off in (
            (Approach.NS, red_ns, offset),
            (Approach.EW, cycle_s - red_ns, offset + red_ns),
        ):
            ratio = red_s / cycle_s
            out.append(
                SyntheticLight(
                    intersection_id=iid,
                    approach=approach,
                    cycle_s=cycle_s,
                    red_s=red_s,
                    offset_s=off,
                    switch_at_s=switch_at_s,
                    cycle2_s=cycle2,
                    red2_s=float(np.round(cycle2 * ratio, 1)),
                )
            )
    return out


@dataclass(frozen=True)
class SinusoidalDemand:
    """Closed-form diurnal demand profile (deterministic, picklable).

    Demand level swings sinusoidally around 1.0 with relative
    ``amplitude`` and period ``period_s``; the observed queue scales
    with the level and the mean headway scales inversely.  Being a pure
    function of the window midpoint, the same profile yields identical
    controller realizations in every process — the property the
    cross-backend parity and golden suites rely on.
    """

    base_queue: float = 6.0
    base_headway_s: float = 8.0
    amplitude: float = 0.8
    period_s: float = 1500.0
    phase_s: float = 0.0

    def __call__(self, t0: float, t1: float) -> DemandSignal:
        mid = 0.5 * (float(t0) + float(t1))
        level = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (mid + self.phase_s) / self.period_s
        )
        level = max(level, 0.05)
        return DemandSignal(
            queue_len=self.base_queue * level,
            headway_s=self.base_headway_s / level,
        )


@dataclass(frozen=True)
class AdaptiveSyntheticLight:
    """Ground truth for one demand-responsive light.

    A controller-backed twin of :class:`SyntheticLight`, interchangeable
    wherever only ``key`` and ``red_remaining`` are consumed — which is
    all :func:`synthetic_partitions` needs, so adaptive traces flow
    through the identical visit model (and identical RNG draws: no draw
    count depends on the departure time).
    """

    intersection_id: int
    approach: str
    controller: LightController

    @property
    def key(self) -> LightKey:
        return (self.intersection_id, self.approach)

    def red_remaining(self, t: float) -> float:
        """Seconds of red left at ``t`` (0.0 when the light is green)."""
        return self.controller.wait_if_arriving(t)

    def true_schedule(self, t: float) -> LightSchedule:
        """The effective (realized) schedule in force at ``t`` — the
        ground truth the frontier eval scores estimates against."""
        return self.controller.schedule_at(t)


def _make_adaptive(
    kind: str,
    base: LightSchedule,
    *,
    alpha: float,
    demand: SinusoidalDemand,
    base2: Optional[LightSchedule],
    switch_at_s: Optional[float],
) -> AdaptiveController:
    # Response magnitudes scale with the base green so every light in a
    # mixed-cycle city sweeps a comparable relative range.
    if kind == "actuated":
        return ActuatedController(
            base, alpha=alpha, demand=demand, base2=base2, switch_at_s=switch_at_s,
            queue_threshold=2.0, extension_per_vehicle_s=2.0,
        )
    if kind == "gap":
        return GapActuatedController(
            base, alpha=alpha, demand=demand, base2=base2, switch_at_s=switch_at_s,
            gap_s=6.0, unit_extension_s=0.25 * base.green_s,
        )
    if kind == "fuzzy":
        return FuzzyController(
            base, alpha=alpha, demand=demand, base2=base2, switch_at_s=switch_at_s,
            max_adjust_s=0.4 * base.green_s,
        )
    raise ValueError(f"unknown adaptive controller kind {kind!r}; expected one of {ADAPTIVE_KINDS}")


def adaptive_synthetic_lights(
    n_intersections: int,
    *,
    alpha: float,
    kind: str = "gap",
    seed: int = 0,
    switch_at_s: Optional[float] = None,
    switch_factor: float = 1.25,
    demand_period_s: float = 1500.0,
) -> List[AdaptiveSyntheticLight]:
    """Adaptive twins of :func:`synthetic_lights`.

    Same base plans (identical seed and RNG draws), each wrapped in a
    demand-responsive controller of ``kind`` driven by a closed-form
    :class:`SinusoidalDemand` profile (phase-shifted per light), with
    responsiveness ``alpha``: 0 reproduces the fixed plan bit-for-bit,
    1 is fully demand-driven.  With ``switch_at_s`` the programmed
    second plan takes over under adaptation at the first cycle boundary
    at or after that instant (a cycle-quantized — not mid-cycle —
    switch, unlike the fixed-plan twin).
    """
    fixed = synthetic_lights(
        n_intersections, seed=seed, switch_at_s=switch_at_s, switch_factor=switch_factor
    )
    out: List[AdaptiveSyntheticLight] = []
    for lt in fixed:
        base = LightSchedule(cycle_s=lt.cycle_s, red_s=lt.red_s, offset_s=lt.offset_s)
        base2 = None
        if lt.switch_at_s is not None:
            base2 = LightSchedule(cycle_s=lt.cycle2_s, red_s=lt.red2_s, offset_s=lt.switch_at_s)
        code = 0 if lt.approach == Approach.NS else 1
        demand = SinusoidalDemand(
            period_s=demand_period_s,
            phase_s=137.0 * lt.intersection_id + 411.0 * code,
        )
        controller = _make_adaptive(
            kind, base, alpha=alpha, demand=demand, base2=base2, switch_at_s=lt.switch_at_s
        )
        out.append(
            AdaptiveSyntheticLight(
                intersection_id=lt.intersection_id,
                approach=lt.approach,
                controller=controller,
            )
        )
    return out


#: Anything :func:`synthetic_partitions` can generate traces for.
SyntheticLightLike = Union[SyntheticLight, AdaptiveSyntheticLight]


def _visit_arrivals(
    rng: np.random.Generator, windows: Sequence[Window], rate_per_hour: float
) -> np.ndarray:
    """Poisson visit arrival times over a union of active windows."""
    times: List[np.ndarray] = []
    for lo, hi in windows:
        span = max(float(hi) - float(lo), 0.0)
        n = int(rng.poisson(rate_per_hour / 3600.0 * span))
        if n:
            times.append(rng.uniform(lo, hi, size=n))
    if not times:
        return np.empty(0)
    return np.sort(np.concatenate(times))


def synthetic_partitions(
    lights: Sequence[SyntheticLightLike],
    t0: float,
    t1: float,
    *,
    rate_per_hour: float = 240.0,
    report_interval_s: float = 18.0,
    seed: int = 0,
    active: Optional[Mapping[LightKey, Sequence[Window]]] = None,
    frame: Optional[LocalFrame] = None,
) -> Dict[LightKey, LightPartition]:
    """Generate per-light partitions from the closed-form visit model.

    Parameters
    ----------
    lights:
        The ground-truth plans (see :func:`synthetic_lights`), fixed or
        adaptive (:func:`adaptive_synthetic_lights`) — only ``key`` and
        ``red_remaining`` are consumed.
    t0, t1:
        Reports are restricted to ``[t0, t1)``.
    rate_per_hour:
        Visit arrival rate per light *per hour of active time*.
    report_interval_s:
        Mean report spacing; each visit jitters its own spacing ±20 %.
    active:
        Optional per-light active windows (visits arrive only inside
        them); missing keys / ``None`` mean the full ``[t0, t1)`` span.
    """
    frame = frame if frame is not None else LocalFrame()
    out: Dict[LightKey, LightPartition] = {}
    for light in lights:
        iid, approach = light.key
        code = 0 if approach == Approach.NS else 1
        rng = as_rng(seed_sequence_for(seed, iid, code))
        windows = (active or {}).get(light.key) or [(t0, t1)]
        arrivals = _visit_arrivals(rng, windows, rate_per_hour)

        ts: List[np.ndarray] = []
        dists: List[np.ndarray] = []
        speeds: List[np.ndarray] = []
        tids: List[np.ndarray] = []
        for visit, t_arr in enumerate(arrivals):
            depth_m = float(rng.uniform(250.0, 420.0))
            v_ms = float(rng.uniform(8.0, 13.0))
            dt_r = float(report_interval_s * rng.uniform(0.8, 1.2))
            t_cross = t_arr + depth_m / v_ms
            depart = t_cross + light.red_remaining(t_cross)
            t_rep = t_arr + rng.uniform(0.0, dt_r) + dt_r * np.arange(
                int((depart - t_arr) / dt_r) + 1
            )
            t_rep = t_rep[(t_rep < depart) & (t_rep >= t0) & (t_rep < t1)]
            if t_rep.size == 0:
                continue
            moving = t_rep < t_cross
            dist = np.where(moving, depth_m - v_ms * (t_rep - t_arr), 0.0)
            speed = np.where(moving, v_ms * 3.6, 0.0)
            ts.append(t_rep)
            dists.append(dist)
            speeds.append(speed)
            tids.append(np.full(t_rep.shape[0], visit + 1, dtype=np.int64))

        if ts:
            t_all = np.concatenate(ts)
            d_all = np.concatenate(dists)
            v_all = np.concatenate(speeds)
            id_all = np.concatenate(tids)
        else:
            t_all = d_all = v_all = np.empty(0)
            id_all = np.empty(0, dtype=np.int64)

        # Lay the approach along one axis of a 500 m grid; ~1.5 m GPS
        # noise keeps stationary displacement far under the 20 m
        # stop-extraction threshold while avoiding bit-identical fixes.
        cx, cy = 500.0 * (iid % 8), 500.0 * (iid // 8)
        gps = rng.normal(0.0, 1.5, size=(2, t_all.shape[0]))
        if approach == Approach.NS:
            x = cx + gps[0]
            y = cy - d_all + gps[1]
            heading = 0.0
        else:
            x = cx - d_all + gps[0]
            y = cy + gps[1]
            heading = 90.0
        lon, lat = frame.to_geographic(x, y)

        order = np.argsort(t_all, kind="stable")
        trace = TraceArrays(
            taxi_id=id_all[order],
            t=t_all[order],
            lon=np.asarray(lon)[order],
            lat=np.asarray(lat)[order],
            speed_kmh=v_all[order],
            heading_deg=np.full(t_all.shape[0], heading),
        )
        out[light.key] = LightPartition(
            intersection_id=iid,
            approach=approach,
            trace=trace,
            segment_id=np.full(t_all.shape[0], iid * 2 + code, dtype=np.int64),
            dist_to_stopline_m=d_all[order],
        )
    return out
