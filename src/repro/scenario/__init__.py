"""Canned scenarios: the Table II Shenzhen-like city and fast test grids."""

from .shenzhen import TABLE2, ShenzhenScenario, Table2Row, shenzhen_scenario
from .small import SmallScenario, small_scenario
from .synthetic import (
    AdaptiveSyntheticLight,
    SinusoidalDemand,
    SyntheticLight,
    adaptive_synthetic_lights,
    synthetic_lights,
    synthetic_partitions,
)

__all__ = [
    "TABLE2",
    "ShenzhenScenario",
    "Table2Row",
    "shenzhen_scenario",
    "SmallScenario",
    "small_scenario",
    "AdaptiveSyntheticLight",
    "SinusoidalDemand",
    "SyntheticLight",
    "adaptive_synthetic_lights",
    "synthetic_lights",
    "synthetic_partitions",
]
