"""Command-line interface.

Four subcommands cover the pipeline end-to-end without writing Python:

* ``repro simulate`` — build a scenario, simulate taxi traffic, write
  the raw Table I trace and the network (+ ground-truth plans) JSON;
* ``repro stats`` — Fig. 2-style characterization of a trace file;
* ``repro identify`` — identify every light at a time point from a
  trace + network pair, optionally scored against stored ground truth;
* ``repro evaluate`` — the full §VIII.A sweep: identify every light at
  several time spots and print the error statistics vs ground truth;
* ``repro monitor`` — §VII continuous cycle monitoring of one light,
  with outlier repair and plan-change detection;
* ``repro stream`` — replay a trace chunk-by-chunk through the
  incremental backend, printing per-chunk dirty/refresh accounting and
  online plan-change detections;
* ``repro serve-bench`` — load the multi-tenant async serving layer
  with interleaved ingests and advisory queries across N synthetic
  city tenants, audit snapshot isolation, and check the reader-latency
  SLOs (non-zero exit on violation);
* ``repro frontier`` — sweep the responsiveness of adaptive
  (demand-responsive) signal controllers and print the
  identifiability-frontier curve: cycle-estimate error, changepoint
  false-alarm/miss rates, and monitor lag vs adaptivity (non-zero exit
  if the fixed-plan anchor or cross-backend parity fails);
* ``repro navigate`` — run the Fig. 16 navigation comparison.

Example session::

    repro simulate --scenario small --hours 1.5 --out /tmp/city
    repro stats /tmp/city.trace.txt
    repro identify --city /tmp/city --at 5400
    repro navigate --cols 6 --rows 6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Traffic-light scheduling identification from taxi traces "
                    "(reproduction of He et al., ICPP 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a city and write its trace")
    sim.add_argument("--scenario", choices=("small", "shenzhen"), default="small")
    sim.add_argument("--hours", type=float, default=1.5, help="simulated duration")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--out", required=True,
                     help="output prefix; writes <out>.trace.txt and <out>.net.json")

    st = sub.add_parser("stats", help="Fig. 2 statistics of a trace file")
    st.add_argument("trace", help="path to a Table I trace file")

    ident = sub.add_parser("identify", help="identify all lights at a time point")
    ident.add_argument("--city", required=True,
                       help="prefix written by `repro simulate`")
    ident.add_argument("--at", type=float, required=True,
                       help="identification time (simulation seconds)")
    ident.add_argument("--window", type=float, default=1800.0,
                       help="analysis window length, seconds")
    ident.add_argument("--serial", action="store_true",
                       help="disable the process pool")
    ident.add_argument("--backend",
                       choices=("serial", "process", "batched", "stream",
                                "shard"),
                       default=None,
                       help="execution backend (overrides --serial); "
                            "'batched' runs the whole city through shared "
                            "vectorized kernels, 'stream' goes through the "
                            "incremental subsystem (one-shot here; see "
                            "`repro stream` for chunked replay), 'shard' "
                            "fans the batched kernels out over a process "
                            "pool via a zero-copy mmap-backed column store")
    ident.add_argument("--workers", type=int, default=None,
                       help="worker processes for the pooled backends "
                            "(default: available CPUs, capped at 8)")
    ident.add_argument("--report", metavar="PATH", default=None,
                       help="write the RunReport JSON (stage wall times, "
                            "counters, failure taxonomy) to PATH")

    ev = sub.add_parser("evaluate", help="error statistics vs stored ground truth")
    ev.add_argument("--city", required=True,
                    help="prefix written by `repro simulate` (plans required)")
    ev.add_argument("--times", type=float, nargs="+", required=True,
                    help="identification time spots (simulation seconds)")
    ev.add_argument("--serial", action="store_true")
    ev.add_argument("--backend",
                    choices=("serial", "process", "batched", "stream",
                             "shard"),
                    default=None,
                    help="execution backend (overrides --serial)")
    ev.add_argument("--workers", type=int, default=None,
                    help="worker processes for the pooled backends")
    ev.add_argument("--report", metavar="PATH", default=None,
                    help="write the RunReport JSON aggregated over all "
                         "time spots to PATH")

    mon = sub.add_parser("monitor", help="continuous cycle monitoring of one light")
    mon.add_argument("--city", required=True)
    mon.add_argument("--light", required=True,
                     help="intersection:approach, e.g. 0:NS")
    mon.add_argument("--every", type=float, default=300.0)
    mon.add_argument("--window", type=float, default=1800.0)

    strm = sub.add_parser(
        "stream", help="replay a trace through the incremental backend"
    )
    strm.add_argument("--city", required=True,
                      help="prefix written by `repro simulate`")
    strm.add_argument("--chunk", type=float, default=300.0,
                      help="replay chunk length, seconds")
    strm.add_argument("--window", type=float, default=1800.0,
                      help="analysis window length, seconds")
    strm.add_argument("--backend", choices=("batched", "shard"),
                      default="batched",
                      help="how stale lights are re-identified per chunk: "
                           "in-process batched kernels (default) or the "
                           "zero-copy sharded process fan-out")
    strm.add_argument("--workers", type=int, default=None,
                      help="worker processes for the shard backend")
    strm.add_argument("--report", metavar="PATH", default=None,
                      help="write the RunReport JSON (incl. per-chunk "
                           "ingest stats) to PATH")

    srv = sub.add_parser(
        "serve-bench",
        help="latency-SLO load run of the multi-tenant serving layer",
    )
    srv.add_argument("--tenants", type=int, default=8,
                     help="concurrent city tenants")
    srv.add_argument("--chunks", type=int, default=24,
                     help="replay chunks per tenant")
    srv.add_argument("--intersections", type=int, default=4,
                     help="intersections per tenant (2 lights each)")
    srv.add_argument("--evaluates-per-chunk", type=int, default=6,
                     help="SLO-timed advisory queries per published version")
    srv.add_argument("--queue-depth", type=int, default=8,
                     help="bounded ingest queue capacity per tenant")
    srv.add_argument("--seed", type=int, default=7)
    srv.add_argument("--p50-slo-ms", type=float, default=5.0,
                     help="advisory-read p50 SLO, milliseconds")
    srv.add_argument("--p99-slo-ms", type=float, default=50.0,
                     help="advisory-read p99 SLO, milliseconds")
    srv.add_argument("--json", metavar="PATH", default=None,
                     help="write the measured numbers as JSON to PATH")
    srv.add_argument("--report", metavar="PATH", default=None,
                     help="write the RunReport JSON (one ServiceStats "
                          "per tenant) to PATH")

    fr = sub.add_parser(
        "frontier",
        help="identifiability frontier of adaptive (demand-responsive) signals",
    )
    fr.add_argument("--kind", choices=("actuated", "gap", "fuzzy"), default="gap",
                    help="adaptive controller kind driving the scenario")
    fr.add_argument("--alphas", type=float, nargs="+", default=None,
                    help="responsiveness sweep, each in [0, 1] "
                         "(0 = fixed plan, 1 = fully demand-driven)")
    fr.add_argument("--intersections", type=int, default=4,
                    help="intersections in the synthetic city (2 lights each)")
    fr.add_argument("--horizon", type=float, default=9000.0,
                    help="trace horizon, seconds")
    fr.add_argument("--seed", type=int, default=0)
    fr.add_argument("--backends", nargs="+", default=None,
                    choices=("serial", "process", "batched", "stream", "shard"),
                    help="identification backends to cross-check bit-for-bit")
    fr.add_argument("--json", metavar="PATH", default=None,
                    help="write the frontier curve as JSON to PATH")

    nav = sub.add_parser("navigate", help="Fig. 16 navigation comparison")
    nav.add_argument("--cols", type=int, default=6)
    nav.add_argument("--rows", type=int, default=6)
    nav.add_argument("--trips", type=int, default=12)
    nav.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_simulate(args) -> int:
    from .eval import simulate_and_partition
    from .network.serialization import save_network
    from .scenario import shenzhen_scenario, small_scenario
    from .trace import write_trace

    scn = shenzhen_scenario() if args.scenario == "shenzhen" else small_scenario()
    horizon = args.hours * 3600.0
    print(f"simulating {args.scenario} scenario for {args.hours:g} h "
          f"(seed {args.seed}) ...")
    trace, partitions = simulate_and_partition(scn, 0.0, horizon, seed=args.seed)

    trace_path = f"{args.out}.trace.txt"
    with open(trace_path, "w", encoding="utf-8") as fp:
        n = write_trace(trace, fp)
    net_path = f"{args.out}.net.json"
    with open(net_path, "w", encoding="utf-8") as fp:
        save_network(scn.net, fp, plans=scn.plans)
    print(f"wrote {n:,} records to {trace_path}")
    print(f"wrote network + ground-truth plans to {net_path}")
    print(f"partitions: {len(partitions)} lights")
    return 0


def _cmd_stats(args) -> int:
    from .network.geometry import LocalFrame
    from .trace import compute_statistics, read_trace

    with open(args.trace, encoding="utf-8") as fp:
        trace = read_trace(fp)
    stats = compute_statistics(trace, LocalFrame())
    print(f"records:              {stats.n_records:,}")
    print(f"taxis:                {stats.n_taxis:,}")
    print(f"records/minute:       {stats.records_per_minute:,.1f}")
    print(f"update interval:      {stats.mean_update_interval_s:.2f} s "
          f"± {stats.std_update_interval_s:.2f} (paper: 20.41 ± 20.54)")
    print(f"stationary updates:   {100 * stats.stationary_fraction:.1f}% "
          f"(paper: 42.66%)")
    print(f"moving update dist:   {stats.mean_moving_distance_m:.1f} m "
          f"(paper: 100.69 m)")
    print(f"speed differences:    N({stats.speed_diff_mean_kmh:.1f}, "
          f"{stats.speed_diff_std_kmh:.1f}) km/h (paper: N(0, 40))")
    return 0


def _cmd_identify(args) -> int:
    from ._util import circular_diff
    from .core import PipelineConfig, identify_many
    from .lights.intersection import attach_signals_to_network
    from .matching import match_trace, partition_by_light
    from .network.serialization import load_network
    from .obs import RunReport
    from .trace import read_trace

    with open(f"{args.city}.net.json", encoding="utf-8") as fp:
        net, plans = load_network(fp)
    with open(f"{args.city}.trace.txt", encoding="utf-8") as fp:
        trace = read_trace(fp)
    print(f"loaded {len(trace):,} records, "
          f"{len(net.signalized_intersections())} signalized intersections")

    partitions = partition_by_light(match_trace(trace, net), net)
    config = PipelineConfig(window_s=args.window)
    report = RunReport() if args.report else None
    estimates, failures = identify_many(
        partitions, args.at, config=config, serial=args.serial,
        backend=args.backend, max_workers=args.workers, report=report,
    )

    signals = attach_signals_to_network(net, plans) if plans else None
    print(f"\n{'light':<12} {'cycle':>8} {'red':>7} {'green':>7} "
          f"{'r2g@':>7}" + ("  vs ground truth" if signals else ""))
    for key in sorted(estimates):
        est = estimates[key]
        line = (f"{str(key):<12} {est.cycle_s:>7.1f}s {est.red_s:>6.1f}s "
                f"{est.green_s:>6.1f}s {est.schedule.red_to_green_in_cycle:>6.1f}s")
        if signals:
            iid, app = key
            gt = signals[iid].schedule_at(app, args.at)
            dc = est.cycle_s - gt.cycle_s
            dch = float(circular_diff(
                est.schedule.offset_s + est.schedule.red_s,
                gt.offset_s + gt.red_s, gt.cycle_s,
            ))
            line += f"   dCycle {dc:+.1f}s dChange {dch:+.1f}s"
        print(line)
    for key, failure in sorted(failures.items()):
        print(f"{str(key):<12} no estimate: {failure}")
    if report is not None:
        report.save(args.report)
        print(f"\nwrote run report to {args.report}")
        print(report.summary())
    return 0


def _cmd_evaluate(args) -> int:
    from .eval import evaluate_at_times, summarize_errors
    from .lights.intersection import attach_signals_to_network
    from .matching import match_trace, partition_by_light
    from .network.serialization import load_network
    from .obs import RunReport
    from .trace import read_trace

    with open(f"{args.city}.net.json", encoding="utf-8") as fp:
        net, plans = load_network(fp)
    if plans is None:
        print("error: the network file carries no ground-truth plans; "
              "re-run `repro simulate`")
        return 2
    with open(f"{args.city}.trace.txt", encoding="utf-8") as fp:
        trace = read_trace(fp)
    signals = attach_signals_to_network(net, plans)
    partitions = partition_by_light(match_trace(trace, net), net)

    def truth_fn(iid, app, t):
        return signals[iid].schedule_at(app, t)

    report = RunReport() if args.report else None
    result = evaluate_at_times(
        partitions, truth_fn, args.times, serial=args.serial,
        backend=args.backend, max_workers=args.workers, report=report,
    )
    print(f"samples: {len(result)}  (data-starved: {result.n_failures})")
    print(summarize_errors(result.cycle_errors, "cycle length "))
    print(summarize_errors(result.red_errors, "red duration "))
    print(summarize_errors(result.change_errors, "change time  "))
    locked = [s for s in result.samples
              if s.errors and abs(s.errors.cycle_s) <= 5.0]
    print(f"cycle-locked subset: {len(locked)} samples")
    print(summarize_errors([s.errors.red_s for s in locked], "red | locked "))
    print(summarize_errors([s.errors.change_s for s in locked], "chg | locked "))
    if report is not None:
        report.save(args.report)
        print(f"\nwrote run report to {args.report}")
        print(report.summary())
    return 0


def _cmd_monitor(args) -> int:
    from .core.monitor import detect_plan_changes, monitor_cycle, repair_outliers
    from .matching import match_trace, partition_by_light
    from .network.serialization import load_network
    from .trace import read_trace

    with open(f"{args.city}.net.json", encoding="utf-8") as fp:
        net, _plans = load_network(fp)
    with open(f"{args.city}.trace.txt", encoding="utf-8") as fp:
        trace = read_trace(fp)
    try:
        iid_s, app = args.light.split(":")
        key = (int(iid_s), app.upper())
    except ValueError:
        print(f"error: --light must look like 0:NS, got {args.light!r}")
        return 2
    partitions = partition_by_light(match_trace(trace, net), net)
    if key not in partitions:
        print(f"error: no records for light {key}; available: "
              f"{sorted(partitions)}")
        return 2
    p = partitions[key]
    t0, t1 = float(p.trace.t.min()), float(p.trace.t.max())
    series = monitor_cycle(p, t0, t1, every_s=args.every, window_s=args.window)
    repaired = repair_outliers(series)
    print(f"light {key}: {len(series)} windows, "
          f"{100 * series.valid_fraction():.0f}% valid")
    for t, c in zip(repaired.t, repaired.cycle_s):
        bar = "" if np.isnan(c) else "#" * int(np.clip(c / 5, 0, 60))
        val = "   ?" if np.isnan(c) else f"{c:4.0f}"
        print(f"  t={t:7.0f}s  cycle={val}s {bar}")
    for ch in detect_plan_changes(repaired):
        print(f"plan change at t={ch.at_time:.0f}s: "
              f"{ch.old_cycle_s:.0f}s -> {ch.new_cycle_s:.0f}s")
    return 0


def _cmd_stream(args) -> int:
    from .core import PipelineConfig
    from .lights.intersection import attach_signals_to_network
    from .matching import match_trace, partition_by_light
    from .network.serialization import load_network
    from .obs import RunReport
    from .stream import StreamSession, split_by_time
    from .trace import read_trace

    with open(f"{args.city}.net.json", encoding="utf-8") as fp:
        net, plans = load_network(fp)
    with open(f"{args.city}.trace.txt", encoding="utf-8") as fp:
        trace = read_trace(fp)
    partitions = partition_by_light(match_trace(trace, net), net)
    if not partitions:
        print("error: the trace matched no signalized lights")
        return 2
    t0 = min(float(p.trace.t.min()) for p in partitions.values())
    t1 = max(float(p.trace.t.max()) for p in partitions.values())
    edges = list(np.arange(t0, t1, args.chunk)) + [t1 + 1e-9]
    print(f"replaying {len(trace):,} records over {len(partitions)} lights "
          f"in {len(edges) - 1} chunks of {args.chunk:g}s")

    report = RunReport() if args.report else None
    session = StreamSession(
        config=PipelineConfig(window_s=args.window), report=report,
        backend=args.backend, max_workers=args.workers,
    )
    for chunk in split_by_time(partitions, edges):
        update = session.ingest(chunk)
        print(f"chunk {update.chunk_index:>3}  t={update.at_time:8.0f}s  "
              f"+{update.n_records:>6,} records  "
              f"touched {len(update.touched):>3}  "
              f"dirty {len(update.dirty):>3}  "
              f"estimates {len(update.estimates):>3}")
        for key, changes in sorted(update.plan_changes.items()):
            for ch in changes:
                print(f"    plan change {key}: t={ch.at_time:.0f}s "
                      f"{ch.old_cycle_s:.0f}s -> {ch.new_cycle_s:.0f}s")

    estimates, failures = session.evaluate(t1)
    signals = attach_signals_to_network(net, plans) if plans else None
    print(f"\nfinal estimates at t={t1:.0f}s "
          f"({len(estimates)} ok, {len(failures)} failed):")
    for key in sorted(estimates):
        est = estimates[key]
        line = (f"{str(key):<12} cycle {est.cycle_s:6.1f}s  "
                f"red {est.red_s:5.1f}s")
        if signals:
            gt = signals[key[0]].schedule_at(key[1], t1)
            line += f"   (true cycle {gt.cycle_s:.1f}s)"
        print(line)
    if report is not None:
        report.save(args.report)
        print(f"\nwrote run report to {args.report}")
        print(report.summary())
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    from .obs import RunReport
    from .serve import LoadSpec, run_load

    spec = LoadSpec(
        n_tenants=args.tenants,
        intersections_per_tenant=args.intersections,
        n_chunks=args.chunks,
        evaluates_per_chunk=args.evaluates_per_chunk,
        queue_depth=args.queue_depth,
        seed=args.seed,
    )
    print(f"loading {spec.n_tenants} tenants x {spec.n_chunks} chunks "
          f"({2 * spec.intersections_per_tenant} lights each, "
          f"{spec.evaluates_per_chunk} advisory queries per version) ...")
    report = RunReport() if args.report else None
    result = run_load(spec, report=report)
    print(result.summary())

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    if report is not None:
        report.save(args.report)
        print(f"wrote run report to {args.report}")

    failed = []
    if result.isolation_violations:
        failed.append(f"{result.isolation_violations} isolation violation(s)")
    if result.evaluate_p50_s > args.p50_slo_ms / 1e3:
        failed.append(
            f"p50 {1e3 * result.evaluate_p50_s:.3f} ms > "
            f"{args.p50_slo_ms:g} ms SLO"
        )
    if result.evaluate_p99_s > args.p99_slo_ms / 1e3:
        failed.append(
            f"p99 {1e3 * result.evaluate_p99_s:.3f} ms > "
            f"{args.p99_slo_ms:g} ms SLO"
        )
    if failed:
        print("SLO FAILED: " + "; ".join(failed))
        return 1
    print("SLOs met")
    return 0


def _cmd_frontier(args) -> int:
    import json

    from .eval import FrontierSpec, run_frontier

    kwargs = {}
    if args.alphas:
        kwargs["alphas"] = tuple(args.alphas)
    if args.backends:
        kwargs["backends"] = tuple(args.backends)
    spec = FrontierSpec(
        kind=args.kind,
        n_intersections=args.intersections,
        horizon_s=args.horizon,
        seed=args.seed,
        **kwargs,
    )
    print(f"sweeping alpha over {list(spec.alphas)} "
          f"({spec.n_intersections} intersections, kind={spec.kind}, "
          f"{spec.horizon_s / 3600.0:g} h horizon) ...")
    result = run_frontier(spec)
    print(result.summary())

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"wrote {args.json}")

    failed = []
    if result.fixed_plan_bitwise_match is False:
        failed.append("alpha=0 diverged bit-for-bit from the fixed-plan pipeline")
    mismatches = sum(p.backend_mismatches for p in result.points)
    if mismatches:
        failed.append(f"{mismatches} cross-backend mismatch(es)")
    if failed:
        print("FRONTIER FAILED: " + "; ".join(failed))
        return 1
    return 0


def _cmd_navigate(args) -> int:
    from .navigation import NavScenario, run_navigation_experiment

    buckets = run_navigation_experiment(
        NavScenario(n_cols=args.cols, n_rows=args.rows),
        trips_per_distance=args.trips,
        seed=args.seed,
    )
    print("distance   trips   baseline    light-aware   saving")
    for b in buckets:
        print("  " + b.row())
    overall = float(np.average(
        [b.saving_fraction for b in buckets],
        weights=[b.n_trips for b in buckets],
    ))
    print(f"overall saving: {100 * overall:.1f}%  (paper: ~15%)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "stats": _cmd_stats,
        "identify": _cmd_identify,
        "evaluate": _cmd_evaluate,
        "monitor": _cmd_monitor,
        "stream": _cmd_stream,
        "serve-bench": _cmd_serve_bench,
        "frontier": _cmd_frontier,
        "navigate": _cmd_navigate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
