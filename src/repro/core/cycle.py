"""Cycle-length identification in the frequency domain (§V).

The approach speed near a light is (noisily) periodic with the signal
cycle.  After 1 Hz regularization, a DFT of the window yields a
magnitude spectrum whose strongest in-band component is the light's
frequency; the cycle length follows as ``window_length / bin_index``
(Eq. 2 of the paper — e.g. 37 cycles in an hour → 3600/37 ≈ 97 s).

Two refinements beyond the paper's literal argmax (both ablatable):

* **candidate re-scoring** — take the top-K spectral peaks and keep the
  one whose *epoch-folded* profile is most significantly non-flat
  (a z-scored χ² statistic).  The DFT alone confuses genuine signal
  periodicity with slow queue-size drift; folding does not.
* **sub-bin refinement** — a 30-minute DFT quantizes the period to
  ``1800/k`` seconds; a fine folding scan recovers the period to
  ~0.1 s, which the superposition step (§VI.B) needs to keep phase
  coherent across ~18 folded cycles.
* **stop-end comb fusion** — stop events end when the light turns
  green, so folded stop-end times form one sharp cluster per cycle at
  the true period (and a flat haze at wrong ones).  Their concentration
  z-score joins the folding statistic when the caller passes stop ends.
* **subharmonic check** — any signal periodic at ``c`` is equally
  periodic at ``2c`` and ``3c``; the raw argmax therefore sometimes
  lands on a multiple.  The winner's sub-multiples are rescanned and
  the smallest period achieving ≥ ``subharmonic_alpha`` of the peak
  score is preferred.

Set ``n_candidates=1, refine=False, stop_end_weight=0`` to reproduce
the paper's plain argmax (bench ``bench_ablation_dft``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .._util import check_1d, check_positive
from ..obs.telemetry import SupportsCount
from .signal_types import CycleEstimate, InsufficientDataError
from .interpolation import regularize

__all__ = [
    "CycleConfig",
    "spectrum",
    "fold_zscore",
    "stop_end_comb_zscore",
    "identify_cycle",
    "identify_cycle_from_samples",
    "refine_cycle_by_folding",
]


@dataclass(frozen=True)
class CycleConfig:
    """Parameters of the frequency-domain analysis.

    Parameters
    ----------
    min_cycle_s, max_cycle_s:
        Plausible cycle band; bins outside it are ignored.  Set
        ``min_cycle_s=2*dt`` and ``max_cycle_s`` to the window length to
        emulate the paper's unrestricted argmax.
    dt:
        Regularization grid step, seconds.
    kind:
        Interpolation kind (see
        :func:`repro.core.interpolation.regularize`).
    min_samples:
        Minimum non-empty buckets per window.
    n_candidates:
        How many spectral peaks compete in the folding re-score
        (1 = paper-literal argmax).
    refine:
        Run the fine folding scan on the winner.
    fold_bin_s:
        Profile bin width used by the candidate-selection statistic.
    refine_bin_s:
        Profile bin width for the fine scan (wider bins average more
        samples per bin and empirically localize the period better).
    stop_end_weight:
        Weight of the stop-end comb z-score in candidate scoring
        (0 disables; only active when the caller passes stop ends).
    subharmonic_alpha:
        A sub-multiple of the winning period is preferred when it
        scores at least this fraction of the winner's score.
    """

    min_cycle_s: float = 40.0
    max_cycle_s: float = 320.0
    dt: float = 1.0
    kind: str = "spline"
    min_samples: int = 8
    n_candidates: int = 5
    refine: bool = True
    fold_bin_s: float = 4.0
    refine_bin_s: float = 8.0
    stop_end_weight: float = 1.0
    subharmonic_alpha: float = 0.85

    def __post_init__(self) -> None:
        check_positive("min_cycle_s", self.min_cycle_s)
        check_positive("max_cycle_s", self.max_cycle_s)
        if self.max_cycle_s <= self.min_cycle_s:
            raise ValueError("max_cycle_s must exceed min_cycle_s")
        check_positive("dt", self.dt)
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")


def spectrum(values: np.ndarray, dt: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Magnitude spectrum of a regular signal.

    Returns ``(period_s, magnitude)`` over the positive-frequency bins
    ``n = 1 … N//2`` where ``period_s[n-1] = N*dt/n``.  The mean (DC) is
    removed first so bin 0 never masks the signal.
    """
    values = check_1d("values", values, min_len=4)
    x = values - values.mean()
    mag = np.abs(np.fft.rfft(x))
    n = np.arange(1, mag.shape[0])
    periods = (values.shape[0] * dt) / n
    return periods, mag[1:]


def fold_zscore(
    t: np.ndarray, v: np.ndarray, cycle_s: float, bin_s: float = 4.0
) -> float:
    """Significance of periodicity at ``cycle_s`` in raw samples.

    Folds the samples modulo the candidate period, bins them, and
    computes the epoch-folding χ² (between-bin variance of means scaled
    by the sample variance), z-scored against its null expectation so
    different candidate periods (different bin counts) are comparable.
    Larger is more periodic; ≲ 2 is noise.
    """
    t = check_1d("t", t)
    v = check_1d("v", v)
    if t.shape != v.shape:
        raise ValueError("t and v must have equal length")
    check_positive("cycle_s", cycle_s)
    check_positive("bin_s", bin_s)
    if t.size < 4:
        return -np.inf
    vm = v - v.mean()
    var = float(vm.var())
    if var <= 0:
        return -np.inf
    folded = np.mod(t - t.min(), cycle_s)
    n_bins = max(int(np.ceil(cycle_s / bin_s)), 2)
    idx = np.minimum((folded / bin_s).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=vm, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    filled = counts > 0
    k = int(filled.sum())
    if k < 2:
        return -np.inf
    # Full-length (no-compaction) reduction: empty bins contribute an
    # exact 0.0, so the sum's pairwise association — and hence the
    # last-bit rounding — is the same for every row of a batched
    # (n_candidates, n_bins) layout.  This is what lets
    # repro.core.batch.fold_zscore_grid match this function bit-for-bit.
    means = np.where(filled, sums / np.maximum(counts, 1), 0.0)
    chi2 = float(np.sum(counts * means**2) / var)
    return (chi2 - k) / np.sqrt(2.0 * k)


def stop_end_comb_zscore(
    ends: np.ndarray, cycle_s: float, bin_s: float = 4.0
) -> float:
    """Concentration of folded stop-end times at a candidate period.

    Queues dissolve when the light turns green, so stop-event end times
    fall in one tight cluster per cycle.  Folded at the true period the
    cluster stacks into one hot bin; at a wrong period it smears flat.
    Returns the z-score of the hottest bin against a uniform (Poisson)
    null; −inf with fewer than 5 events.
    """
    ends = check_1d("ends", ends)
    check_positive("cycle_s", cycle_s)
    check_positive("bin_s", bin_s)
    n = ends.shape[0]
    if n < 5:
        return -np.inf
    folded = np.mod(ends, cycle_s)
    n_bins = max(int(np.ceil(cycle_s / bin_s)), 2)
    idx = np.minimum((folded / bin_s).astype(np.int64), n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    lam = n / n_bins
    return float((counts.max() - lam) / np.sqrt(lam + 1e-9))


def _scan_fold(
    t: np.ndarray,
    v: np.ndarray,
    center_s: float,
    half_width_s: float,
    step_s: float,
    bin_s: float,
    lo_s: float,
    hi_s: float,
    ends: Optional[np.ndarray] = None,
    end_weight: float = 0.0,
) -> Tuple[float, float]:
    """Best (cycle, combined z-score) on a grid around ``center_s``.

    The grid is clipped to ``[lo, hi]``: the float ``arange`` endpoint
    (``hi + step/2``) can otherwise emit a candidate up to half a step
    *outside* the configured cycle band, letting refined or subharmonic
    periods escape ``[min_cycle_s, max_cycle_s]``.
    """
    lo = max(center_s - half_width_s, lo_s)
    hi = min(center_s + half_width_s, hi_s)
    best_c, best_z = float(center_s), -np.inf
    for c in np.clip(np.arange(lo, hi + step_s / 2, step_s), lo, hi):
        z = fold_zscore(t, v, c, bin_s)
        if ends is not None and end_weight > 0 and np.isfinite(z):
            ze = stop_end_comb_zscore(ends, c, bin_s)
            if np.isfinite(ze):
                z += end_weight * ze
        if z > best_z:
            best_z, best_c = z, float(c)
    return best_c, best_z


def identify_cycle(
    values: np.ndarray,
    config: Optional[CycleConfig] = None,
    *,
    n_samples: int = -1,
    enhanced: bool = False,
) -> CycleEstimate:
    """Paper-literal §V on a regularized signal: in-band DFT argmax.

    ``quality`` is the winning peak's magnitude over the median in-band
    magnitude.  For the candidate-rescored variant use
    :func:`identify_cycle_from_samples`, which also sees the raw
    (unregularized) samples the folding statistic needs.
    """
    config = CycleConfig() if config is None else config
    periods, mag = spectrum(values, config.dt)
    in_band = (periods >= config.min_cycle_s) & (periods <= config.max_cycle_s)
    if not in_band.any():
        raise InsufficientDataError(
            f"window of {values.shape[0]} samples has no DFT bin inside "
            f"[{config.min_cycle_s}, {config.max_cycle_s}] s"
        )
    band_mag = np.where(in_band, mag, -np.inf)
    best = int(np.argmax(band_mag))
    peak = float(mag[best])
    med = float(np.median(mag[in_band]))
    return CycleEstimate(
        cycle_s=float(periods[best]),
        peak_index=best + 1,  # rfft bin number (cycles per window)
        peak_magnitude=peak,
        quality=peak / med if med > 0 else float("inf"),
        n_samples=n_samples,
        enhanced=enhanced,
    )


def _select_cycle(
    t: np.ndarray,
    v: np.ndarray,
    periods: np.ndarray,
    mag: np.ndarray,
    in_band: np.ndarray,
    config: CycleConfig,
    *,
    enhanced: bool = False,
    stop_ends: Optional[np.ndarray] = None,
    telemetry: Optional[SupportsCount] = None,
    scan: Optional[Callable[..., Tuple[float, float]]] = None,
) -> CycleEstimate:
    """Candidate re-scoring + refinement on a precomputed spectrum.

    The control flow shared by the serial backend and
    :mod:`repro.core.batch`: top-K spectral peaks → folding re-score →
    fine scan → subharmonic check.  ``scan`` swaps the grid scanner
    (same signature and semantics as :func:`_scan_fold`); the batched
    backend passes its vectorized, bit-identical implementation so the
    two backends differ only in how the scan grid is evaluated.
    """
    scan = _scan_fold if scan is None else scan
    band_mag = np.where(in_band, mag, -np.inf)
    order = np.argsort(band_mag)[::-1]
    k = min(config.n_candidates, int(in_band.sum()))
    candidates = order[:k]
    ends = None
    if stop_ends is not None and config.stop_end_weight > 0:
        ends = np.asarray(stop_ends, dtype=np.float64)
    ew = config.stop_end_weight
    if telemetry is not None:
        telemetry.count("cycle_candidates_scanned", k)

    if k == 1 or t.size < 8:
        chosen = int(candidates[0])
        cycle_s = float(periods[chosen])
        z = fold_zscore(t, v, cycle_s, config.fold_bin_s)
    else:
        chosen, cycle_s, z = int(candidates[0]), float(periods[candidates[0]]), -np.inf
        for b in candidates:
            c, zc = scan(
                t, v, float(periods[b]), 4.0, 0.5, config.fold_bin_s,
                config.min_cycle_s, config.max_cycle_s, ends, ew,
            )
            if zc > z:
                chosen, cycle_s, z = int(b), c, zc

    if config.refine and t.size >= 8:
        if telemetry is not None:
            telemetry.count("cycle_refine_scans", 1)
        cycle_s, z = scan(
            t, v, cycle_s, 1.5, 0.05, config.refine_bin_s,
            config.min_cycle_s, config.max_cycle_s, ends, ew,
        )
        # Subharmonic check: prefer the smallest period that explains
        # (nearly) as much of the structure as the winner.  Rational
        # divisors catch p/q locking (e.g. 3/2 when platoons skip every
        # other cycle on coordinated arterials).
        for div in (4, 3, 2, 1.5):
            cand = cycle_s / div
            if cand < config.min_cycle_s:
                continue
            if telemetry is not None:
                telemetry.count("cycle_subharmonic_scans", 1)
            c_sub, z_sub = scan(
                t, v, cand, 2.5, 0.05, config.refine_bin_s,
                config.min_cycle_s, config.max_cycle_s, ends, ew,
            )
            if np.isfinite(z_sub) and z_sub >= config.subharmonic_alpha * z:
                cycle_s, z = c_sub, z_sub
                break

    peak = float(mag[chosen])
    med = float(np.median(mag[in_band]))
    quality = z if np.isfinite(z) else (peak / med if med > 0 else float("inf"))
    return CycleEstimate(
        cycle_s=float(cycle_s),
        peak_index=chosen + 1,
        peak_magnitude=peak,
        quality=float(quality),
        n_samples=int(t.shape[0]),
        enhanced=enhanced,
    )


def identify_cycle_from_samples(
    t: np.ndarray,
    v: np.ndarray,
    t0: float,
    t1: float,
    config: Optional[CycleConfig] = None,
    *,
    enhanced: bool = False,
    stop_ends: Optional[np.ndarray] = None,
    telemetry: Optional[SupportsCount] = None,
) -> CycleEstimate:
    """End-to-end §V: regularize over ``[t0, t1)``, DFT, select, refine.

    With ``config.n_candidates > 1`` the top spectral peaks are
    re-scored on the *raw* samples by :func:`fold_zscore` (plus the
    stop-end comb when ``stop_ends`` is given) and the most
    significantly periodic one wins; with ``config.refine`` the winner
    is polished by a fine folding scan and checked against its
    sub-multiples.

    ``telemetry`` is an optional
    :class:`repro.obs.telemetry.StageTelemetry` (duck-typed: anything
    with ``count(name, n)``) that receives the candidate/scan counters.

    Raises :class:`InsufficientDataError` when the window is too sparse
    (sparse windows are where §V.B's enhancement earns its keep).
    """
    config = CycleConfig() if config is None else config
    t = check_1d("t", t)
    v = check_1d("v", v)
    grid, sig = regularize(
        t, v, t0, t1, dt=config.dt, kind=config.kind, min_samples=config.min_samples
    )
    periods, mag = spectrum(sig, config.dt)
    in_band = (periods >= config.min_cycle_s) & (periods <= config.max_cycle_s)
    if not in_band.any():
        raise InsufficientDataError(
            f"window [{t0}, {t1}) has no DFT bin inside "
            f"[{config.min_cycle_s}, {config.max_cycle_s}] s"
        )
    return _select_cycle(
        t, v, periods, mag, in_band, config,
        enhanced=enhanced, stop_ends=stop_ends, telemetry=telemetry,
    )


def refine_cycle_by_folding(
    t: np.ndarray,
    v: np.ndarray,
    cycle0_s: float,
    *,
    half_width_s: float = 3.0,
    step_s: float = 0.05,
    bin_s: float = 4.0,
    min_cycle_s: float = 10.0,
) -> float:
    """Sharpen a coarse cycle estimate by a fine epoch-folding scan.

    Folding a 30-minute window on a period that is off by even 1 s
    smears the superposed profile by ~18 s and ruins the §VI
    change-point step; this scan recovers sub-DFT-bin accuracy.
    Returns the refined period (``cycle0_s`` when the samples cannot
    discriminate).
    """
    t = check_1d("t", t)
    v = check_1d("v", v)
    if t.size < 8:
        return float(cycle0_s)
    best_c, _ = _scan_fold(
        t, v, float(cycle0_s), half_width_s, step_s, bin_s, min_cycle_s, np.inf
    )
    return best_c
