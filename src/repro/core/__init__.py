"""The paper's contribution: traffic-light scheduling identification
from low-frequency taxi traces.

Stages (Fig. 4): interpolation → DFT cycle length (§V, with
intersection-based enhancement §V.B) → border-interval red duration
(§VI.A) → superposition (§VI.B) → sliding-window change point (§VI.C)
→ continuous monitoring for scheduling changes (§VII).
"""

from .changepoint import circular_moving_average, find_signal_change, stop_end_density
from .cycle import (
    CycleConfig,
    fold_zscore,
    stop_end_comb_zscore,
    identify_cycle,
    identify_cycle_from_samples,
    refine_cycle_by_folding,
    spectrum,
)
from .coordination import (
    LinkProgression,
    corridor_report,
    progression_bandwidth,
    relative_offset,
)
from .enhancement import choose_primary, enhance_samples, mirror_speeds
from .highfreq import HighFreqConfig, identify_light_highfreq, start_events
from .interpolation import bucket_mean, regularize
from .kernel_tier import EXACT_TIER, KERNEL_TIERS, TOLERANCE_TIER, resolve_kernel
from .monitor import (
    HistoricalProfile,
    MonitorSeries,
    PlanChange,
    detect_plan_changes,
    monitor_cycle,
    repair_outliers,
)
from .batch import (
    circular_moving_average_batch,
    cycle_profile_batch,
    fold_zscore_grid,
    identify_batch,
    scan_fold_vec,
    spectra_batch,
)
from .pipeline import BACKENDS, PipelineConfig, identify_light, identify_many
from .shard import balanced_shards, identify_shard
from .redlight import (
    RedConfig,
    estimate_red_duration,
    estimate_red_from_stops,
    refine_red_from_change,
)
from .signal_types import (
    ChangePointEstimate,
    CycleEstimate,
    InsufficientDataError,
    RedEstimate,
    ScheduleEstimate,
)
from .stops import StopEvents, extract_stops
from .superposition import cycle_profile, fold_samples, fold_times

__all__ = [
    "circular_moving_average",
    "find_signal_change",
    "stop_end_density",
    "CycleConfig",
    "identify_cycle",
    "identify_cycle_from_samples",
    "refine_cycle_by_folding",
    "fold_zscore",
    "stop_end_comb_zscore",
    "spectrum",
    "LinkProgression",
    "corridor_report",
    "progression_bandwidth",
    "relative_offset",
    "choose_primary",
    "enhance_samples",
    "mirror_speeds",
    "bucket_mean",
    "regularize",
    "EXACT_TIER",
    "KERNEL_TIERS",
    "TOLERANCE_TIER",
    "resolve_kernel",
    "HighFreqConfig",
    "identify_light_highfreq",
    "start_events",
    "HistoricalProfile",
    "MonitorSeries",
    "PlanChange",
    "detect_plan_changes",
    "monitor_cycle",
    "repair_outliers",
    "BACKENDS",
    "PipelineConfig",
    "identify_light",
    "identify_many",
    "identify_shard",
    "balanced_shards",
    "identify_batch",
    "spectra_batch",
    "fold_zscore_grid",
    "scan_fold_vec",
    "cycle_profile_batch",
    "circular_moving_average_batch",
    "RedConfig",
    "estimate_red_duration",
    "estimate_red_from_stops",
    "refine_red_from_change",
    "ChangePointEstimate",
    "CycleEstimate",
    "InsufficientDataError",
    "RedEstimate",
    "ScheduleEstimate",
    "StopEvents",
    "extract_stops",
    "cycle_profile",
    "fold_samples",
    "fold_times",
]
