"""Data superposition: folding many cycles into one (§VI.B, Fig. 10).

Once the cycle length is known, every report timestamp can be reduced
modulo the cycle (relative to an anchor).  Sparse observations from
dozens of cycles then stack inside a single cycle — "new index = old
index modulo cycle length" — while each report keeps its in-cycle
position, so the signal-change time survives the fold.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._util import check_1d, check_positive, wrap_mod

__all__ = ["fold_times", "fold_samples", "cycle_profile", "fill_circular"]


def fold_times(t: np.ndarray, cycle_s: float, anchor: float = 0.0) -> np.ndarray:
    """Fold absolute times into ``[0, cycle_s)`` relative to *anchor*."""
    t = check_1d("t", t)
    check_positive("cycle_s", cycle_s)
    return wrap_mod(t - anchor, cycle_s)


def fold_samples(
    t: np.ndarray, v: np.ndarray, cycle_s: float, anchor: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold timed samples; returns them sorted by in-cycle time."""
    v = check_1d("v", v)
    ft = fold_times(t, cycle_s, anchor)
    if ft.shape != v.shape:
        raise ValueError("t and v must have equal length")
    order = np.argsort(ft, kind="stable")
    return ft[order], v[order]


def cycle_profile(
    t: np.ndarray,
    v: np.ndarray,
    cycle_s: float,
    anchor: float = 0.0,
    *,
    bin_s: float = 1.0,
) -> np.ndarray:
    """Mean value per in-cycle second (the superposed speed profile).

    Empty bins are filled by *circular* linear interpolation between
    their populated neighbours — the fold is periodic, so second 0
    neighbours second ``cycle−1``.  Raises ``ValueError`` when every
    bin is empty.
    """
    check_positive("bin_s", bin_s)
    ft, fv = fold_samples(t, v, cycle_s, anchor)
    n_bins = max(int(np.ceil(cycle_s / bin_s)), 1)
    idx = np.minimum((ft / bin_s).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=fv, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    filled = counts > 0
    if not filled.any():
        raise ValueError("cannot build a cycle profile from zero samples")
    profile = np.full(n_bins, np.nan)
    profile[filled] = sums[filled] / counts[filled]
    return fill_circular(profile, filled)


def fill_circular(profile: np.ndarray, filled: np.ndarray) -> np.ndarray:
    """Fill empty profile bins by circular linear interpolation, in place.

    ``filled`` marks the populated bins; the profile is periodic, so the
    last populated bin wraps around to serve as the left neighbour of
    leading gaps.  Shared by :func:`cycle_profile` and the batched
    profile kernel in :mod:`repro.core.batch` so both backends fill
    holes with bit-identical arithmetic.
    """
    if filled.all():
        return profile
    n_bins = profile.shape[0]
    # Circular interpolation: unwrap the populated bins once around.
    known = np.flatnonzero(filled)
    known_ext = np.concatenate([known, known[:1] + n_bins])
    vals_ext = np.concatenate([profile[known], profile[known][:1]])
    missing = np.flatnonzero(~filled)
    # place each missing bin after the first known bin (shift by period
    # where needed) so np.interp sees a monotone axis
    shifted = np.where(missing < known[0], missing + n_bins, missing)
    profile[missing] = np.interp(shifted, known_ext, vals_ext)
    return profile
