"""High-frequency event-based baseline (CityDrive / iTrip class).

The paper's related work identifies schedules from **high-frequency**
probes (1–2 Hz): each vehicle's own deceleration-to-stop and
start-from-stop events are sharp observations of the signal phase, so
collecting start events and folding them yields the schedule directly.
The paper's motivating claim is that this family "can not be directly
employed" on 15–60 s taxi reports because per-vehicle kinematic events
are invisible at that rate.

This module implements the baseline so the claim can be measured
(``bench_baseline_highfreq.py``): it performs honestly at 1–2 s
sampling and collapses at taxi rates, exactly where the paper's
periodicity method keeps working.

Algorithm (a faithful simplification of the cited systems):

1. per vehicle, find *start events* — a report at (near-)zero speed
   followed within ``max_gap_s`` by a clearly-moving report; the start
   instant is observed to within one sampling interval;
2. the cycle is the period that maximally concentrates the folded
   start events (epoch-folding comb, scanned over the whole band);
3. the red→green change is the folded events' circular-density mode;
4. the red duration is taken from each start vehicle's preceding stop
   span (observed wait), as the high quantile of waits ending at the
   change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .._util import check_positive
from ..lights.schedule import LightSchedule
from ..matching.partition import LightPartition
from .changepoint import stop_end_density
from .cycle import stop_end_comb_zscore
from .signal_types import InsufficientDataError

__all__ = ["HighFreqConfig", "start_events", "identify_light_highfreq"]


@dataclass(frozen=True)
class HighFreqConfig:
    """Parameters of the event-based baseline.

    Parameters
    ----------
    speed_stop_kmh:
        Reports at or below this speed count as "stopped".
    speed_go_kmh:
        The following report must exceed this to call it a start event.
    max_gap_s:
        Maximum spacing between the stopped and moving report for the
        start instant to be considered observed.  The cited systems
        assume 1–2 Hz, i.e. gaps of ~1 s; taxi traces almost never
        satisfy this — which is the point.
    min_events:
        Events needed before attempting identification.
    min_cycle_s, max_cycle_s:
        Cycle search band.
    """

    speed_stop_kmh: float = 4.0
    speed_go_kmh: float = 10.0
    max_gap_s: float = 4.0
    min_events: int = 8
    min_cycle_s: float = 40.0
    max_cycle_s: float = 320.0

    def __post_init__(self) -> None:
        check_positive("max_gap_s", self.max_gap_s)
        if self.max_cycle_s <= self.min_cycle_s:
            raise ValueError("max_cycle_s must exceed min_cycle_s")


def start_events(
    partition: LightPartition, config: Optional[HighFreqConfig] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract (start_time, observed_wait) pairs from a partition.

    A start event is a stopped report followed within ``max_gap_s`` by
    a moving report of the same taxi; its time is the midpoint of the
    pair.  The observed wait is the stretch of consecutive stopped
    reports leading up to it.
    """
    config = HighFreqConfig() if config is None else config
    trace = partition.trace
    if len(trace) < 2:
        return np.empty(0), np.empty(0)
    order = np.lexsort((trace.t, trace.taxi_id))
    tid = trace.taxi_id[order]
    t = trace.t[order]
    v = trace.speed_kmh[order]

    same = tid[1:] == tid[:-1]
    gap_ok = (t[1:] - t[:-1]) <= config.max_gap_s
    is_start = same & gap_ok & (v[:-1] <= config.speed_stop_kmh) & (
        v[1:] >= config.speed_go_kmh
    )
    idx = np.flatnonzero(is_start)
    if idx.size == 0:
        return np.empty(0), np.empty(0)

    times = 0.5 * (t[idx] + t[idx + 1])
    waits = np.empty(idx.size)
    for out_i, i in enumerate(idx):
        j = i
        while j > 0 and tid[j - 1] == tid[i] and v[j - 1] <= config.speed_stop_kmh:
            j -= 1
        waits[out_i] = t[i] - t[j]
    return times, waits


def identify_light_highfreq(
    partition: LightPartition,
    at_time: float,
    *,
    window_s: float = 1800.0,
    config: Optional[HighFreqConfig] = None,
) -> LightSchedule:
    """Event-based schedule identification (the baseline).

    Raises :class:`InsufficientDataError` when too few kinematic events
    are observable — the expected outcome on low-frequency taxi data.
    """
    config = HighFreqConfig() if config is None else config
    sub = partition.time_window(at_time - window_s, at_time)
    times, waits = start_events(sub, config)
    if times.size < config.min_events:
        raise InsufficientDataError(
            f"only {times.size} start events observable in the window; "
            f"event-based identification needs >= {config.min_events}"
        )

    # 2. cycle: coarse-to-fine comb scan over the band
    best_c, best_z = None, -np.inf
    for c in np.arange(config.min_cycle_s, config.max_cycle_s + 0.25, 0.5):
        z = stop_end_comb_zscore(times, c)
        if z > best_z:
            best_z, best_c = z, float(c)
    for c in np.arange(best_c - 0.6, best_c + 0.6 + 0.025, 0.05):
        z = stop_end_comb_zscore(times, c)
        if z > best_z:
            best_z, best_c = z, float(c)
    cycle_s = best_c

    # 3. red→green: circular density mode of the folded events
    anchor = at_time - window_s
    folded = np.mod(times - anchor, cycle_s)
    dens = stop_end_density(folded, cycle_s, bandwidth_s=3.0)
    red_to_green = float(np.argmax(dens))

    # 4. red duration: high quantile of the waits behind aligned events
    d = np.abs(folded - red_to_green)
    aligned = np.minimum(d, cycle_s - d) <= 8.0
    w = waits[aligned]
    w = w[(w > 0) & (w <= 0.95 * cycle_s)]
    if w.size < 3:
        raise InsufficientDataError(
            f"only {w.size} observed waits align with the detected change"
        )
    red_s = float(np.quantile(w, 0.9))

    return LightSchedule(
        cycle_s=cycle_s,
        red_s=min(red_s, 0.9 * cycle_s),
        offset_s=anchor + red_to_green - min(red_s, 0.9 * cycle_s),
    )
