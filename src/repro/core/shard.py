"""Zero-copy sharded identification over the spilled column store.

:func:`repro.core.batch.identify_batch` already runs the whole city
through shared vectorized kernels; what kept multi-process execution
from scaling was the boundary cost — the process backend pickles the
full column store into every worker, so wall-clock stays core-count
independent.  This module shards the batched backend by light partition
and moves the columns across the boundary through the filesystem page
cache instead of pickles:

1. the store spills its columns once to mmap-able ``.npy`` files
   (:meth:`~repro.trace.store.PartitionStore.spilled`, built on the
   sanctioned ``spill_to`` / ``_swap_backing`` seam);
2. ``pmap(common=store)`` then ships only a lightweight handle —
   metadata plus file paths — and ``common_bytes_limit`` enforces that
   zero column bytes ride in the per-worker pickle;
3. each worker attaches to the columns read-only and runs
   ``identify_batch`` over its own key shard.  The batched kernels are
   row-wise bit-exact for any key subset (the contract the stream
   backend already leans on), so shard = batched = serial bit-for-bit
   with no new numeric code.

Shards are balanced by row count — Table II's ~25× per-light record
skew would otherwise leave workers idle behind one heavy shard — and a
shard whose worker dies at the pool boundary re-runs in-parent through
the same ``identify_batch`` subset, so per-light fault containment and
the failure taxonomy are preserved.  Per-shard wall time and the
handle's byte size come back as :class:`~repro.obs.report.ShardStats`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..matching.partition import LightKey, LightPartition
from ..obs import LightFailure, ShardStats, StageTelemetry
from ..parallel.pool import (
    WorkerError,
    default_workers,
    get_common,
    payload_nbytes,
    pmap,
)
from ..trace.store import PartitionStore
from .batch import identify_batch
from .pipeline import PipelineConfig
from .signal_types import ScheduleEstimate

__all__ = ["balanced_shards", "identify_shard"]

#: Floor for ``pmap``'s ``common_bytes_limit``: the spilled handle is
#: metadata + file paths + any quarantined irregular partitions (which
#: are never columnar), so a regular city stays far below this; a limit
#: trip means column bytes leaked back into the per-worker pickle.
_HANDLE_BYTES_CEILING = 1 << 20

#: One shard result: (shard index, estimates, failures, per-light
#: telemetry, shard-level telemetry carrying the worker wall time).
_ShardResult = Tuple[
    int,
    Dict[LightKey, ScheduleEstimate],
    Dict[LightKey, LightFailure],
    Dict[LightKey, StageTelemetry],
    StageTelemetry,
]

#: One shard job: (shard index, keys, at_time, config).  The store is
#: **not** part of the job — it rides once per worker as ``common``.
_ShardJob = Tuple[int, List[LightKey], float, PipelineConfig]


def balanced_shards(
    store: PartitionStore, keys: Sequence[LightKey], n_shards: int
) -> List[List[LightKey]]:
    """Split *keys* into ≤ *n_shards* contiguous runs of ~equal row count.

    Contiguity (in sorted-key order) keeps each worker's column reads
    clustered in the mapped files; weighting by
    :meth:`~repro.trace.store.PartitionStore.light_n_records` absorbs
    the per-light record skew.  Deterministic in its inputs.
    """
    ordered = list(keys)
    if not ordered:
        return []
    n_shards = max(1, min(int(n_shards), len(ordered)))
    weights = np.asarray(
        [max(1, store.light_n_records(key)) for key in ordered], dtype=np.float64
    )
    cum = np.cumsum(weights)
    total = float(cum[-1])
    bounds = [0]
    for s in range(1, n_shards):
        target = total * s / n_shards
        idx = int(np.searchsorted(cum, target))
        # stay monotonic and leave at least one key per remaining shard
        bounds.append(max(bounds[-1] + 1, min(idx, len(ordered) - (n_shards - s))))
    bounds.append(len(ordered))
    return [ordered[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


def _identify_shard_worker(job: _ShardJob) -> _ShardResult:
    """Worker: one key shard through the batched kernels.

    The job carries only keys + time + config; the partitions come out
    of the spilled :class:`~repro.trace.store.PartitionStore` the pool
    shipped once per worker as the ``common`` handle, columns attached
    read-only via mmap on first touch.
    """
    shard_index, keys, at_time, config = job
    store = get_common()
    tel = StageTelemetry()
    with tel.stage("shard"):
        estimates, failures, tels = identify_batch(
            store, at_time, config=config, keys=keys
        )
    return shard_index, estimates, failures, tels, tel


def identify_shard(
    partitions: Union[Mapping[LightKey, LightPartition], PartitionStore],
    at_time: float,
    *,
    config: Optional[PipelineConfig] = None,
    keys: Optional[Sequence[LightKey]] = None,
    max_workers: Optional[int] = None,
    shards_per_worker: int = 2,
    mmap_dir: Optional[str] = None,
) -> Tuple[
    Dict[LightKey, ScheduleEstimate],
    Dict[LightKey, LightFailure],
    Dict[LightKey, StageTelemetry],
    List[ShardStats],
]:
    """Identify ``keys`` (default: every light) via balanced zero-copy shards.

    Returns ``(estimates, failures, telemetries, shard_stats)`` where
    the first three match :func:`repro.core.batch.identify_batch` over
    the same keys **bit-for-bit**, and ``shard_stats`` carries one
    :class:`~repro.obs.report.ShardStats` per dispatched shard.

    ``partitions`` may be a plain mapping or a
    :class:`~repro.trace.store.PartitionStore`.  An in-memory store is
    spilled for the duration of the call (to ``mmap_dir``, or a
    temporary directory that is removed afterwards) and restored on
    exit; an already-spilled store is used as-is.  ``shards_per_worker``
    over-decomposes the fan-out so stragglers rebalance.

    Fault containment matches the other backends at both granularities:
    per-light failures come back typed from inside ``identify_batch``,
    and a shard that dies at the pool boundary re-runs in-parent over
    the same keys.
    """
    config = PipelineConfig() if config is None else config
    store = (
        partitions
        if isinstance(partitions, PartitionStore)
        else PartitionStore.from_partitions(partitions)
    )
    wanted = sorted(store) if keys is None else sorted(keys)
    estimates: Dict[LightKey, ScheduleEstimate] = {}
    failures: Dict[LightKey, LightFailure] = {}
    tels: Dict[LightKey, StageTelemetry] = {}
    stats: List[ShardStats] = []
    if not wanted:
        return estimates, failures, tels, stats
    workers = default_workers(max_workers)
    with store.spilled(mmap_dir):
        handle_bytes = payload_nbytes(store)
        shards = balanced_shards(store, wanted, workers * shards_per_worker)
        jobs: List[_ShardJob] = [
            (i, shard, at_time, config) for i, shard in enumerate(shards)
        ]
        results = pmap(
            _identify_shard_worker,
            jobs,
            max_workers=workers,
            chunks_per_worker=1,
            on_error="return",
            common=store,
            common_bytes_limit=max(_HANDLE_BYTES_CEILING, 2 * handle_bytes),
        )
        for i, (shard, res) in enumerate(zip(shards, results)):
            if isinstance(res, WorkerError):
                # The whole shard died at the pool boundary (e.g. an
                # unpicklable result): re-run it in-parent through the
                # same kernels, keeping per-light containment intact.
                fb_tel = StageTelemetry()
                with fb_tel.stage("shard"):
                    s_est, s_fail, s_tels = identify_batch(
                        store, at_time, config=config, keys=shard
                    )
                res = (i, s_est, s_fail, s_tels, fb_tel)
            shard_index, s_est, s_fail, s_tels, s_tel = res
            estimates.update(s_est)
            failures.update(s_fail)
            tels.update(s_tels)
            stats.append(
                ShardStats(
                    shard_index=shard_index,
                    n_lights=len(shard),
                    n_records=sum(store.light_n_records(k) for k in shard),
                    n_ok=len(s_est),
                    n_failed=len(s_fail),
                    wall_s=s_tel.stage_s.get("shard", 0.0),
                    common_bytes=handle_bytes,
                )
            )
    return estimates, failures, tels, stats
