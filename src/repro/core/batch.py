"""Batched citywide identification kernels.

The serial pipeline (:mod:`repro.core.pipeline`) runs each light's §V–§VI
stages on tiny arrays — a lone FFT here, a Python-loop folding scan
there — so a citywide ``identify_many`` pays per-light Python overhead
hundreds of times per time spot.  This module stacks the per-light work
into whole-city array operations:

* **one** ``np.fft.rfft`` over the ``(n_lights, n_seconds)`` matrix of
  regularized 1 Hz speed grids (:func:`spectra_batch`);
* **one** vectorized fold-and-scan per scan request — the entire
  candidate grid of an epoch-folding scan is scored in a single
  broadcast + offset-``bincount`` pass (:func:`fold_zscore_grid`,
  :func:`scan_fold_vec`);
* **one** global fold + ``bincount`` building every light's superposed
  cycle profile (:func:`cycle_profile_batch`);
* **one** strided cumulative-sum pass computing every light's circular
  moving average (:func:`circular_moving_average_batch`).

Bit-for-bit parity with the serial backend is a design requirement, not
an aspiration: every kernel reproduces the exact floating-point
operation order of its serial counterpart (same reductions over the
same contiguous slices), and the per-light *control flow* is shared
with the serial code through seams (:func:`repro.core.cycle._select_cycle`
takes the scanner as a parameter; ``find_signal_change`` accepts a
precomputed moving average).  ``tests/test_batch_parity.py`` and
``tests/test_kernel_properties.py`` pin this down.

Fault containment composes with PR 1's model: any exception while a
light is on the batched path sends **that light alone** through the
serial containment path (:func:`repro.core.pipeline._identify_one`),
which either recovers an estimate or reproduces the exact serial
:class:`~repro.obs.report.LightFailure`; the batch never aborts.  Every
risky per-light step routes through the sanctioned containment seam
(:func:`repro.parallel.pool.run_guarded`) — this module itself holds no
catch-all handlers (the REP002 invariant).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lights.schedule import LightSchedule
from ..matching.partition import LightKey, partner_of
from ..obs import LightFailure, StageTelemetry
from ..parallel.pool import WorkerError, run_guarded
from ..trace.store import PartitionStore
from .changepoint import find_signal_change
from .cycle import _select_cycle
from .enhancement import choose_primary, enhance_samples
from .interpolation import regularize
from .pipeline import _MIN_RED_S, PipelineConfig, _identify_one
from .redlight import estimate_red_duration, refine_red_from_change
from .signal_types import InsufficientDataError, ScheduleEstimate
from .superposition import fill_circular

__all__ = [
    "identify_batch",
    "spectra_batch",
    "fold_zscore_grid",
    "scan_fold_vec",
    "cycle_profile_batch",
    "circular_moving_average_batch",
]


# ----------------------------------------------------------------------
# Vectorized kernels (each bit-identical to its serial counterpart)
# ----------------------------------------------------------------------

def spectra_batch(
    signals: np.ndarray, dt: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`repro.core.cycle.spectrum` in one ``rfft``.

    ``signals`` is the ``(n_lights, n_seconds)`` stack of regularized
    grids (equal window lengths); returns the shared ``periods`` axis
    and the ``(n_lights, n_bins)`` magnitude matrix.  Each row is
    bit-identical to ``spectrum(signals[i], dt)``.
    """
    signals = np.ascontiguousarray(signals, dtype=np.float64)
    if signals.ndim != 2 or signals.shape[1] < 4:
        raise ValueError(
            f"signals must be (n_lights, n_seconds>=4), got {signals.shape}"
        )
    x = signals - signals.mean(axis=1, keepdims=True)
    mag = np.abs(np.fft.rfft(x, axis=1))
    n = np.arange(1, mag.shape[1])
    periods = (signals.shape[1] * dt) / n
    return periods, mag[:, 1:]


def fold_zscore_grid(
    t: np.ndarray,
    v: np.ndarray,
    cycles: np.ndarray,
    bin_s: float,
    ends: Optional[np.ndarray] = None,
    end_weight: float = 0.0,
) -> np.ndarray:
    """Combined fold (+ stop-end comb) z-scores at many candidate periods.

    Element ``j`` equals what the serial scan computes for ``cycles[j]``:
    ``fold_zscore(t, v, cycles[j], bin_s)`` plus
    ``end_weight * stop_end_comb_zscore(ends, cycles[j], bin_s)`` when
    finite — bit-for-bit, because every reduction runs over the same
    elements in the same order as the serial kernels (offset ``bincount``
    preserves per-bin accumulation order; χ² row sums run over exactly
    the row's ``n_bins`` contiguous entries, never the padding).
    """
    cycles = np.asarray(cycles, dtype=np.float64)
    J = cycles.shape[0]
    out = np.full(J, -np.inf)
    if J == 0 or t.size < 4:
        return out
    vm = v - v.mean()
    var = float(vm.var())
    if var <= 0:
        return out

    trel = t - t.min()
    nb = np.maximum(np.ceil(cycles / bin_s).astype(np.int64), 2)
    NB = int(nb.max())
    row = np.arange(J, dtype=np.int64)[:, None] * NB
    folded = np.mod(trel[None, :], cycles[:, None])
    idx = np.minimum((folded / bin_s).astype(np.int64), (nb - 1)[:, None])
    flat = (idx + row).ravel()
    weights = np.broadcast_to(vm, (J, vm.size)).ravel()
    sums = np.bincount(flat, weights=weights, minlength=J * NB).reshape(J, NB)
    counts = np.bincount(flat, minlength=J * NB).reshape(J, NB)
    filled = counts > 0
    k = filled.sum(axis=1)
    means = np.where(filled, sums / np.maximum(counts, 1), 0.0)
    contrib = counts * means**2

    # χ² per row: sum over exactly that row's n_bins slots.  Summing the
    # zero padding too would change the pairwise association (and the
    # last bit), so rows are grouped by bin count and reduced over
    # contiguous (g, n_bins) blocks — the same reduction the serial
    # kernel performs per row.
    chi2 = np.empty(J)
    for b in np.unique(nb):
        rows = np.flatnonzero(nb == b)
        block = np.ascontiguousarray(contrib[rows][:, :b], dtype=np.float64)
        chi2[rows] = np.sum(block, axis=1) / var
    z = np.where(
        k >= 2,
        (chi2 - k) / np.sqrt(2.0 * np.maximum(k, 1)),
        -np.inf,
    )

    if ends is not None and end_weight > 0 and ends.shape[0] >= 5:
        n = ends.shape[0]
        folded_e = np.mod(np.asarray(ends, dtype=np.float64)[None, :], cycles[:, None])
        idx_e = np.minimum((folded_e / bin_s).astype(np.int64), (nb - 1)[:, None])
        flat_e = (idx_e + row).ravel()
        counts_e = np.bincount(flat_e, minlength=J * NB).reshape(J, NB).astype(np.float64)
        lam = n / nb
        ze = (counts_e.max(axis=1) - lam) / np.sqrt(lam + 1e-9)
        z = np.where(np.isfinite(z), z + end_weight * ze, z)
    return z


def scan_fold_vec(
    t: np.ndarray,
    v: np.ndarray,
    center_s: float,
    half_width_s: float,
    step_s: float,
    bin_s: float,
    lo_s: float,
    hi_s: float,
    ends: Optional[np.ndarray] = None,
    end_weight: float = 0.0,
) -> Tuple[float, float]:
    """Vectorized :func:`repro.core.cycle._scan_fold` (same signature).

    Builds the identical clipped candidate grid, scores it in one
    :func:`fold_zscore_grid` call, and applies the serial first-maximum
    tie-break; drop-in as the ``scan`` parameter of
    :func:`repro.core.cycle._select_cycle`.
    """
    lo = max(center_s - half_width_s, lo_s)
    hi = min(center_s + half_width_s, hi_s)
    cycles = np.clip(np.arange(lo, hi + step_s / 2, step_s), lo, hi)
    if cycles.size == 0:
        return float(center_s), -np.inf
    z = fold_zscore_grid(t, v, cycles, bin_s, ends=ends, end_weight=end_weight)
    z = np.where(np.isnan(z), -np.inf, z)
    # serial tie-break: strict improvement only, so the first maximum
    # wins — exactly np.argmax's rule
    j = int(np.argmax(z))
    if not z[j] > -np.inf:
        return float(center_s), -np.inf
    return float(cycles[j]), float(z[j])


def cycle_profile_batch(
    entries: Sequence[Tuple[np.ndarray, np.ndarray, float, float]],
    *,
    bin_s: float = 1.0,
) -> List[Optional[np.ndarray]]:
    """Superposed cycle profiles for many lights in one fold pass.

    ``entries`` holds ``(t, v, cycle_s, anchor)`` per light; element
    ``i`` of the result is bit-identical to
    ``cycle_profile(t, v, cycle_s, anchor, bin_s=bin_s)`` — the global
    stable sort orders samples by (light, folded time), matching the
    serial per-light fold order inside every histogram bin.  A light
    whose profile cannot be built (zero samples) yields ``None`` so the
    caller can contain it without aborting the batch.
    """
    L = len(entries)
    if L == 0:
        return []
    lengths = np.array([e[0].shape[0] for e in entries], dtype=np.int64)
    cycles = np.array([float(e[2]) for e in entries], dtype=np.float64)
    anchors = np.array([float(e[3]) for e in entries], dtype=np.float64)
    nbins = np.maximum(np.ceil(cycles / bin_s).astype(np.int64), 1)
    offsets = np.concatenate([[0], np.cumsum(nbins)])

    t_all = np.concatenate([np.asarray(e[0], dtype=np.float64) for e in entries]) \
        if lengths.sum() else np.empty(0)
    v_all = np.concatenate([np.asarray(e[1], dtype=np.float64) for e in entries]) \
        if lengths.sum() else np.empty(0)
    lid = np.repeat(np.arange(L), lengths)
    cyc = cycles[lid]
    # wrap_mod, elementwise with a per-sample modulus
    ft = np.mod(t_all - anchors[lid], cyc)
    ft = np.where(ft >= cyc, ft - cyc, ft)

    order = np.lexsort((ft, lid))  # stable: serial per-light fold order
    ft, fv, lid = ft[order], v_all[order], lid[order]
    idx = np.minimum((ft / bin_s).astype(np.int64), (nbins - 1)[lid])
    flat = idx + offsets[lid]
    total = int(offsets[-1])
    sums = np.bincount(flat, weights=fv, minlength=total)
    counts = np.bincount(flat, minlength=total)

    profiles: List[Optional[np.ndarray]] = []
    for i in range(L):
        s = sums[offsets[i]:offsets[i + 1]]
        c = counts[offsets[i]:offsets[i + 1]]
        filled = c > 0
        if not filled.any():
            profiles.append(None)
            continue
        profile = np.full(int(nbins[i]), np.nan)
        profile[filled] = s[filled] / c[filled]
        profiles.append(fill_circular(profile, filled))
    return profiles


def circular_moving_average_batch(
    profiles: Sequence[np.ndarray], windows: Sequence[int]
) -> List[np.ndarray]:
    """Per-light circular moving averages in one strided cumsum pass.

    Element ``i`` is bit-identical to
    ``circular_moving_average(profiles[i], windows[i])``: each padded
    row holds the serial code's tiled copy, the shared ``cumsum(axis=1)``
    reproduces the serial prefix sums (the zero padding only ever sits
    *after* the used prefix), and the window difference and division run
    per row with the row's own window.
    """
    L = len(profiles)
    out: List[Optional[np.ndarray]] = [None] * L
    rows = []
    for i, (p, w) in enumerate(zip(profiles, windows)):
        n = p.shape[0]
        if not 1 <= w <= n:
            raise ValueError(f"window must be in [1, {n}], got {w}")
        if w == 1:
            out[i] = p.astype(np.float64)  # serial w==1 shortcut, same rounding
        else:
            rows.append(i)
    if rows:
        ns = np.array([profiles[i].shape[0] for i in rows], dtype=np.int64)
        ws = np.array([int(windows[i]) for i in rows], dtype=np.int64)
        width = int((ns + ws - 1).max())
        mat = np.zeros((len(rows), width))
        for j, i in enumerate(rows):
            p, n, w = profiles[i], int(ns[j]), int(ws[j])
            mat[j, :n] = p
            mat[j, n:n + w - 1] = p[: w - 1]
        csum = np.concatenate(
            [np.zeros((len(rows), 1)), np.cumsum(mat, axis=1)], axis=1
        )
        for j, i in enumerate(rows):
            n, w = int(ns[j]), int(ws[j])
            out[i] = (csum[j, w:w + n] - csum[j, :n]) / w
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------

def _prepare_light(
    store: PartitionStore,
    key: LightKey,
    perp_key: LightKey,
    cfg: PipelineConfig,
    anchor: float,
    at_time: float,
    tel: StageTelemetry,
) -> dict:
    """Pass 1 for one light: samples, stops, regularized grid.

    Raises on any per-light problem; the orchestrator routes the call
    through :func:`repro.parallel.pool.run_guarded` and sends failing
    lights down the serial containment path.
    """
    ccfg = cfg.cycle
    with tel.stage("samples"):
        t_own, v_own = store.window_samples(
            key, anchor, at_time, cfg.max_sample_dist_m
        )
        t, v = t_own, v_own
        tel.count("samples_primary", int(t_own.shape[0]))
        enhanced = False
        if (
            cfg.use_enhancement
            and perp_key in store
            and t.shape[0] < cfg.enhancement_threshold
        ):
            tp, vp = store.window_samples(
                perp_key, anchor, at_time, cfg.max_sample_dist_m
            )
            if tp.size:
                t1_, v1_, t2_, v2_ = choose_primary(t, v, tp, vp)
                t, v = enhance_samples(t1_, v1_, t2_, v2_)
                enhanced = True
                tel.count("lights_enhanced", 1)
                tel.count("samples_mirrored", int(tp.shape[0]))

    with tel.stage("stops"):
        stops_all = store.stops(key).time_window(
            at_time - cfg.stop_window_s, at_time
        )
        tel.count("stops_extracted", len(stops_all))
        stops = (
            stops_all.subset(~stops_all.passenger_changed)
            if len(stops_all)
            else stops_all
        )
        tel.count("stops_kept", len(stops))
        gaps = stops.duration_s / np.maximum(stops.n_records - 1, 1)
        stop_ends = stops.t_end + gaps / 2.0

    with tel.stage("cycle"):
        # §V part 1 — regularize onto the shared window grid;
        # the DFT itself runs once for the whole city later.
        grid_key = (
            "grid", key, float(anchor), float(at_time),
            ccfg.dt, ccfg.kind, ccfg.min_samples,
            cfg.max_sample_dist_m, cfg.use_enhancement,
            cfg.enhancement_threshold,
        )
        hit = store.cache.get(grid_key)
        if hit is None:
            hit = regularize(
                t, v, anchor, at_time,
                dt=ccfg.dt, kind=ccfg.kind, min_samples=ccfg.min_samples,
            )
            store.cache[grid_key] = hit
        _grid, sig = hit

    # The store→kernel seam: everything the scoring passes feed into the
    # parity kernels is pinned to float64 here.  Bit-exact no-ops on the
    # store's float64 columns; REP017 proves nothing below float64 can
    # slip through if a producer ever changes.
    return dict(
        t=t.astype(np.float64), v=v.astype(np.float64), enhanced=enhanced,
        stops=stops, stop_ends=stop_ends, sig=sig,
    )


def _score_light(
    store: PartitionStore,
    key: LightKey,
    st: dict,
    cfg: PipelineConfig,
    periods: np.ndarray,
    in_band: np.ndarray,
    anchor: float,
    at_time: float,
    phase_anchor: float,
    tel: StageTelemetry,
) -> dict:
    """Pass 2 for one light: cycle selection, red, phase window.

    Mutates and returns ``st``; raises on failure (routed through the
    containment seam by the orchestrator).
    """
    ccfg = cfg.cycle
    with tel.stage("cycle"):
        if not in_band.any():
            raise InsufficientDataError(
                f"window [{anchor}, {at_time}) has no DFT bin inside "
                f"[{ccfg.min_cycle_s}, {ccfg.max_cycle_s}] s"
            )
        cyc = _select_cycle(
            st["t"], st["v"], periods, st["mag"], in_band, ccfg,
            enhanced=st["enhanced"],
            stop_ends=st["stop_ends"] if len(st["stops"]) else None,
            telemetry=tel,
            scan=scan_fold_vec,
        )
        cycle_s = cyc.cycle_s

    with tel.stage("red"):
        interval_s = (
            store.mean_interval(key) if cfg.measure_interval else None
        )
        red = estimate_red_duration(
            st["stops"].duration_s, cycle_s, cfg.red,
            mean_interval_s=interval_s,
        )
        tel.count("red_stops_used", red.n_stops_used)
        tel.count("red_stops_rejected", red.n_stops_rejected)
        red_s = float(np.clip(red.red_s, _MIN_RED_S, 0.9 * cycle_s))

    with tel.stage("superposition"):
        t_ph, v_ph = store.window_samples(
            key, phase_anchor, at_time, cfg.max_sample_dist_m
        )
        if t_ph.shape[0] < 4:
            raise InsufficientDataError(
                f"only {t_ph.shape[0]} samples for superposition in "
                f"window [{phase_anchor}, {at_time})"
            )
        tel.count("samples_phase", int(t_ph.shape[0]))

    # Same store→kernel seam as _prepare_light: the phase-window samples
    # feed cycle_profile_batch, so their dtype is pinned at the boundary.
    st.update(cyc=cyc, cycle_s=cycle_s, red=red, red_s=red_s,
              t_ph=t_ph.astype(np.float64), v_ph=v_ph.astype(np.float64))
    return st


def _batch_moving_averages(
    states: Dict[LightKey, dict],
    profiles: Dict[LightKey, np.ndarray],
    built: List[LightKey],
) -> Dict[LightKey, np.ndarray]:
    """All built lights' circular moving averages in one strided pass.

    Raises on any problem; the orchestrator treats that as "no batched
    moving averages" and lets the change-point step recompute serially.
    """
    windows = [
        int(np.clip(round(states[key]["red_s"] / 1.0),
                    1, profiles[key].shape[0]))
        for key in built
    ]
    ma_list = circular_moving_average_batch(
        [profiles[key] for key in built], windows
    )
    return dict(zip(built, ma_list))


def _assemble_light(
    key: LightKey,
    st: dict,
    profile: np.ndarray,
    ma: Optional[np.ndarray],
    cfg: PipelineConfig,
    phase_anchor: float,
    at_time: float,
    tel: StageTelemetry,
) -> ScheduleEstimate:
    """Pass 3 for one light: change point, refinement, assembly.

    Raises on failure (routed through the containment seam by the
    orchestrator).
    """
    stops, stop_ends = st["stops"], st["stop_ends"]
    cycle_s, red_s = st["cycle_s"], st["red_s"]
    red = st["red"]
    with tel.stage("changepoint"):
        ends_in_cycle = np.mod(stop_ends - phase_anchor, cycle_s)
        change = find_signal_change(
            profile,
            red_s,
            stop_ends_in_cycle=ends_in_cycle if len(stops) else None,
            fusion_weight=cfg.fusion_weight,
            moving_average=ma,
        )

    with tel.stage("refine"):
        red_to_green_abs = phase_anchor + change.red_to_green_s
        if cfg.refine_red:
            refined = refine_red_from_change(
                stops, cycle_s, red_to_green_abs
            )
            if refined is not None:
                red_s = float(np.clip(refined, _MIN_RED_S, 0.9 * cycle_s))
                red = replace(red, red_s=red_s)
                tel.count("red_refined", 1)

    schedule = LightSchedule(
        cycle_s=cycle_s,
        red_s=red_s,
        offset_s=red_to_green_abs - red_s,
    )
    return ScheduleEstimate(
        intersection_id=key[0],
        approach=key[1],
        at_time=at_time,
        schedule=schedule,
        cycle=st["cyc"],
        red=red,
        change=change,
    )


def identify_batch(
    store: PartitionStore,
    at_time: float,
    *,
    config: Optional[PipelineConfig] = None,
    keys: Optional[Sequence[LightKey]] = None,
) -> Tuple[
    Dict[LightKey, ScheduleEstimate],
    Dict[LightKey, LightFailure],
    Dict[LightKey, StageTelemetry],
]:
    """Identify every light at ``at_time`` through the batched kernels.

    ``store`` is a :class:`~repro.trace.store.PartitionStore` (a plain
    partition dict is wrapped on the fly).  Returns
    ``(estimates, failures, telemetry_by_light)`` with the same
    estimate/failure contents as the serial backend: stage structure,
    failure typing, and per-light containment all match, and any light
    the batched path cannot carry (irregular columns, degenerate grid,
    kernel edge case) is re-run through the serial containment path
    rather than aborting the batch.

    ``keys`` restricts the run to a subset of lights (the streaming
    backend re-runs only dirty lights).  Perpendicular-enhancement
    lookups still consult the full store, and every kernel is row-wise
    exact, so each light's estimate is bit-identical whether it runs in
    a subset or in the full city.
    """
    cfg = PipelineConfig() if config is None else config
    store = PartitionStore.from_partitions(store)
    ccfg = cfg.cycle
    keys = sorted(store) if keys is None else sorted(keys)
    anchor = at_time - cfg.window_s
    phase_anchor = at_time - cfg.phase_window_s

    tels: Dict[LightKey, StageTelemetry] = {}
    states: Dict[LightKey, dict] = {}
    fallback: Dict[LightKey, bool] = {}

    # -- per-light pass 1: samples, stops, regularized grid -------------
    for key in keys:
        tel = StageTelemetry()
        tels[key] = tel
        if not store.is_regular(key):
            fallback[key] = True
            continue
        perp_key = partner_of(key)
        state = run_guarded(
            _prepare_light, store, key, perp_key, cfg, anchor, at_time, tel
        )
        if isinstance(state, WorkerError):
            fallback[key] = True
        else:
            states[key] = state

    # -- whole-city DFT -------------------------------------------------
    live = [key for key in keys if key in states]
    periods = in_band = None
    if live:
        sigs = np.stack([states[key]["sig"] for key in live])
        periods, mags = spectra_batch(sigs, ccfg.dt)
        in_band = (periods >= ccfg.min_cycle_s) & (periods <= ccfg.max_cycle_s)
        for i, key in enumerate(live):
            states[key]["mag"] = mags[i]

    # -- per-light pass 2: cycle selection, red, phase window -----------
    for key in live:
        scored = run_guarded(
            _score_light, store, key, states[key], cfg, periods, in_band,
            anchor, at_time, phase_anchor, tels[key],
        )
        if isinstance(scored, WorkerError):
            fallback[key] = True

    # -- whole-city superposition + moving average ----------------------
    phase_keys = [key for key in live if key not in fallback]
    profiles: Dict[LightKey, np.ndarray] = {}
    mas: Dict[LightKey, np.ndarray] = {}
    if phase_keys:
        profs = run_guarded(
            cycle_profile_batch,
            [
                (
                    states[key]["t_ph"], states[key]["v_ph"],
                    states[key]["cycle_s"], phase_anchor,
                )
                for key in phase_keys
            ],
        )
        if isinstance(profs, WorkerError):
            profs = [None] * len(phase_keys)
        built = []
        for key, profile in zip(phase_keys, profs):
            if profile is None:
                fallback[key] = True
            else:
                profiles[key] = profile
                built.append(key)
        if built:
            # With no batched moving averages, pass 3 lets
            # find_signal_change recompute each light's serially.
            got = run_guarded(_batch_moving_averages, states, profiles, built)
            mas = {} if isinstance(got, WorkerError) else got

    # -- per-light pass 3: change point, refinement, assembly -----------
    estimates: Dict[LightKey, ScheduleEstimate] = {}
    failures: Dict[LightKey, LightFailure] = {}
    for key in phase_keys:
        if key in fallback:
            continue
        est = run_guarded(
            _assemble_light, key, states[key], profiles[key], mas.get(key),
            cfg, phase_anchor, at_time, tels[key],
        )
        if isinstance(est, WorkerError):
            fallback[key] = True
        else:
            estimates[key] = est

    # -- serial containment for everything the batch could not carry ----
    for key in keys:
        if key not in fallback:
            continue
        perp_key = partner_of(key)
        perp = store.partition(perp_key) if perp_key in store else None
        _key, est, failure, tel = _identify_one(
            (store.partition(key), perp, at_time, cfg)
        )
        tels[key] = tel
        if est is not None:
            estimates[key] = est
        else:
            failures[key] = failure

    return estimates, failures, tels
