"""Arterial coordination analysis on identified schedules.

The paper's introduction argues that city-scale schedule knowledge lets
"transportation researchers investigate the correlation between traffic
light scheduling and traffic flow, and then make optimization
accordingly".  This module provides the standard analysis for that:
given the (identified) schedules of consecutive lights along an
arterial and the free-flow travel times between them, compute the
**green-wave bandwidth** — the share of the upstream green during which
a departing platoon also meets green downstream.

Everything operates on plain :class:`~repro.lights.schedule.LightSchedule`
objects, so it runs identically on ground truth and on estimates coming
out of :func:`repro.core.pipeline.identify_many`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .._util import check_nonnegative, circular_diff
from ..lights.schedule import LightSchedule

__all__ = [
    "relative_offset",
    "progression_bandwidth",
    "LinkProgression",
    "corridor_report",
]


def relative_offset(a: LightSchedule, b: LightSchedule, tol_s: float = 2.0) -> float:
    """Signed offset of ``b``'s green start relative to ``a``'s.

    Both lights must share a cycle length within ``tol_s`` (coordinated
    arterials do; it is also the §V.B intersection invariant).  The
    result lies in ``[-cycle/2, cycle/2)``.
    """
    if abs(a.cycle_s - b.cycle_s) > tol_s:
        raise ValueError(
            f"cycles differ ({a.cycle_s:.1f} vs {b.cycle_s:.1f} s); "
            "offsets are only meaningful on a shared cycle"
        )
    ga = a.offset_s + a.red_s  # green start instants
    gb = b.offset_s + b.red_s
    return float(circular_diff(gb, ga, a.cycle_s))


def progression_bandwidth(
    upstream: LightSchedule,
    downstream: LightSchedule,
    travel_time_s: float,
    *,
    resolution_s: float = 1.0,
) -> float:
    """Fraction of the upstream green that progresses into green.

    A vehicle released at upstream-green instant ``t`` reaches the
    downstream stop line at ``t + travel_time_s``; the bandwidth is the
    measure of release instants for which the downstream light is also
    green, normalized by the upstream green duration.  1.0 is a perfect
    green wave, ~``downstream.green_s / cycle`` is what uncoordinated
    (random-offset) lights give on average.
    """
    check_nonnegative("travel_time_s", travel_time_s)
    g0 = upstream.offset_s + upstream.red_s  # a green start
    probes = np.arange(0.0, upstream.green_s, resolution_s)
    release = g0 + probes
    arrive = release + travel_time_s
    return float(np.mean(downstream.is_green(arrive)))


@dataclass(frozen=True)
class LinkProgression:
    """Coordination summary of one arterial link."""

    upstream_index: int
    downstream_index: int
    travel_time_s: float
    offset_s: float
    bandwidth: float

    def row(self) -> str:
        return (
            f"link {self.upstream_index}->{self.downstream_index}: "
            f"travel {self.travel_time_s:.0f}s offset {self.offset_s:+.0f}s "
            f"bandwidth {100 * self.bandwidth:.0f}%"
        )


def corridor_report(
    schedules: Sequence[LightSchedule],
    travel_times_s: Sequence[float],
) -> List[LinkProgression]:
    """Per-link progression analysis along a corridor.

    ``schedules[i]`` and ``schedules[i+1]`` bound link ``i`` whose
    free-flow travel time is ``travel_times_s[i]``.
    """
    if len(schedules) < 2:
        raise ValueError("a corridor needs at least two lights")
    if len(travel_times_s) != len(schedules) - 1:
        raise ValueError(
            f"need {len(schedules) - 1} travel times, got {len(travel_times_s)}"
        )
    out: List[LinkProgression] = []
    for i, tt in enumerate(travel_times_s):
        up, down = schedules[i], schedules[i + 1]
        try:
            off = relative_offset(up, down)
        except ValueError:
            off = float("nan")
        out.append(
            LinkProgression(
                upstream_index=i,
                downstream_index=i + 1,
                travel_time_s=float(tt),
                offset_s=off,
                bandwidth=progression_bandwidth(up, down, float(tt)),
            )
        )
    return out
