"""Stop-event extraction from low-frequency taxi reports (§VI.A).

A taxi waiting at a red light reports the *same position* several times
in a row (the red is ~4.5× longer than the mean update interval, so at
least two updates land inside a wait).  A **stop event** is a maximal
streak of consecutive same-taxi reports whose pairwise displacement
stays under a GPS-noise-aware threshold; its duration is the time
between the streak's first and last report.

Each event also records whether the passenger flag flipped inside it —
the paper discards those (passenger pick-up/drop-off, not a red light)
— and how far from the stop line it happened, so estimators can ignore
curbside stops far upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import check_positive
from ..matching.partition import LightPartition
from ..network.geometry import LocalFrame

__all__ = ["StopEvents", "extract_stops"]


@dataclass(frozen=True)
class StopEvents:
    """Columnar stop events; one row per event."""

    taxi_id: np.ndarray
    t_start: np.ndarray
    t_end: np.ndarray
    passenger_changed: np.ndarray
    dist_to_stopline_m: np.ndarray
    n_records: np.ndarray

    def __len__(self) -> int:
        return int(self.taxi_id.shape[0])

    @property
    def duration_s(self) -> np.ndarray:
        """Observed stop durations (end − start)."""
        return self.t_end - self.t_start

    def subset(self, index: np.ndarray) -> "StopEvents":
        return StopEvents(
            taxi_id=self.taxi_id[index],
            t_start=self.t_start[index],
            t_end=self.t_end[index],
            passenger_changed=self.passenger_changed[index],
            dist_to_stopline_m=self.dist_to_stopline_m[index],
            n_records=self.n_records[index],
        )

    def time_window(self, t0: float, t1: float) -> "StopEvents":
        """Events that *start* within ``[t0, t1)``."""
        return self.subset((self.t_start >= t0) & (self.t_start < t1))

    @classmethod
    def empty(cls) -> "StopEvents":
        z = np.empty(0)
        zi = z.astype(np.int64)
        return cls(zi, z, z, z.astype(bool), z, zi)


def extract_stops(
    partition: LightPartition,
    frame: Optional[LocalFrame] = None,
    *,
    stationary_eps_m: float = 20.0,
    max_dist_to_stopline_m: float = 150.0,
    speed_eps_kmh: float = 8.0,
) -> StopEvents:
    """Find stop events in one light's partition.

    Parameters
    ----------
    partition:
        Per-light record block (time-sorted).
    stationary_eps_m:
        Max displacement between consecutive reports to still count as
        "same position" (absorbs routine GPS jitter).
    max_dist_to_stopline_m:
        Events whose mean position is farther upstream are dropped —
        they can't be a wait at *this* light's queue.
    speed_eps_kmh:
        Both reports of a stationary pair must also read (near-)zero
        speed; the odometer field is what makes 20 m of GPS noise safe.
    """
    check_positive("stationary_eps_m", stationary_eps_m)
    check_positive("max_dist_to_stopline_m", max_dist_to_stopline_m)
    frame = frame if frame is not None else LocalFrame()

    trace = partition.trace
    n = len(trace)
    if n < 2:
        return StopEvents.empty()

    order = np.lexsort((trace.t, trace.taxi_id))
    tid = trace.taxi_id[order]
    t = trace.t[order]
    lon, lat = trace.lon[order], trace.lat[order]
    speed = trace.speed_kmh[order]
    passenger = trace.passenger[order]
    dist_stop = partition.dist_to_stopline_m[order]

    x, y = frame.to_local(lon, lat)
    same_taxi = tid[1:] == tid[:-1]
    disp = np.hypot(np.diff(x), np.diff(y))
    slow = (speed[1:] <= speed_eps_kmh) & (speed[:-1] <= speed_eps_kmh)
    still_pair = same_taxi & (disp <= stationary_eps_m) & slow

    if not still_pair.any():
        return StopEvents.empty()

    # Maximal runs of consecutive True pairs → record ranges [s, e+1].
    padded = np.concatenate([[False], still_pair, [False]])
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    run_starts, run_ends = edges[0::2], edges[1::2]  # pair-index ranges

    rows = []
    for s, e in zip(run_starts, run_ends):
        first, last = s, e  # records s .. e inclusive of pair e-1 → e
        recs = slice(first, last + 1)
        mean_d = float(dist_stop[recs].mean())
        if mean_d > max_dist_to_stopline_m:
            continue
        pas = passenger[recs]
        rows.append(
            (
                int(tid[first]),
                float(t[first]),
                float(t[last]),
                bool((pas != pas[0]).any()),
                mean_d,
                int(last - first + 1),
            )
        )
    if not rows:
        return StopEvents.empty()
    cols = list(zip(*rows))
    return StopEvents(
        taxi_id=np.asarray(cols[0], dtype=np.int64),
        t_start=np.asarray(cols[1], dtype=np.float64),
        t_end=np.asarray(cols[2], dtype=np.float64),
        passenger_changed=np.asarray(cols[3], dtype=bool),
        dist_to_stopline_m=np.asarray(cols[4], dtype=np.float64),
        n_records=np.asarray(cols[5], dtype=np.int64),
    )
