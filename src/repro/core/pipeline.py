"""End-to-end per-light identification (Fig. 4's flow chart).

Chains the paper's stages for one traffic light at one point in time:

    partitioned records ─→ cycle length (DFT, §V, optionally enhanced
    by the perpendicular direction, §V.B; sharpened by epoch folding)
    ─→ red duration (border-interval, §VI.A) ─→ superposition +
    sliding-window change point (§VI.B/C) ─→ a fitted absolute-time
    LightSchedule.

``identify_many`` fans the per-light work out over a process pool —
the parallelism the paper gets for free from per-light partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._util import check_positive
from ..lights.schedule import LightSchedule
from ..matching.partition import LightKey, LightPartition, partner_of
from ..obs import LightFailure, RunReport, StageTelemetry
from ..parallel.pool import WorkerError, get_common, pmap
from ..trace.store import PartitionStore
from .changepoint import find_signal_change
from .cycle import CycleConfig, identify_cycle_from_samples
from .enhancement import choose_primary, enhance_samples
from .redlight import RedConfig, estimate_red_duration, refine_red_from_change
from .signal_types import InsufficientDataError, ScheduleEstimate
from .stops import extract_stops
from .superposition import cycle_profile

__all__ = [
    "PipelineConfig",
    "identify_light",
    "identify_many",
    "measured_mean_interval",
    "BACKENDS",
]

#: Execution backends accepted by :func:`identify_many`.
BACKENDS = ("serial", "process", "batched", "stream", "shard")

#: Floor for the red-duration estimate: one ``cycle_profile`` bin
#: (``bin_s=1.0``).  The border-interval estimator can return ~0 on
#: degenerate histograms, and ``find_signal_change`` requires a strictly
#: positive sliding-window length.
_MIN_RED_S = 1.0


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of the full identification pipeline.

    Parameters
    ----------
    window_s:
        How much history feeds the cycle DFT and the superposition
        (paper examples use 30–60 min).
    stop_window_s:
        How much history feeds the stop-duration statistics; red
        durations change rarely, so a longer window is safe and much
        more accurate on sparse lights.
    phase_window_s:
        How much history feeds the superposition/change-point step.
        Shorter than ``window_s``: a period error δc smears the folded
        phase by (window/cycle)·δc, so the phase estimate prefers a
        tighter window than the frequency estimate.
    max_sample_dist_m:
        Only reports within this distance of the stop line feed the
        speed signal — upstream free-flow traffic is not modulated by
        the light and only adds noise.
    cycle, red:
        Stage configurations.
    use_enhancement:
        Mirror the perpendicular direction's samples when the primary
        direction is sparse (§V.B).
    enhancement_threshold:
        Enhancement kicks in when the primary window holds fewer raw
        samples than this.
    measure_interval:
        Use the partition's own measured mean update interval as the
        red histogram's bin width instead of the configured constant.
    fusion_weight:
        Weight of the stop-end density in the change-point fusion
        (0 = the paper-literal sliding-window detector alone).
    refine_red:
        Re-estimate the red duration from stops aligned with the
        identified red→green instant (one-sided truncation only).
    """

    window_s: float = 1800.0
    stop_window_s: float = 3600.0
    phase_window_s: float = 1200.0
    max_sample_dist_m: float = 150.0
    cycle: CycleConfig = field(default_factory=CycleConfig)
    red: RedConfig = field(default_factory=RedConfig)
    use_enhancement: bool = True
    enhancement_threshold: int = 60
    measure_interval: bool = True
    fusion_weight: float = 0.5
    refine_red: bool = True

    def __post_init__(self) -> None:
        check_positive("window_s", self.window_s)
        check_positive("stop_window_s", self.stop_window_s)
        check_positive("phase_window_s", self.phase_window_s)
        check_positive("max_sample_dist_m", self.max_sample_dist_m)


def measured_mean_interval(partition: LightPartition, default_s: float = 20.14) -> float:
    """Mean time between consecutive same-taxi reports in a partition.

    Falls back to ``default_s`` (the paper's fleet-wide figure) when the
    partition holds no consecutive pairs.
    """
    trace = partition.trace
    if len(trace) < 2:
        return default_s
    order = np.lexsort((trace.t, trace.taxi_id))
    tid = trace.taxi_id[order]
    t = trace.t[order]
    same = tid[1:] == tid[:-1]
    dt = np.diff(t)[same]
    dt = dt[(dt > 0) & (dt <= 120.0)]  # ignore cross-visit gaps
    return float(dt.mean()) if dt.size else default_s


def _window_samples(
    partition: LightPartition, t0: float, t1: float, max_dist_m: float
) -> Tuple[np.ndarray, np.ndarray]:
    """(t, speed) samples near the stop line within a window."""
    keep = (
        (partition.trace.t >= t0)
        & (partition.trace.t < t1)
        & (partition.dist_to_stopline_m <= max_dist_m)
    )
    # Trace→kernel seam: the windowed samples flow straight into the
    # parity kernels, so their dtype is pinned here (zero-copy on the
    # trace's float64 columns; REP017 proves the chain stays float64).
    return (
        np.asarray(partition.trace.t[keep], dtype=np.float64),
        np.asarray(partition.trace.speed_kmh[keep], dtype=np.float64),
    )


def identify_light(
    partition: LightPartition,
    at_time: float,
    *,
    perpendicular: Optional[LightPartition] = None,
    config: Optional[PipelineConfig] = None,
    telemetry: Optional[StageTelemetry] = None,
) -> ScheduleEstimate:
    """Identify one light's schedule as of ``at_time``.

    Parameters
    ----------
    partition:
        The target light's records (its own approach group).
    perpendicular:
        The crossing approach group at the same intersection, used for
        §V.B enhancement on sparse windows.
    telemetry:
        Optional :class:`~repro.obs.telemetry.StageTelemetry` that
        accumulates per-stage wall time and pipeline counters; its
        ``last_stage`` names the stage that raised when this call
        fails, which is how ``identify_many`` attributes failures.

    Raises
    ------
    InsufficientDataError:
        When even the enhanced window can't support the DFT, or too few
        stop events survive filtering.
    """
    # A fresh default per call: a def-time PipelineConfig() instance
    # would be shared by every call in the process (and by every caller
    # that mutates it through object.__setattr__).
    config = PipelineConfig() if config is None else config
    tel = telemetry if telemetry is not None else StageTelemetry()
    anchor = at_time - config.window_s

    with tel.stage("samples"):
        t_own, v_own = _window_samples(
            partition, anchor, at_time, config.max_sample_dist_m
        )
        t, v = t_own, v_own
        tel.count("samples_primary", int(t_own.shape[0]))

        enhanced = False
        if (
            config.use_enhancement
            and perpendicular is not None
            and t.shape[0] < config.enhancement_threshold
        ):
            tp, vp = _window_samples(
                perpendicular, anchor, at_time, config.max_sample_dist_m
            )
            if tp.size:
                t1_, v1_, t2_, v2_ = choose_primary(t, v, tp, vp)
                t, v = enhance_samples(t1_, v1_, t2_, v2_)
                enhanced = True
                tel.count("lights_enhanced", 1)
                tel.count("samples_mirrored", int(tp.shape[0]))

    with tel.stage("stops"):
        stops_all = extract_stops(partition).time_window(
            at_time - config.stop_window_s, at_time
        )
        tel.count("stops_extracted", len(stops_all))
        stops = (
            stops_all.subset(~stops_all.passenger_changed)
            if len(stops_all)
            else stops_all
        )
        tel.count("stops_kept", len(stops))
        # Each stop's last stationary report precedes the true green onset
        # by ~half that taxi's report gap on average; corrected end times
        # anchor both the cycle search (comb score) and the change point.
        gaps = stops.duration_s / np.maximum(stops.n_records - 1, 1)
        stop_ends = stops.t_end + gaps / 2.0

    with tel.stage("cycle"):
        cyc = identify_cycle_from_samples(
            t, v, anchor, at_time, config.cycle, enhanced=enhanced,
            stop_ends=stop_ends if len(stops) else None,
            telemetry=tel,
        )
        cycle_s = cyc.cycle_s

    with tel.stage("red"):
        interval_s = (
            measured_mean_interval(partition) if config.measure_interval else None
        )
        red = estimate_red_duration(
            stops.duration_s, cycle_s, config.red, mean_interval_s=interval_s
        )
        tel.count("red_stops_used", red.n_stops_used)
        tel.count("red_stops_rejected", red.n_stops_rejected)
        # Clamp to [one profile bin, 0.9·cycle]: keeps the schedule
        # well-formed and keeps find_signal_change's check_positive
        # satisfied when the border-interval estimate degenerates to ~0.
        red_s = float(np.clip(red.red_s, _MIN_RED_S, 0.9 * cycle_s))

    with tel.stage("superposition"):
        # Superpose the *target direction's* own samples (not the mirrored
        # ones: the perpendicular direction has the opposite phase) over
        # the tighter phase window.
        phase_anchor = at_time - config.phase_window_s
        t_ph, v_ph = _window_samples(
            partition, phase_anchor, at_time, config.max_sample_dist_m
        )
        if t_ph.shape[0] < 4:
            raise InsufficientDataError(
                f"only {t_ph.shape[0]} samples for superposition in window "
                f"[{phase_anchor}, {at_time})"
            )
        tel.count("samples_phase", int(t_ph.shape[0]))
        profile = cycle_profile(t_ph, v_ph, cycle_s, phase_anchor)

    with tel.stage("changepoint"):
        ends_in_cycle = np.mod(stop_ends - phase_anchor, cycle_s)
        change = find_signal_change(
            profile,
            red_s,
            stop_ends_in_cycle=ends_in_cycle if len(stops) else None,
            fusion_weight=config.fusion_weight,
        )

    with tel.stage("refine"):
        red_to_green_abs = phase_anchor + change.red_to_green_s
        if config.refine_red:
            refined = refine_red_from_change(stops, cycle_s, red_to_green_abs)
            if refined is not None:
                red_s = float(np.clip(refined, _MIN_RED_S, 0.9 * cycle_s))
                red = replace(red, red_s=red_s)
                tel.count("red_refined", 1)

    schedule = LightSchedule(
        cycle_s=cycle_s,
        red_s=red_s,
        # the detector pins the red→green instant; red counts back from it
        offset_s=red_to_green_abs - red_s,
    )
    return ScheduleEstimate(
        intersection_id=partition.intersection_id,
        approach=partition.approach,
        at_time=at_time,
        schedule=schedule,
        cycle=cyc,
        red=red,
        change=change,
    )


def _identify_one(
    args: Tuple[LightPartition, Optional[LightPartition], float, "PipelineConfig"],
) -> Tuple[LightKey, Optional[ScheduleEstimate], Optional[LightFailure], StageTelemetry]:
    """Worker: identify one light, containing *every* per-light failure.

    A citywide fan-out must never let one poisoned partition abort the
    pool: any exception — not just the expected
    :class:`InsufficientDataError` — becomes a typed
    :class:`~repro.obs.report.LightFailure` carrying the exception
    class, the pipeline stage that raised, and the message.  The
    telemetry collected up to the crash comes back either way.
    """
    partition, perpendicular, at_time, config = args
    tel = StageTelemetry()
    try:
        est = identify_light(
            partition, at_time,
            perpendicular=perpendicular, config=config, telemetry=tel,
        )
        return partition.key, est, None, tel
    except Exception as exc:  # repro: allow[REP002] - per-light containment seam
        return partition.key, None, LightFailure.from_exception(exc, tel.last_stage), tel


def _identify_one_stored(
    args: Tuple[LightKey, Optional[LightKey], float, "PipelineConfig"],
) -> Tuple[LightKey, Optional[ScheduleEstimate], Optional[LightFailure], StageTelemetry]:
    """Worker for the store-backed process backend.

    The job carries only ``(key, perp_key, at_time, config)``; the
    partitions come out of the :class:`~repro.trace.store.PartitionStore`
    the pool shipped once per worker via ``pmap(..., common=store)``.
    """
    key, perp_key, at_time, config = args
    store = get_common()
    perp = (
        store.partition(perp_key)
        if perp_key is not None and perp_key in store
        else None
    )
    return _identify_one((store.partition(key), perp, at_time, config))


def _resolve_backend(backend: Optional[str], serial: bool) -> str:
    if backend is None:
        return "serial" if serial else "process"
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def identify_many(
    partitions: Dict[LightKey, LightPartition],
    at_time: float,
    *,
    config: Optional[PipelineConfig] = None,
    max_workers: Optional[int] = None,
    serial: bool = False,
    report: Optional[RunReport] = None,
    backend: Optional[str] = None,
    store: Optional[PartitionStore] = None,
) -> Tuple[Dict[LightKey, ScheduleEstimate], Dict[LightKey, LightFailure]]:
    """Identify every partitioned light at ``at_time`` in parallel.

    Returns ``(estimates, failures)``.  Every light that produced no
    estimate — from an expectedly sparse window up to a genuinely
    poisoned partition — lands in *failures* as a
    :class:`~repro.obs.report.LightFailure` (exception class + pipeline
    stage + message); one bad partition never aborts the others.

    ``backend`` selects the execution strategy (default: ``"serial"``
    when ``serial=True``, else ``"process"``):

    * ``"serial"`` — the in-process reference path;
    * ``"process"`` — per-light fan-out over a process pool; with a
      ``store`` (or a :class:`~repro.trace.store.PartitionStore` as
      ``partitions``) the store ships once per worker instead of one
      partition pickle per job;
    * ``"batched"`` — :func:`repro.core.batch.identify_batch`: the
      whole city runs through shared vectorized kernels (one FFT, one
      fold-and-scan, one moving-average pass), bit-for-bit equal to the
      serial backend, with per-light serial fallback on any failure;
    * ``"stream"`` — a one-shot :class:`repro.stream.StreamSession`
      (ingest everything as a single chunk, then evaluate).  Matches
      the batched backend bit-for-bit; its point is the incremental
      API — hold a session yourself to feed chunks and re-evaluate
      only dirty lights;
    * ``"shard"`` — :func:`repro.core.shard.identify_shard`: the
      batched kernels sharded by light partition across a process
      pool, with the column store spilled to mmap-backed files so each
      worker receives only a metadata handle (zero column bytes
      pickled).  Bit-for-bit equal to ``"batched"``; the scaling
      backend for large cities on multi-core hosts.

    ``partitions`` may be a plain dict or a ``PartitionStore``; passing
    the same store across repeated calls (one per time spot) reuses its
    cached stop events, report intervals, and speed grids.

    Pass a :class:`~repro.obs.report.RunReport` as ``report`` to
    aggregate per-stage wall times, pipeline counters, and the failure
    map; repeated calls (e.g. one per time spot) keep folding into the
    same report.
    """
    # The only clock in this module is the report's own timer: REP004
    # keeps repro.core free of wall-clock reads, so run timing lives in
    # repro.obs and is engaged only when a report asks for it.
    if report is not None:
        with report.run_timer():
            return _identify_many_run(
                partitions, at_time, config=config, max_workers=max_workers,
                serial=serial, report=report, backend=backend, store=store,
            )
    return _identify_many_run(
        partitions, at_time, config=config, max_workers=max_workers,
        serial=serial, report=report, backend=backend, store=store,
    )


def _identify_many_run(
    partitions: Dict[LightKey, LightPartition],
    at_time: float,
    *,
    config: Optional[PipelineConfig],
    max_workers: Optional[int],
    serial: bool,
    report: Optional[RunReport],
    backend: Optional[str],
    store: Optional[PartitionStore],
) -> Tuple[Dict[LightKey, ScheduleEstimate], Dict[LightKey, LightFailure]]:
    """The fan-out body of :func:`identify_many` (timing handled there)."""
    config = PipelineConfig() if config is None else config
    chosen = _resolve_backend(backend, serial)

    if chosen == "batched":
        from .batch import identify_batch

        src = store if store is not None else partitions
        src = PartitionStore.from_partitions(src)
        estimates, failures = {}, {}
        b_est, b_fail, tels = identify_batch(src, at_time, config=config)
        estimates.update(b_est)
        failures.update(b_fail)
        if report is not None:
            for key in sorted(tels):
                report.record_light(key, tels[key], failures.get(key))
        return estimates, failures

    if chosen == "shard":
        from .shard import identify_shard

        src = store if store is not None else partitions
        s_est, s_fail, tels, shard_stats = identify_shard(
            src, at_time, config=config, max_workers=max_workers
        )
        if report is not None:
            for key in sorted(tels):
                report.record_light(key, tels[key], s_fail.get(key))
            for stats in shard_stats:
                report.record_shard(stats)
        return s_est, s_fail

    if chosen == "stream":
        # One-shot seam over the incremental subsystem: everything
        # ingests as a single chunk, then one evaluation runs.  Session
        # telemetry (per-light and per-chunk) folds into `report`.
        from ..stream.session import StreamSession

        src = store if store is not None else partitions
        session = StreamSession(config=config, report=report, monitor=False)
        session.ingest(
            {key: src[key] for key in sorted(src)}, refresh=False
        )
        return session.evaluate(at_time)

    shared = store
    if shared is None and isinstance(partitions, PartitionStore):
        shared = partitions
    source = shared if shared is not None else partitions

    if shared is not None and chosen == "process":
        keys = sorted(shared)
        jobs_stored = []
        for key in keys:
            perp_key = partner_of(key)
            jobs_stored.append(
                (key, perp_key if perp_key in shared else None, at_time, config)
            )
        results = pmap(
            _identify_one_stored, jobs_stored, max_workers=max_workers,
            on_error="return", common=shared,
        )
    else:
        jobs = []
        for key in sorted(source):
            perp = source.get(partner_of(key))
            jobs.append((source[key], perp, at_time, config))
        keys = [job[0].key for job in jobs]
        results = pmap(
            _identify_one, jobs, max_workers=max_workers,
            serial=chosen == "serial", on_error="return",
        )
    estimates: Dict[LightKey, ScheduleEstimate] = {}
    failures: Dict[LightKey, LightFailure] = {}
    for key, res in zip(keys, results):
        if isinstance(res, WorkerError):
            # Even the containment wrapper died (e.g. the result failed
            # to pickle); attribute it to the worker boundary.
            failure = LightFailure(
                error_type=res.error_type, stage="worker", message=res.message
            )
            failures[key] = failure
            if report is not None:
                report.record_light(key, None, failure)
            continue
        _key, est, failure, tel = res
        if est is not None:
            estimates[key] = est
        else:
            failures[key] = failure
        if report is not None:
            report.record_light(key, tel, failure)
    return estimates, failures
