"""Result types and errors shared by the identification algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..lights.schedule import LightSchedule

__all__ = [
    "InsufficientDataError",
    "CycleEstimate",
    "RedEstimate",
    "ChangePointEstimate",
    "ScheduleEstimate",
]


class InsufficientDataError(ValueError):
    """Raised when a window holds too few samples to run an algorithm.

    The paper's traces are unbalanced (Table II: 25× rate differences);
    idle windows are expected and callers treat this error as "no
    estimate now", not as a bug.
    """


@dataclass(frozen=True)
class CycleEstimate:
    """Output of cycle-length identification (§V).

    Attributes
    ----------
    cycle_s:
        Estimated cycle length, seconds.
    peak_index:
        Winning DFT bin (cycles per window).
    peak_magnitude:
        Magnitude of the winning bin.
    quality:
        Peak magnitude over the median in-band magnitude; larger is a
        cleaner periodicity (used by the monitor to down-weight noisy
        windows).
    n_samples:
        Raw (pre-interpolation) sample count in the window.
    enhanced:
        Whether intersection-based enhancement supplied extra samples.
    """

    cycle_s: float
    peak_index: int
    peak_magnitude: float
    quality: float
    n_samples: int
    enhanced: bool = False


@dataclass(frozen=True)
class RedEstimate:
    """Output of red-light duration identification (§VI.A).

    ``bin_edges``/``bin_counts`` expose the stop-duration histogram so
    evaluation code can plot the Fig. 9 panels.
    """

    red_s: float
    border_bin: int
    bin_edges: np.ndarray
    bin_counts: np.ndarray
    n_stops_used: int
    n_stops_rejected: int


@dataclass(frozen=True)
class ChangePointEstimate:
    """Output of signal-change identification (§VI.C).

    Times are *in-cycle* seconds relative to the fold anchor.
    """

    green_to_red_s: float
    red_to_green_s: float
    moving_average: np.ndarray
    profile: np.ndarray


@dataclass(frozen=True)
class ScheduleEstimate:
    """Full identified scheduling of one light at one time point.

    ``schedule`` packages (cycle, red, offset) as an absolute-time
    :class:`~repro.lights.schedule.LightSchedule`, directly comparable
    with ground truth.
    """

    intersection_id: int
    approach: str
    at_time: float
    schedule: LightSchedule
    cycle: CycleEstimate
    red: RedEstimate
    change: ChangePointEstimate

    @property
    def cycle_s(self) -> float:
        return self.schedule.cycle_s

    @property
    def red_s(self) -> float:
        return self.schedule.red_s

    @property
    def green_s(self) -> float:
        return self.schedule.green_s

    def row(self) -> str:
        """One printable summary line."""
        return (
            f"light=({self.intersection_id},{self.approach}) t={self.at_time:.0f} "
            f"cycle={self.cycle_s:.1f}s red={self.red_s:.1f}s green={self.green_s:.1f}s "
            f"g2r@{self.schedule.green_to_red_in_cycle:.1f}s quality={self.cycle.quality:.1f}"
        )
