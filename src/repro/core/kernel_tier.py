"""The sanctioned dispatch seam between kernel tiers.

The identification kernels ship in two tiers:

* **exact** — the pure-NumPy float64 kernels in the parity files
  (``cycle``/``superposition``/``changepoint``/``batch``), pinned
  bit-for-bit by the golden fixtures and the serial/batched/stream
  parity suites.
* **tolerance** — the (future) compiled tier: kernels marked with a
  trailing ``# repro: tolerance[ulp=N]`` comment on their ``def``
  line, declaring that their result may diverge from the exact kernel
  by at most N units in the last place.  A compiled ``fold_zscore``
  (Numba / C, fused multiply-adds, different summation tree) cannot
  promise the exact tier's last bit — the marker makes the relaxation
  explicit and machine-checkable.

REP019 enforces the boundary statically: *only this module* may call
or reference a tolerance-marked function, nothing inside a parity
file may carry the marker, and unmarked code calling marked code
anywhere else in the tree is a finding.  Callers opt into the relaxed
tier solely through :func:`resolve_kernel`'s explicit ``tier=``
argument — golden-fixture and parity-oracle entry points, which never
pass it, therefore cannot reach tolerance-tier code on any path.

The tolerance implementations below are placeholders that delegate to
the exact kernels (a 0-ULP "relaxation"), so the seam, the marker
grammar, and the REP019 gate are all exercised by the real tree
before the first compiled kernel lands.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .cycle import fold_zscore
from .superposition import cycle_profile

__all__ = ["EXACT_TIER", "TOLERANCE_TIER", "KERNEL_TIERS", "resolve_kernel"]

#: Tier names accepted by :func:`resolve_kernel`.
EXACT_TIER = "exact"
TOLERANCE_TIER = "tolerance"
KERNEL_TIERS: Tuple[str, str] = (EXACT_TIER, TOLERANCE_TIER)


def _fold_zscore_tolerant(  # repro: tolerance[ulp=2]
    t: np.ndarray, v: np.ndarray, cycle_s: float, bin_s: float = 4.0
) -> float:
    """Tolerance-tier epoch-folding score (compiled-kernel slot).

    Declared budget: 2 ULP against :func:`repro.core.cycle.fold_zscore`
    — the headroom a fused-multiply-add variance accumulation needs.
    Delegates to the exact kernel until the compiled version lands.
    """
    return fold_zscore(t, v, cycle_s, bin_s)


def _cycle_profile_tolerant(  # repro: tolerance[ulp=1]
    t: np.ndarray, v: np.ndarray, cycle_s: float, anchor: float
) -> np.ndarray:
    """Tolerance-tier superposition profile (compiled-kernel slot).

    Declared budget: 1 ULP against
    :func:`repro.core.superposition.cycle_profile` (a reassociated
    bincount sum).  Delegates to the exact kernel until then.
    """
    return cycle_profile(t, v, cycle_s, anchor)


#: kernel name -> tier -> implementation.  The exact column is the
#: parity-pinned implementation; the tolerance column is the relaxed
#: slot the compiled tier fills in.
_KERNELS: Dict[str, Dict[str, Callable[..., object]]] = {
    "fold_zscore": {
        EXACT_TIER: fold_zscore,
        TOLERANCE_TIER: _fold_zscore_tolerant,
    },
    "cycle_profile": {
        EXACT_TIER: cycle_profile,
        TOLERANCE_TIER: _cycle_profile_tolerant,
    },
}


def resolve_kernel(name: str, *, tier: str = EXACT_TIER) -> Callable[..., object]:
    """Return the *name* kernel implementation for *tier*.

    The default is always the exact float64 tier; relaxed kernels are
    reached only by passing ``tier="tolerance"`` explicitly, which is
    the "explicit flag" of the ROADMAP's compiled-kernel item.  Parity
    suites and golden fixtures never pass it, so their call chains
    stay inside the exact tier — statically guaranteed by REP019.
    """
    if tier not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}")
    try:
        return _KERNELS[name][tier]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(_KERNELS)}") from None
