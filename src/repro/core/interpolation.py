"""Time-domain regularization of sparse speed samples (§V.A, Fig. 6).

Raw taxi updates are irregular (data missing) and several taxis may
report in the same second on the same approach (data redundancy).  The
paper's fix, reproduced here:

1. bucket samples to a 1 Hz grid, replacing same-second collisions with
   their **mean**;
2. **spline-interpolate** the missing seconds to get a smooth signal.

The interpolated speed may go negative; as the paper notes, that is
harmless because only the *frequency* of the signal matters downstream,
so no clamping is applied.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.interpolate import CubicSpline, interp1d

from .._util import check_1d, check_positive
from .signal_types import InsufficientDataError

__all__ = ["bucket_mean", "regularize"]

#: Interpolation kinds accepted by :func:`regularize`.
KINDS = ("spline", "linear", "previous")


def bucket_mean(
    t: np.ndarray, v: np.ndarray, t0: float, t1: float, dt: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Average samples falling into the same ``dt`` bucket of ``[t0, t1)``.

    Returns ``(bucket_times, bucket_means)`` for non-empty buckets only;
    bucket time is the bucket's left edge.  Fully vectorized
    (``bincount`` of sums over counts).
    """
    t = check_1d("t", t)
    v = check_1d("v", v)
    if t.shape != v.shape:
        raise ValueError("t and v must have equal length")
    check_positive("dt", dt)
    if t1 <= t0:
        raise ValueError("t1 must exceed t0")
    keep = (t >= t0) & (t < t1)
    t, v = t[keep], v[keep]
    if t.size == 0:
        return np.empty(0), np.empty(0)
    n_buckets = int(np.ceil((t1 - t0) / dt))
    idx = np.minimum(((t - t0) / dt).astype(np.int64), n_buckets - 1)
    sums = np.bincount(idx, weights=v, minlength=n_buckets)
    counts = np.bincount(idx, minlength=n_buckets)
    filled = counts > 0
    means = sums[filled] / counts[filled]
    times = t0 + np.flatnonzero(filled) * dt
    return times, means


def regularize(
    t: np.ndarray,
    v: np.ndarray,
    t0: float,
    t1: float,
    *,
    dt: float = 1.0,
    kind: str = "spline",
    min_samples: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample irregular samples onto a dense grid over ``[t0, t1)``.

    Parameters
    ----------
    t, v:
        Sample times (absolute seconds) and values (speed).
    t0, t1:
        Window; grid points are ``t0, t0+dt, …``.
    dt:
        Grid step (1 s in the paper).
    kind:
        ``"spline"`` (paper's choice, C² cubic), ``"linear"``, or
        ``"previous"`` (zero-order hold) — the latter two exist for the
        ablation benchmark.
    min_samples:
        Minimum distinct buckets required; below this the window can't
        support interpolation and :class:`InsufficientDataError` is
        raised.

    Returns
    -------
    (grid, values):
        ``grid`` has ``ceil((t1-t0)/dt)`` points.  Outside the convex
        hull of the samples, values are held at the edge sample (splines
        explode when extrapolated; a constant is the honest choice).
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    bt, bv = bucket_mean(t, v, t0, t1, dt)
    if bt.size < min_samples:
        raise InsufficientDataError(
            f"window [{t0}, {t1}) has {bt.size} non-empty buckets; "
            f"need at least {min_samples}"
        )
    grid = t0 + np.arange(int(np.ceil((t1 - t0) / dt))) * dt
    if kind == "spline":
        f = CubicSpline(bt, bv, extrapolate=False)
        out = f(grid)
    elif kind == "linear":
        f = interp1d(bt, bv, kind="linear", bounds_error=False, fill_value=np.nan)
        out = f(grid)
    else:  # previous
        f = interp1d(
            bt, bv, kind="previous", bounds_error=False, fill_value=np.nan
        )
        out = f(grid)
    # hold edges constant outside the sampled span
    out = np.where(grid < bt[0], bv[0], out)
    out = np.where(grid > bt[-1], bv[-1], out)
    nan = np.isnan(out)
    if nan.any():  # interior NaNs can only come from interp1d edge fuzz
        out[nan] = np.interp(grid[nan], bt, bv)
    # Regularized signals feed the parity kernels (spectrum, fold
    # scoring); pin the dtype at this producer seam.  asarray is a
    # zero-copy no-op on the float64 the interpolators already return.
    return grid, np.asarray(out, dtype=np.float64)
