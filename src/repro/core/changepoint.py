"""Signal-change identification (§VI.C, Fig. 11).

While the light is red the waiting queue grows and the mean speed of
vehicles near the stop line keeps falling, bottoming out right when the
light turns green.  The paper's detector: take the superposed per-second
speed profile, convolve it circularly with a **red-duration-long
uniform window**, and read the signal change off the window with the
minimum mean speed.

Two estimators are fused (the fusion weight is ablatable):

* the paper's sliding-window minimum, scored at the candidate
  **red→green** instant (the window's trailing edge — "the mean speed
  will reach the minimum" exactly at the turn to green);
* a circular kernel-density mode of **stop-event end times**: a taxi's
  last stationary report is a direct, unbiased observation of the green
  onset (shifted by half its own report gap, which the caller
  corrects).  Sparse but sharp where the speed profile is smeared.

With ``fusion_weight=0`` (or no stop events) this reduces to the
paper-literal detector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import check_1d, check_nonnegative, check_positive
from .signal_types import ChangePointEstimate

__all__ = ["circular_moving_average", "stop_end_density", "find_signal_change"]


def circular_moving_average(profile: np.ndarray, window: int) -> np.ndarray:
    """Circular mean of ``profile`` over ``[k, k+window)`` for each k.

    Computed with one cumulative sum over a tiled copy — O(n), exact.
    """
    profile = check_1d("profile", profile, min_len=1)
    n = profile.shape[0]
    if not 1 <= window <= n:
        raise ValueError(f"window must be in [1, {n}], got {window}")
    if window == 1:
        return profile.astype(np.float64)
    tiled = np.concatenate([profile, profile[: window - 1]])
    csum = np.concatenate([[0.0], np.cumsum(tiled)])
    return (csum[window:] - csum[:-window])[:n] / window


def stop_end_density(
    ends_in_cycle: np.ndarray,
    cycle_s: float,
    *,
    bin_s: float = 1.0,
    bandwidth_s: float = 5.0,
) -> np.ndarray:
    """Circular Gaussian KDE of folded stop-end times.

    Returns the density sampled at each in-cycle bin; its mode marks the
    red→green change (queues dissolve when the light turns green).
    """
    ends = check_1d("ends_in_cycle", ends_in_cycle)
    check_positive("cycle_s", cycle_s)
    check_positive("bandwidth_s", bandwidth_s)
    n_bins = max(int(np.ceil(cycle_s / bin_s)), 1)
    grid = np.arange(n_bins, dtype=np.float64) * bin_s
    if ends.size == 0:
        return np.zeros(n_bins)
    d = np.abs(ends[None, :] - grid[:, None])
    d = np.minimum(d, cycle_s - d)
    return np.exp(-((d / bandwidth_s) ** 2)).sum(axis=1)


def _zscore(x: np.ndarray) -> np.ndarray:
    sd = x.std()
    return (x - x.mean()) / sd if sd > 0 else np.zeros_like(x)


def find_signal_change(
    profile: np.ndarray,
    red_s: float,
    *,
    bin_s: float = 1.0,
    stop_ends_in_cycle: Optional[np.ndarray] = None,
    fusion_weight: float = 0.5,
    kde_bandwidth_s: float = 5.0,
    moving_average: Optional[np.ndarray] = None,
) -> ChangePointEstimate:
    """Locate the signal change inside a superposed speed profile.

    Parameters
    ----------
    profile:
        Mean speed per in-cycle bin (output of
        :func:`repro.core.superposition.cycle_profile`).
    red_s:
        Red duration estimate (sliding-window length).
    stop_ends_in_cycle:
        Folded stop-event end times (seconds in ``[0, cycle)``, already
        corrected by half a report gap).  ``None`` disables fusion.
    fusion_weight:
        Weight of the stop-end density (z-scored) against the speed
        score (z-scored); 0 reproduces the paper-literal detector.
    moving_average:
        Precomputed ``circular_moving_average(profile, window)`` for the
        window this red duration implies — the seam the batched backend
        uses to reuse its strided all-lights moving-average pass.  Must
        match what this function would compute itself; ``None`` (the
        default) computes it here.

    Returns
    -------
    ChangePointEstimate:
        In-cycle ``red_to_green_s`` (directly estimated) and
        ``green_to_red_s`` (= red_to_green − red, mod cycle).
    """
    check_positive("red_s", red_s)
    check_nonnegative("fusion_weight", fusion_weight)
    profile = check_1d("profile", profile, min_len=2)
    n = profile.shape[0]
    window = int(np.clip(round(red_s / bin_s), 1, n))
    ma = (
        circular_moving_average(profile, window)
        if moving_average is None
        else np.asarray(moving_average, dtype=np.float64)
    )
    if ma.shape != profile.shape:
        raise ValueError(
            f"moving_average has shape {ma.shape}, expected {profile.shape}"
        )

    # Score each candidate red→green instant r: the red window ending at
    # r is [r-window, r), whose moving-average index is (r-window) mod n.
    # Low mean speed there → high score.
    speed_score = np.roll(-_zscore(ma), window)

    score = speed_score
    if stop_ends_in_cycle is not None and fusion_weight > 0:
        kde = stop_end_density(
            stop_ends_in_cycle, n * bin_s, bin_s=bin_s, bandwidth_s=kde_bandwidth_s
        )
        if kde.max() > 0:
            score = speed_score + fusion_weight * _zscore(kde)

    r = int(np.argmax(score))
    red_to_green = r * bin_s
    green_to_red = ((r - window) % n) * bin_s
    return ChangePointEstimate(
        green_to_red_s=float(green_to_red),
        red_to_green_s=float(red_to_green),
        moving_average=ma,
        profile=profile,
    )
