"""Red-light duration identification (§VI.A, Fig. 9).

The longest legitimate wait in front of a red light is (almost) the red
duration itself.  Stop durations longer than that are *errors* —
curbside passenger stops, double-parking — and the paper removes them
in three stages:

1. drop stops longer than the cycle length (can't be one red);
2. drop stops during which the passenger flag changed;
3. the **border-interval** step: bin the remaining durations into bins
   one *mean sample interval* wide, classify each bin as valid data or
   error by its record count (valid stops fill the left bins densely,
   the <10 % of surviving errors sprinkle the right bins), find the
   border bin, and return the record-weighted average duration inside
   it.

Stage 3 works because a red light of length R produces waits uniformly
covering (0, R]: every bin left of R is well-populated, every bin right
of it holds only stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import check_1d, check_positive
from .signal_types import InsufficientDataError, RedEstimate
from .stops import StopEvents

__all__ = [
    "RedConfig",
    "estimate_red_duration",
    "estimate_red_from_stops",
    "refine_red_from_change",
]


@dataclass(frozen=True)
class RedConfig:
    """Parameters of the border-interval estimator.

    Parameters
    ----------
    mean_sample_interval_s:
        Bin width; the paper uses the fleet's measured mean update
        interval (20.14 s).
    error_level_quantile:
        The error-floor estimate is this quantile of the counts in the
        right half of the histogram (pure-error zone).
    valid_factor:
        A bin is *valid* when its count exceeds ``valid_factor`` × the
        error floor (and is non-empty).
    min_stops:
        Minimum surviving stop events required.
    """

    mean_sample_interval_s: float = 20.14
    error_level_quantile: float = 0.5
    valid_factor: float = 2.0
    min_stops: int = 5

    def __post_init__(self) -> None:
        check_positive("mean_sample_interval_s", self.mean_sample_interval_s)
        if not 0.0 <= self.error_level_quantile <= 1.0:
            raise ValueError("error_level_quantile must be in [0, 1]")
        check_positive("valid_factor", self.valid_factor)


def estimate_red_duration(
    durations: np.ndarray,
    cycle_s: float,
    config: Optional[RedConfig] = None,
    *,
    mean_interval_s: Optional[float] = None,
) -> RedEstimate:
    """Border-interval red-duration estimate from raw stop durations.

    *durations* should already have passed the passenger filter; the
    cycle-cap filter (stage 1) is applied here.  ``mean_interval_s``
    overrides the configured bin width — pipelines pass the interval
    *measured* on the actual partition, like the paper uses its fleet's
    measured 20.14 s.
    """
    config = RedConfig() if config is None else config
    durations = check_1d("durations", durations)
    cycle_s = check_positive("cycle_s", cycle_s)

    in_cycle = durations[(durations > 0) & (durations <= cycle_s)]
    n_rejected = int(durations.shape[0] - in_cycle.shape[0])
    if in_cycle.shape[0] < config.min_stops:
        raise InsufficientDataError(
            f"{in_cycle.shape[0]} stop durations within the cycle; "
            f"need at least {config.min_stops}"
        )

    width = check_positive(
        "mean_interval_s",
        mean_interval_s if mean_interval_s is not None else config.mean_sample_interval_s,
    )
    n_bins = max(int(np.ceil(cycle_s / width)), 2)
    edges = np.arange(n_bins + 1) * width
    counts, _ = np.histogram(in_cycle, bins=edges)

    # Error floor: typical count in the right half of the cycle, where
    # anything left after filtering is (almost surely) an error.
    right = counts[n_bins // 2:]
    error_level = float(np.quantile(right, config.error_level_quantile)) if right.size else 0.0
    threshold = max(config.valid_factor * error_level, 1.0)

    valid = counts >= threshold
    if not valid.any():
        # Degenerate histogram (tiny windows): fall back to the bin of
        # the longest observed duration.
        border = int(np.clip(np.digitize(in_cycle.max(), edges) - 1, 0, n_bins - 1))
        red_s = float(min(0.5 * (edges[border] + edges[border + 1]), cycle_s))
        return RedEstimate(
            red_s=red_s,
            border_bin=border,
            bin_edges=edges,
            bin_counts=counts,
            n_stops_used=int(in_cycle.shape[0]),
            n_stops_rejected=n_rejected,
        )

    # Record-count-weighted boundary: a red light of length R fills
    # every bin below R to a common "full" level and leaves only the
    # error floor above it, so each bin's occupancy fraction
    # (count − error) / (full − error), clipped to [0, 1], contributes
    # its share of one bin width.  Summing the shares integrates the
    # normalized histogram and lands on R regardless of where inside a
    # bin the boundary falls — this is the "weighted average of the
    # border interval, using the number of records as weight".
    full_level = float(np.median(counts[valid]))
    denom = max(full_level - error_level, 1e-9)
    occupancy = np.clip((counts - error_level) / denom, 0.0, 1.0)
    red_s = float(min(occupancy.sum() * width, cycle_s))
    above_floor = np.flatnonzero(occupancy > 0.05)
    border = int(above_floor[-1]) if above_floor.size else 0

    return RedEstimate(
        red_s=red_s,
        border_bin=border,
        bin_edges=edges,
        bin_counts=counts,
        n_stops_used=int(in_cycle.shape[0]),
        n_stops_rejected=n_rejected,
    )


def estimate_red_from_stops(
    stops: StopEvents,
    cycle_s: float,
    config: Optional[RedConfig] = None,
    *,
    drop_passenger_changes: bool = True,
    mean_interval_s: Optional[float] = None,
) -> RedEstimate:
    """Full §VI.A: filter stop events, then run the border-interval step.

    ``drop_passenger_changes=False`` disables stage 2 — used by the
    filtering ablation bench to show why the paper needs it.
    """
    config = RedConfig() if config is None else config
    if drop_passenger_changes and len(stops):
        stops = stops.subset(~stops.passenger_changed)
    return estimate_red_duration(
        stops.duration_s, cycle_s, config, mean_interval_s=mean_interval_s
    )


def refine_red_from_change(
    stops: StopEvents,
    cycle_s: float,
    red_to_green_abs: float,
    *,
    align_tol_s: float = 10.0,
    quantile: float = 0.9,
    min_aligned: int = 5,
) -> Optional[float]:
    """Refine the red duration using a known red→green instant.

    Once the signal-change step has pinned the green onset, every stop
    event that *ends* at that phase is a genuine red-light wait, and its
    start-to-green span is a lower bound on the red duration (vehicles
    arrive throughout the red).  A high quantile of those spans
    estimates the red itself — with only one-sided sampling loss,
    unlike the raw stop-duration histogram whose both ends are
    truncated.

    Stop boundaries are corrected by half the event's own report gap.
    Returns ``None`` when fewer than ``min_aligned`` aligned stops
    exist (callers keep the border-interval estimate then).
    """
    check_positive("cycle_s", cycle_s)
    check_positive("align_tol_s", align_tol_s)
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    if len(stops) < min_aligned:
        return None
    gaps = stops.duration_s / np.maximum(stops.n_records - 1, 1)
    ends = np.mod(stops.t_end + gaps / 2.0 - red_to_green_abs, cycle_s)
    aligned = np.minimum(ends, cycle_s - ends) <= align_tol_s
    if aligned.sum() < min_aligned:
        return None
    starts = stops.t_start[aligned] - gaps[aligned] / 2.0
    waits = np.mod(red_to_green_abs - starts, cycle_s)
    waits = waits[waits <= 0.95 * cycle_s]
    if waits.shape[0] < min_aligned:
        return None
    return float(np.quantile(waits, quantile))
