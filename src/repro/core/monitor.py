"""Scheduling-change identification (§VII, Fig. 12).

Pre-programmed lights switch plans a few times a day (peak vs off-peak);
the paper's system notices by re-estimating the **cycle length every
5 minutes** and watching the series:

* isolated wild values are DFT artifacts → repaired by a running median;
* a *sustained* shift to a new level is a real plan change → reported
  with its onset time;
* the same light behaves alike at the same time of day across days →
  day-over-day history corrects the current estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._util import check_positive
from ..matching.partition import LightPartition
from ..parallel.pool import WorkerError, run_guarded
from .cycle import CycleConfig, identify_cycle_from_samples
from .signal_types import InsufficientDataError

__all__ = [
    "MonitorSeries",
    "PlanChange",
    "monitor_cycle",
    "repair_outliers",
    "detect_plan_changes",
    "HistoricalProfile",
]


@dataclass(frozen=True)
class MonitorSeries:
    """Periodic cycle-length estimates for one light.

    ``cycle_s`` is NaN where the window was too sparse; ``quality`` is
    the DFT peak prominence of each window.  ``n_errors`` counts
    windows that crashed with something *other* than data poverty
    (degenerate inputs, numerical pathologies) — those windows are NaN
    too, but a nonzero count flags a light worth investigating.
    """

    t: np.ndarray
    cycle_s: np.ndarray
    quality: np.ndarray
    n_errors: int = 0

    def __len__(self) -> int:
        return int(self.t.shape[0])

    def valid_fraction(self) -> float:
        """Share of windows that produced an estimate."""
        return float(np.mean(~np.isnan(self.cycle_s))) if len(self) else float("nan")

    @classmethod
    def from_samples(
        cls,
        t: Sequence[float],
        cycle_s: Sequence[float],
        quality: Sequence[float],
        *,
        n_errors: int = 0,
    ) -> "MonitorSeries":
        """Build a series from accumulated ``(t, cycle, quality)`` samples.

        The online monitor (:mod:`repro.stream`) appends one sample per
        ingest refresh instead of sweeping a fixed grid like
        :func:`monitor_cycle`; this constructor time-sorts those samples
        into the columnar form :func:`repair_outliers` /
        :func:`detect_plan_changes` consume.  A failed refresh should be
        recorded as a NaN cycle so gaps stay visible.
        """
        ta = np.asarray(t, dtype=np.float64)
        ca = np.asarray(cycle_s, dtype=np.float64)
        qa = np.asarray(quality, dtype=np.float64)
        if not (ta.shape == ca.shape == qa.shape) or ta.ndim != 1:
            raise ValueError(
                f"t/cycle_s/quality must be equal-length 1-D, got shapes "
                f"{ta.shape}/{ca.shape}/{qa.shape}"
            )
        order = np.argsort(ta, kind="stable")
        return cls(
            t=ta[order], cycle_s=ca[order], quality=qa[order], n_errors=n_errors
        )


@dataclass(frozen=True)
class PlanChange:
    """A detected scheduling change."""

    at_time: float
    old_cycle_s: float
    new_cycle_s: float


def monitor_cycle(
    partition: LightPartition,
    t0: float,
    t1: float,
    *,
    every_s: float = 300.0,
    window_s: float = 1800.0,
    config: Optional[CycleConfig] = None,
) -> MonitorSeries:
    """Estimate the cycle every ``every_s`` seconds over ``[t0, t1]``.

    Each estimate at time ``τ`` uses the trailing ``window_s`` of
    records, exactly like the paper's continuous monitoring (5-minute
    re-estimation, Fig. 12).
    """
    config = CycleConfig() if config is None else config
    check_positive("every_s", every_s)
    check_positive("window_s", window_s)
    times = np.arange(t0 + window_s, t1 + 1e-9, every_s)
    cycles = np.full(times.shape, np.nan)
    quality = np.full(times.shape, np.nan)
    n_errors = 0
    for i, tau in enumerate(times):
        sub = partition.time_window(tau - window_s, tau)
        # A degenerate window must not sink hours of monitoring: the
        # estimate runs through the sanctioned containment seam, and
        # anything other than expected data poverty counts as an error.
        est = run_guarded(
            identify_cycle_from_samples,
            sub.trace.t, sub.trace.speed_kmh, tau - window_s, tau, config,
        )
        if isinstance(est, WorkerError):
            if est.error_type != InsufficientDataError.__name__:
                n_errors += 1
            continue
        cycles[i] = est.cycle_s
        quality[i] = est.quality
    return MonitorSeries(t=times, cycle_s=cycles, quality=quality, n_errors=n_errors)


def repair_outliers(
    series: MonitorSeries, *, half_width: int = 3, tol_s: float = 8.0
) -> MonitorSeries:
    """Replace isolated outliers with the local running median.

    A sample deviating more than ``tol_s`` from the median of its
    ``2·half_width+1`` neighbourhood (NaNs ignored) is snapped to that
    median.  Genuine plan changes survive because after the change the
    neighbourhood median moves with the new level.
    """
    c = series.cycle_s.copy()
    n = c.shape[0]
    repaired = c.copy()
    for i in range(n):
        lo, hi = max(0, i - half_width), min(n, i + half_width + 1)
        neigh = c[lo:hi]
        neigh = neigh[~np.isnan(neigh)]
        if neigh.size < 2 or np.isnan(c[i]):
            continue
        med = float(np.median(neigh))
        if abs(c[i] - med) > tol_s:
            repaired[i] = med
    return MonitorSeries(
        t=series.t, cycle_s=repaired, quality=series.quality,
        n_errors=series.n_errors,
    )


def detect_plan_changes(
    series: MonitorSeries,
    *,
    tol_s: float = 6.0,
    min_consecutive: int = 3,
) -> List[PlanChange]:
    """Find sustained level shifts in a (repaired) cycle series.

    A change is declared when ``min_consecutive`` consecutive valid
    estimates all sit more than ``tol_s`` from the current level while
    agreeing with each other within ``tol_s``; its onset is the first
    such estimate's time.
    """
    t = series.t
    c = series.cycle_s
    valid = ~np.isnan(c)
    idx = np.flatnonzero(valid)
    if idx.size == 0:
        return []
    changes: List[PlanChange] = []
    level = float(c[idx[0]])
    i = 1
    while i < idx.size:
        j = idx[i]
        if abs(c[j] - level) <= tol_s:
            # stay on the level; refine it slowly
            level = 0.8 * level + 0.2 * float(c[j])
            i += 1
            continue
        # candidate run of departures
        run = [i]
        k = i + 1
        while k < idx.size and len(run) < min_consecutive:
            jk = idx[k]
            if abs(c[jk] - c[idx[run[0]]]) <= tol_s and abs(c[jk] - level) > tol_s:
                run.append(k)
                k += 1
            else:
                break
        if len(run) >= min_consecutive:
            new_level = float(np.median(c[idx[run]]))
            changes.append(
                PlanChange(
                    at_time=float(t[idx[run[0]]]),
                    old_cycle_s=level,
                    new_cycle_s=new_level,
                )
            )
            level = new_level
            i = run[-1] + 1
        else:
            i += 1  # isolated blip; outlier repair should have caught it
    return changes


class HistoricalProfile:
    """Day-over-day correction of cycle estimates (Fig. 12's insight).

    Build it from several days of monitor series for the same light;
    it learns the median cycle per time-of-day bin and can then
    (a) report the historical expectation at any time of day, and
    (b) correct a fresh estimate that disagrees wildly with history.
    """

    def __init__(
        self,
        day_series: Sequence[MonitorSeries],
        *,
        bin_s: float = 1800.0,
        day_length_s: float = 86_400.0,
    ) -> None:
        check_positive("bin_s", bin_s)
        if day_length_s % bin_s:
            raise ValueError("bin_s must divide the day length")
        self.bin_s = bin_s
        self.day_length_s = day_length_s
        n_bins = int(day_length_s // bin_s)
        buckets: List[List[float]] = [[] for _ in range(n_bins)]
        for series in day_series:
            tod = np.mod(series.t, day_length_s)
            for tau, c in zip(tod, series.cycle_s):
                if not np.isnan(c):
                    buckets[int(tau // bin_s) % n_bins].append(float(c))
        self.median = np.array(
            [np.median(b) if b else np.nan for b in buckets]
        )
        self.support = np.array([len(b) for b in buckets])

    def expectation_at(self, t: float) -> float:
        """Historical median cycle at (the time-of-day of) ``t``."""
        tod = float(t) % self.day_length_s
        return float(self.median[int(tod // self.bin_s)])

    def correct(self, t: float, estimate_s: float, *, tol_s: float = 10.0) -> float:
        """Snap an estimate to history when it disagrees by > ``tol_s``.

        NaN history (never-observed slot) passes the estimate through.
        """
        expect = self.expectation_at(t)
        if np.isnan(expect) or abs(estimate_s - expect) <= tol_s:
            return float(estimate_s)
        return expect
