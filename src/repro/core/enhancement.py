"""Intersection-based enhancement (§V.B, Fig. 7, Eq. 3).

All lights at one crossroad share a cycle length, and the perpendicular
flows move *alternately*: when North-South is stopped, East-West flows.
So a sparse direction can borrow the perpendicular direction's samples
by **mirroring** them about the intersection's mean speed:

    v_e(t) = v(t)                         if the primary has a sample
    v_e(t) = max(0, 2·v̄ − v_perp(t))     if only the perpendicular does

which converts "EW is fast" into "NS is (probably) slow" — preserving
the shared periodicity while densifying the DFT input.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._util import check_1d, check_positive

__all__ = ["mirror_speeds", "enhance_samples", "choose_primary"]


def mirror_speeds(v_perp: np.ndarray, mean_speed: float) -> np.ndarray:
    """Eq. 3's mirror: reflect speeds about the mean, clamped at zero."""
    v_perp = check_1d("v_perp", v_perp)
    return np.maximum(0.0, 2.0 * float(mean_speed) - v_perp)


def choose_primary(
    t_a: np.ndarray, v_a: np.ndarray, t_b: np.ndarray, v_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Order two directions so the denser one is primary.

    Returns ``(t_primary, v_primary, t_perp, v_perp)`` — the paper
    mirrors the sparse direction onto the dense one's timeline.
    """
    if np.asarray(t_a).shape[0] >= np.asarray(t_b).shape[0]:
        return np.asarray(t_a, float), np.asarray(v_a, float), np.asarray(t_b, float), np.asarray(v_b, float)
    return np.asarray(t_b, float), np.asarray(v_b, float), np.asarray(t_a, float), np.asarray(v_a, float)


def enhance_samples(
    t_primary: np.ndarray,
    v_primary: np.ndarray,
    t_perp: np.ndarray,
    v_perp: np.ndarray,
    *,
    dt: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge perpendicular samples into the primary direction (Eq. 3).

    A perpendicular sample is used only for grid seconds where the
    primary has none (``v_t = ∅ ∧ v_t^p ≠ ∅``); it enters mirrored about
    the pooled mean speed of the intersection.  Primary samples always
    win collisions.

    Returns the merged, time-sorted ``(t, v)`` sample set, ready for
    :func:`repro.core.interpolation.regularize`.
    """
    check_positive("dt", dt)
    t_primary = check_1d("t_primary", t_primary)
    v_primary = check_1d("v_primary", v_primary)
    t_perp = check_1d("t_perp", t_perp)
    v_perp = check_1d("v_perp", v_perp)
    if t_primary.shape != v_primary.shape or t_perp.shape != v_perp.shape:
        raise ValueError("time and value arrays must have matching lengths")
    # Enhanced sample sets feed regularize and the fold kernels; every
    # return pins float64 at this producer seam (astype copies like
    # .copy() did, and is a bit-exact no-op on float64 trace columns).
    if t_perp.size == 0:
        return t_primary.astype(np.float64), v_primary.astype(np.float64)
    if t_primary.size == 0:
        mean_speed = float(v_perp.mean())
        return (
            t_perp.astype(np.float64),
            np.asarray(mirror_speeds(v_perp, mean_speed), dtype=np.float64),
        )

    # v̄: mean speed of the whole intersection (both directions pooled).
    mean_speed = float(np.concatenate([v_primary, v_perp]).mean())

    occupied = np.unique(np.floor(t_primary / dt).astype(np.int64))
    perp_bucket = np.floor(t_perp / dt).astype(np.int64)
    free = ~np.isin(perp_bucket, occupied)

    t_extra = t_perp[free]
    v_extra = mirror_speeds(v_perp[free], mean_speed)

    t_all = np.concatenate([t_primary, t_extra]).astype(np.float64)
    v_all = np.concatenate([v_primary, v_extra]).astype(np.float64)
    order = np.argsort(t_all, kind="stable")
    return t_all[order], v_all[order]
