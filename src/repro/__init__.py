"""repro — reproduction of "Exploiting Real-Time Traffic Light
Scheduling with Taxi Traces" (He et al., ICPP 2016).

The package identifies traffic-light scheduling (cycle length, red
duration, signal-change time, scheduling-change time) from
low-frequency taxi GPS traces, and ships every substrate the paper
depends on: a road-network model, ground-truth signal controllers, a
queue-based traffic microsimulator, a Table I-format taxi-trace
generator, map matching and per-light partitioning, a light-aware
navigation demo, and an evaluation harness for every figure and table
in the paper.

Quick start::

    from repro.scenario import small_scenario
    from repro.eval import simulate_and_partition
    from repro.core import identify_many

    scn = small_scenario()
    trace, parts = simulate_and_partition(scn, 0.0, 7200.0, seed=1)
    estimates, failures = identify_many(parts, at_time=7200.0)
    for key, est in estimates.items():
        print(est.row())
"""

from . import core, eval, lights, matching, navigation, network, obs, parallel, scenario, sim, trace

__version__ = "1.0.0"

__all__ = [
    "core",
    "eval",
    "lights",
    "matching",
    "navigation",
    "network",
    "obs",
    "parallel",
    "scenario",
    "sim",
    "trace",
    "__version__",
]
