"""Map matching (§IV, Fig. 5).

The paper deliberately uses a *simple* matcher — full low-sampling-rate
trajectory matching (Lou et al.) is out of scope — relying on only the
current position and driving direction:

1. candidate segments are ranked by perpendicular distance;
2. the nearest segment wins **unless** the taxi's heading conflicts
   with the segment's orientation, in which case the next-nearest
   segment with a compatible orientation is used (the ``v2 → m2`` not
   ``m2'`` case in Fig. 5);
3. fixes farther than ``max_distance_m`` from every compatible segment
   stay unmatched.

Implementation is chunked-vectorized: a (records × segments) distance
matrix per chunk, with heading-incompatible entries masked to ∞.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._util import check_positive
from ..network.geometry import heading_difference, point_segment_distance
from ..network.roadnet import RoadNetwork
from ..trace.records import TraceArrays

__all__ = ["MatchConfig", "MatchResult", "match_trace"]


@dataclass(frozen=True)
class MatchConfig:
    """Matcher parameters.

    Parameters
    ----------
    max_distance_m:
        Fixes farther than this from every compatible segment are
        unmatched (paper cites urban GPS errors up to ~100 m).
    max_heading_diff_deg:
        Heading compatibility threshold between the report's heading
        and the segment's travel direction.
    chunk_size:
        Records per vectorized block (memory/speed trade-off).
    require_gps_ok:
        Drop reports whose GPS-condition flag (Table I field 8) is 0
        before matching — the paper's outlier filter.
    """

    max_distance_m: float = 120.0
    max_heading_diff_deg: float = 60.0
    chunk_size: int = 8192
    require_gps_ok: bool = True

    def __post_init__(self) -> None:
        check_positive("max_distance_m", self.max_distance_m)
        check_positive("max_heading_diff_deg", self.max_heading_diff_deg)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")


@dataclass
class MatchResult:
    """Output of :func:`match_trace`.

    Attributes
    ----------
    trace:
        The (possibly GPS-filtered) trace that was matched, in the same
        row order as ``segment_id``.
    segment_id:
        Matched directed-segment id per record, or −1 if unmatched.
    distance_m:
        Distance from the fix to its matched segment (NaN if unmatched).
    """

    trace: TraceArrays
    segment_id: np.ndarray
    distance_m: np.ndarray

    @property
    def matched_fraction(self) -> float:
        """Share of records that found a segment."""
        n = len(self.trace)
        return float((self.segment_id >= 0).sum() / n) if n else float("nan")

    def matched_only(self) -> Tuple[TraceArrays, np.ndarray]:
        """(sub-trace, segment ids) restricted to matched records."""
        keep = self.segment_id >= 0
        return self.trace.subset(keep), self.segment_id[keep]


def match_trace(
    trace: TraceArrays,
    net: RoadNetwork,
    config: Optional[MatchConfig] = None,
) -> MatchResult:
    """Match every report of *trace* onto *net* (Fig. 5 rules)."""
    config = MatchConfig() if config is None else config
    if config.require_gps_ok:
        trace = trace.subset(trace.gps_ok)
    n = len(trace)
    n_seg = len(net.segments)
    seg_ids = np.full(n, -1, dtype=np.int64)
    dists = np.full(n, np.nan)
    if n == 0 or n_seg == 0:
        return MatchResult(trace, seg_ids, dists)

    px, py = net.frame.to_local(trace.lon, trace.lat)
    for lo in range(0, n, config.chunk_size):
        hi = min(lo + config.chunk_size, n)
        # (records, segments) distance matrix for this chunk.
        d = point_segment_distance(
            px[lo:hi, None],
            py[lo:hi, None],
            net.seg_ax[None, :],
            net.seg_ay[None, :],
            net.seg_bx[None, :],
            net.seg_by[None, :],
        )
        hd = heading_difference(
            trace.heading_deg[lo:hi, None], net.seg_heading[None, :]
        )
        # The heading-conflict rule: orientation-incompatible segments
        # never win, regardless of proximity.
        d = np.where(hd <= config.max_heading_diff_deg, d, np.inf)
        best = np.argmin(d, axis=1)
        best_d = d[np.arange(hi - lo), best]
        ok = best_d <= config.max_distance_m
        seg_ids[lo:hi][ok] = best[ok]
        dists[lo:hi][ok] = best_d[ok]
    return MatchResult(trace, seg_ids, dists)
