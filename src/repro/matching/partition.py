"""Data partitioning by nearest traffic light (§IV).

After map matching, each record belongs to a directed segment; the
light controlling that segment stands at the segment's downstream
intersection, on the record's approach group (NS or EW).  A
:class:`LightPartition` is therefore keyed by
``(intersection_id, approach)`` — one per physical signal head group —
and is the self-contained unit the identification pipeline processes
(and parallelizes over, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..network.roadnet import Approach, RoadNetwork
from ..trace.records import TraceArrays
from .mapmatch import MatchResult

__all__ = ["LightKey", "LightPartition", "partition_by_light", "partner_of"]

#: Partition key: (intersection id, approach group).
LightKey = Tuple[int, str]


def partner_of(key: LightKey) -> LightKey:
    """Key of the perpendicular approach at the same intersection.

    The §V.B enhancement couples the two approach groups of one
    physical intersection (same cycle, complementary red/green), so
    several layers need "the other light here": the batched
    identifier's superposition pairing, the per-light pipeline, and the
    streaming store's cross-partner cache invalidation.  This is the
    single definition they all share.
    """
    iid, approach = key
    return (iid, Approach.EW if approach == Approach.NS else Approach.NS)


@dataclass
class LightPartition:
    """All matched records governed by one traffic light.

    Attributes
    ----------
    intersection_id, approach:
        The light's identity.
    trace:
        Records on this light's approach segments, time-sorted.
    segment_id:
        Matched segment per record (parallel to ``trace`` rows).
    dist_to_stopline_m:
        Along-segment distance from the (matched) position to the stop
        line — precomputed because stop extraction needs it.
    """

    intersection_id: int
    approach: str
    trace: TraceArrays
    segment_id: np.ndarray
    dist_to_stopline_m: np.ndarray

    @property
    def key(self) -> LightKey:
        return (self.intersection_id, self.approach)

    def __len__(self) -> int:
        return len(self.trace)

    def records_per_hour(self) -> float:
        """Mean record rate (Table II column)."""
        if len(self.trace) < 2:
            return 0.0
        span_h = (self.trace.t.max() - self.trace.t.min()) / 3600.0
        return len(self.trace) / max(span_h, 1e-9)

    def time_window(self, t0: float, t1: float) -> "LightPartition":
        """Restrict to records in ``[t0, t1)``."""
        keep = (self.trace.t >= t0) & (self.trace.t < t1)
        return LightPartition(
            self.intersection_id,
            self.approach,
            self.trace.subset(keep),
            self.segment_id[keep],
            self.dist_to_stopline_m[keep],
        )


def _along_segment_distance(
    trace: TraceArrays, seg_ids: np.ndarray, net: RoadNetwork
) -> np.ndarray:
    """Distance from each matched fix to its segment's stop line."""
    px, py = net.frame.to_local(trace.lon, trace.lat)
    ax = net.seg_ax[seg_ids]
    ay = net.seg_ay[seg_ids]
    bx = net.seg_bx[seg_ids]
    by = net.seg_by[seg_ids]
    vx, vy = bx - ax, by - ay
    L2 = vx * vx + vy * vy
    L = np.sqrt(L2)
    t = np.clip(((px - ax) * vx + (py - ay) * vy) / np.maximum(L2, 1e-12), 0.0, 1.0)
    return (1.0 - t) * L


def partition_by_light(match: MatchResult, net: RoadNetwork) -> Dict[LightKey, LightPartition]:
    """Split matched records into per-light partitions.

    Records matched to segments ending at unsignalized intersections
    are dropped (no light to identify); unmatched records never enter.
    """
    trace, seg_ids = match.matched_only()
    out: Dict[LightKey, LightPartition] = {}
    if len(trace) == 0:
        return out

    to_ids = net.seg_to[seg_ids]
    signalized = np.array(
        [net.intersections[i].signalized for i in range(len(net.intersections))],
        dtype=bool,
    )
    keep = signalized[to_ids]
    trace, seg_ids, to_ids = trace.subset(keep), seg_ids[keep], to_ids[keep]
    if len(trace) == 0:
        return out

    approach_codes = np.array(
        [0 if Approach.of_heading(h) == Approach.NS else 1 for h in net.seg_heading]
    )
    codes = approach_codes[seg_ids]
    dist = _along_segment_distance(trace, seg_ids, net)

    # group rows by (intersection, approach) with one lexsort
    group = to_ids * 2 + codes
    order = np.argsort(group, kind="stable")
    sorted_group = group[order]
    boundaries = np.flatnonzero(np.diff(sorted_group)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(sorted_group)]])
    for s, e in zip(starts, ends):
        rows = order[s:e]
        g = int(sorted_group[s])
        iid, code = g // 2, g % 2
        approach = Approach.NS if code == 0 else Approach.EW
        sub = trace.subset(rows)
        t_order = np.argsort(sub.t, kind="stable")
        out[(iid, approach)] = LightPartition(
            intersection_id=iid,
            approach=approach,
            trace=sub.subset(t_order),
            segment_id=seg_ids[rows][t_order],
            dist_to_stopline_m=dist[rows][t_order],
        )
    return out
