"""Preprocessing (§IV): map matching and per-light data partitioning."""

from .mapmatch import MatchConfig, MatchResult, match_trace
from .partition import LightKey, LightPartition, partition_by_light

__all__ = [
    "MatchConfig",
    "MatchResult",
    "match_trace",
    "LightKey",
    "LightPartition",
    "partition_by_light",
]
