"""Raw-text serialization of taxi reports in the Table I wire format.

One comma-separated line per report, fields in Table I order:

``plate,lon_e6,lat_e6,YYYY-MM-DD HH:mm:ss,device,speed,heading,gps,overspeed,sim,passenger,color``

Longitude/latitude are integers scaled by 1e6 (Table I rows 2-3); the
report time renders absolute simulation seconds against a base date.
The parser is the exact inverse up to the 1e-6° quantization and 1 s
time resolution of the wire format.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, List, TextIO, Union

import numpy as np

from .records import BODY_COLORS, TaxiRecord, TraceArrays, plate_of, sim_card_of

__all__ = [
    "BASE_DATE",
    "format_record",
    "parse_record",
    "write_trace",
    "read_trace",
    "seconds_to_timestamp",
    "timestamp_to_seconds",
]

#: Day 0 of simulation time; chosen to match the paper's ground-truth
#: recording period (Dec 05, 2014).
BASE_DATE = _dt.datetime(2014, 12, 5)


def seconds_to_timestamp(t_s: float, base: _dt.datetime = BASE_DATE) -> str:
    """Render absolute simulation seconds as ``YYYY-MM-DD HH:mm:ss``."""
    return (base + _dt.timedelta(seconds=round(float(t_s)))).strftime("%Y-%m-%d %H:%M:%S")


def timestamp_to_seconds(ts: str, base: _dt.datetime = BASE_DATE) -> float:
    """Inverse of :func:`seconds_to_timestamp`."""
    return (_dt.datetime.strptime(ts, "%Y-%m-%d %H:%M:%S") - base).total_seconds()


def format_record(rec: TaxiRecord, base: _dt.datetime = BASE_DATE) -> str:
    """Serialize one record to its Table I line."""
    return ",".join(
        [
            rec.plate,
            str(int(round(rec.longitude * 1_000_000))),
            str(int(round(rec.latitude * 1_000_000))),
            seconds_to_timestamp(rec.time_s, base),
            str(rec.device_id),
            f"{rec.speed_kmh:.1f}",
            f"{rec.heading_deg:.1f}",
            "1" if rec.gps_ok else "0",
            "1" if rec.overspeed else "0",
            rec.sim_card,
            "1" if rec.passenger else "0",
            rec.color,
        ]
    )


def parse_record(line: str, base: _dt.datetime = BASE_DATE) -> TaxiRecord:
    """Parse one Table I line back into a :class:`TaxiRecord`."""
    parts = line.rstrip("\n").split(",")
    if len(parts) != 12:
        raise ValueError(f"expected 12 fields, got {len(parts)}: {line!r}")
    return TaxiRecord(
        plate=parts[0],
        longitude=int(parts[1]) / 1_000_000,
        latitude=int(parts[2]) / 1_000_000,
        time_s=timestamp_to_seconds(parts[3], base),
        device_id=int(parts[4]),
        speed_kmh=float(parts[5]),
        heading_deg=float(parts[6]),
        gps_ok=parts[7] == "1",
        overspeed=parts[8] == "1",
        sim_card=parts[9],
        passenger=parts[10] == "1",
        color=parts[11],
    )


def write_trace(
    trace: Union[TraceArrays, Iterable[TaxiRecord]],
    fp: TextIO,
    base: _dt.datetime = BASE_DATE,
) -> int:
    """Write a trace to an open text file; returns lines written."""
    records = trace.to_records() if isinstance(trace, TraceArrays) else trace
    n = 0
    for rec in records:
        fp.write(format_record(rec, base))
        fp.write("\n")
        n += 1
    return n


def read_trace(fp: TextIO, base: _dt.datetime = BASE_DATE) -> TraceArrays:
    """Read a Table I text trace into columnar storage.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number.
    """
    records: List[TaxiRecord] = []
    for lineno, line in enumerate(fp, start=1):
        if not line.strip():
            continue
        try:
            records.append(parse_record(line, base))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return TraceArrays.from_records(records)
