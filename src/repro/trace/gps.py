"""GPS error model for the trace generator.

The paper reports urban GPS localization errors of up to ~100 m [15],
plus reports flagged unavailable (Table I field 8).  The model is a
two-component mixture: routine multipath jitter around the true
position, and occasional urban-canyon outliers with much larger spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import numpy.typing as npt

from .._util import RngLike, as_rng, check_in_range, check_nonnegative

__all__ = ["GPSErrorModel"]


@dataclass(frozen=True)
class GPSErrorModel:
    """Additive planar GPS noise.

    Parameters
    ----------
    sigma_m:
        Std-dev of routine noise per axis (meters).
    outlier_prob:
        Probability a fix is an urban-canyon outlier.
    outlier_sigma_m:
        Per-axis std-dev of outlier fixes (≈ 100 m paper bound at ~3σ
        of the default 35 m).
    unavailable_prob:
        Probability the GPS condition flag reads 0 (field 8); such
        records are kept in the raw trace — preprocessing drops them.
    """

    sigma_m: float = 5.0
    outlier_prob: float = 0.02
    outlier_sigma_m: float = 35.0
    unavailable_prob: float = 0.01

    def __post_init__(self) -> None:
        check_nonnegative("sigma_m", self.sigma_m)
        check_in_range("outlier_prob", self.outlier_prob, 0.0, 1.0)
        check_nonnegative("outlier_sigma_m", self.outlier_sigma_m)
        check_in_range("unavailable_prob", self.unavailable_prob, 0.0, 1.0)

    def apply(
        self, x: npt.ArrayLike, y: npt.ArrayLike, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Noise up true local coordinates.

        Returns ``(x_noisy, y_noisy, gps_ok)``; positions flagged not-ok
        get outlier-scale noise (a dying fix wanders before dropping
        out), which is why preprocessing must respect the flag.
        """
        rng = as_rng(rng)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        n = x.shape[0] if x.ndim else 1
        x = np.atleast_1d(x).astype(float)
        y = np.atleast_1d(y).astype(float)

        is_outlier = rng.uniform(size=n) < self.outlier_prob
        gps_ok = rng.uniform(size=n) >= self.unavailable_prob
        sigma = np.where(is_outlier | ~gps_ok, self.outlier_sigma_m, self.sigma_m)
        return (
            x + rng.normal(0.0, 1.0, size=n) * sigma,
            y + rng.normal(0.0, 1.0, size=n) * sigma,
            gps_ok,
        )
