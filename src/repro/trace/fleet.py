"""Per-taxi reporting behaviour.

Each Shenzhen taxi uploads at its *own fixed frequency* — Fig. 2(b)
shows distinct peaks at 15 s, 30 s and 60 s, a ~20 s mean, and a long
tail the paper attributes to packet loss and network delay.  This
module reproduces that: a taxi draws an interval from the empirical
mixture once, then reports on that grid (with jitter), with reports
occasionally lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from .._util import RngLike, as_rng, check_in_range, check_nonnegative

__all__ = ["ReportingPolicy", "sample_report_times"]

#: Empirical update-interval mixture (seconds → probability), chosen so
#: the generated traces land near the paper's *measured* mean update
#: interval of 20.41 s with visible 15/30/60 s peaks.  Note the measured
#: mean is over consecutive-report pairs, which weights a taxi by its
#: report count (∝ 1/interval): the pair-weighted mean of this mixture
#: is ≈ 19.6 s even though its plain mean is ≈ 28.6 s.
DEFAULT_INTERVAL_MIXTURE: Tuple[Tuple[float, float], ...] = (
    (5.0, 0.02),
    (10.0, 0.10),
    (15.0, 0.33),
    (30.0, 0.35),
    (60.0, 0.20),
)


@dataclass(frozen=True)
class ReportingPolicy:
    """Fleet-wide reporting parameters.

    Parameters
    ----------
    interval_mixture:
        ``((interval_s, probability), ...)``; probabilities must sum
        to 1.
    packet_loss_prob:
        Probability each report is silently dropped in the cellular
        uplink (creates the Fig. 2(b) long tail: gaps of 2×, 3×… the
        base interval).
    jitter_sd_s:
        Gaussian jitter on each report's timestamp (network delay).
    """

    interval_mixture: Tuple[Tuple[float, float], ...] = DEFAULT_INTERVAL_MIXTURE
    packet_loss_prob: float = 0.05
    jitter_sd_s: float = 0.5

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.interval_mixture)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"interval mixture probabilities sum to {total}, expected 1")
        for iv, p in self.interval_mixture:
            if iv <= 0:
                raise ValueError(f"interval {iv} must be positive")
            check_in_range("mixture probability", p, 0.0, 1.0)
        check_in_range("packet_loss_prob", self.packet_loss_prob, 0.0, 1.0)
        check_nonnegative("jitter_sd_s", self.jitter_sd_s)

    @property
    def mean_interval_s(self) -> float:
        """Mean of the base interval mixture (before loss)."""
        return float(sum(iv * p for iv, p in self.interval_mixture))

    def sample_interval(self, rng: RngLike = None) -> float:
        """Draw one taxi's fixed update interval."""
        rng = as_rng(rng)
        intervals = np.array([iv for iv, _ in self.interval_mixture])
        probs = np.array([p for _, p in self.interval_mixture])
        return float(rng.choice(intervals, p=probs))


def sample_report_times(
    policy: ReportingPolicy,
    interval_s: float,
    t_start: float,
    t_end: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Report timestamps for one taxi observed on ``[t_start, t_end]``.

    The taxi's report grid has a uniformly-random phase (taxis don't
    synchronize), each report is dropped with ``packet_loss_prob`` and
    jittered by network delay.  Returns a sorted array (possibly empty).
    """
    rng = as_rng(rng)
    if t_end < t_start:
        return np.empty(0)
    phase = rng.uniform(0.0, interval_s)
    ticks = np.arange(t_start + phase, t_end + 1e-9, interval_s)
    if ticks.size == 0:
        return ticks
    kept = rng.uniform(size=ticks.size) >= policy.packet_loss_prob
    ticks = ticks[kept]
    if policy.jitter_sd_s > 0 and ticks.size:
        ticks = ticks + rng.normal(0.0, policy.jitter_sd_s, size=ticks.size)
        ticks = np.sort(np.clip(ticks, t_start, t_end))
    return ticks
