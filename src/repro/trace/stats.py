"""Trace statistics — the Fig. 2 analyses of the paper.

Four views of a raw trace:

(a) record counts per 10-minute slot of the day;
(b) time differences between consecutive updates of the same taxi
    (peaks at 15/30/60 s; paper mean 20.41 s, σ 20.54 s);
(c) distance travelled between consecutive updates (paper: 42.66 %
    stationary — taxis waiting at red lights — moving mean ≈ 100.69 m);
(d) speed differences between consecutive updates (≈ N(0, 40) km/h).

Everything is vectorized over the columnar trace: one ``lexsort`` by
(taxi, time), then masked ``diff``s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..network.geometry import LocalFrame
from .records import TraceArrays

__all__ = [
    "ConsecutivePairs",
    "TraceStatistics",
    "consecutive_pairs",
    "records_per_slot",
    "compute_statistics",
]

#: Consecutive-update distance below which we call the taxi stationary.
#: GPS jitter means "same position" is never exactly zero meters.
STATIONARY_DISTANCE_M = 15.0


@dataclass(frozen=True)
class ConsecutivePairs:
    """Differences between consecutive same-taxi updates.

    All arrays share one length — one entry per consecutive pair.
    """

    dt_s: np.ndarray
    distance_m: np.ndarray
    dspeed_kmh: np.ndarray
    taxi_id: np.ndarray

    def __len__(self) -> int:
        return int(self.dt_s.shape[0])


def consecutive_pairs(trace: TraceArrays, frame: Optional[LocalFrame] = None) -> ConsecutivePairs:
    """Extract per-taxi consecutive-update differences from a trace."""
    frame = frame if frame is not None else LocalFrame()
    if len(trace) < 2:
        z = np.empty(0)
        return ConsecutivePairs(z, z, z, z.astype(np.int64))
    s = trace.sorted_by_taxi_then_time()
    same = s.taxi_id[1:] == s.taxi_id[:-1]
    dt = np.diff(s.t)[same]
    x, y = frame.to_local(s.lon, s.lat)
    dist = np.hypot(np.diff(x), np.diff(y))[same]
    dv = np.diff(s.speed_kmh)[same]
    return ConsecutivePairs(
        dt_s=dt, distance_m=dist, dspeed_kmh=dv, taxi_id=s.taxi_id[1:][same]
    )


def records_per_slot(
    trace: TraceArrays, slot_s: float = 600.0, day_length_s: float = 86_400.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Record counts per time-of-day slot (Fig. 2(a)).

    Returns ``(slot_start_seconds, counts)``; counts aggregate every
    simulated day into one 24 h profile.
    """
    if slot_s <= 0 or day_length_s <= 0 or day_length_s % slot_s:
        raise ValueError("slot_s must positively divide day_length_s")
    n_slots = int(day_length_s // slot_s)
    tod = np.mod(trace.t, day_length_s)
    counts = np.bincount((tod // slot_s).astype(np.int64), minlength=n_slots)
    return np.arange(n_slots) * slot_s, counts


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of the Fig. 2 analyses for one trace."""

    n_records: int
    n_taxis: int
    records_per_minute: float
    mean_update_interval_s: float
    std_update_interval_s: float
    stationary_fraction: float
    mean_moving_distance_m: float
    speed_diff_mean_kmh: float
    speed_diff_std_kmh: float

    def row(self) -> str:
        """One printable summary line (bench harness output)."""
        return (
            f"records={self.n_records} taxis={self.n_taxis} "
            f"rec/min={self.records_per_minute:.1f} "
            f"interval={self.mean_update_interval_s:.2f}±{self.std_update_interval_s:.2f}s "
            f"stationary={100 * self.stationary_fraction:.1f}% "
            f"moving_dist={self.mean_moving_distance_m:.1f}m "
            f"dv=N({self.speed_diff_mean_kmh:.2f},{self.speed_diff_std_kmh:.1f})"
        )


def compute_statistics(
    trace: TraceArrays,
    frame: Optional[LocalFrame] = None,
    stationary_distance_m: float = STATIONARY_DISTANCE_M,
) -> TraceStatistics:
    """Compute the full Fig. 2 summary for a trace."""
    pairs = consecutive_pairs(trace, frame)
    span_min = (trace.t.max() - trace.t.min()) / 60.0 if len(trace) > 1 else 1.0
    stationary = (
        pairs.distance_m < stationary_distance_m if len(pairs) else np.empty(0, bool)
    )
    moving_dist = pairs.distance_m[~stationary] if len(pairs) else np.empty(0)
    return TraceStatistics(
        n_records=len(trace),
        n_taxis=int(np.unique(trace.taxi_id).size) if len(trace) else 0,
        records_per_minute=len(trace) / max(span_min, 1e-9),
        mean_update_interval_s=float(pairs.dt_s.mean()) if len(pairs) else float("nan"),
        std_update_interval_s=float(pairs.dt_s.std()) if len(pairs) else float("nan"),
        stationary_fraction=float(stationary.mean()) if len(pairs) else float("nan"),
        mean_moving_distance_m=float(moving_dist.mean()) if moving_dist.size else float("nan"),
        speed_diff_mean_kmh=float(pairs.dspeed_kmh.mean()) if len(pairs) else float("nan"),
        speed_diff_std_kmh=float(pairs.dspeed_kmh.std()) if len(pairs) else float("nan"),
    )
