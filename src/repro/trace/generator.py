"""Trace generation: sample simulated motion into Table I records.

Bridges the microsimulator (ground-truth 1 Hz motion) and the
identification pipeline (sparse noisy reports): each simulated taxi gets
a fixed reporting interval from the fleet mixture, its track is sampled
on that grid, GPS noise is applied, and the result is emitted as
:class:`~repro.trace.records.TraceArrays`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._util import RngLike, as_rng
from ..network.roadnet import RoadNetwork, Segment
from ..sim.engine import SimulationResult
from ..sim.vehicle import VehicleTrack
from .fleet import ReportingPolicy, sample_report_times
from .gps import GPSErrorModel
from .records import TraceArrays

__all__ = ["TraceGenerator", "OVERSPEED_KMH"]

#: Speed above which the onboard unit raises the overspeed warning
#: (Table I field 9); urban arterials in Shenzhen post 60-80 km/h.
OVERSPEED_KMH = 80.0


@dataclass(frozen=True)
class TraceGenerator:
    """Turn :class:`VehicleTrack` ground truth into raw taxi reports.

    Parameters
    ----------
    net:
        Road network providing segment geometry and the geographic frame.
    policy:
        Fleet reporting behaviour.
    gps:
        GPS error model.
    heading_noise_sd_deg:
        Compass noise on the reported heading.
    """

    net: RoadNetwork
    policy: ReportingPolicy = field(default_factory=ReportingPolicy)
    gps: GPSErrorModel = field(default_factory=GPSErrorModel)
    heading_noise_sd_deg: float = 4.0

    # ------------------------------------------------------------------
    def sample_track(
        self,
        track: VehicleTrack,
        taxi_id: int,
        rng: RngLike = None,
    ) -> Optional[TraceArrays]:
        """Sample one track into reports; ``None`` if no report survives."""
        rng = as_rng(rng)
        seg: Segment = self.net.segments[track.segment_id]
        interval = self.policy.sample_interval(rng)
        times = sample_report_times(
            self.policy, interval, float(track.t[0]), float(track.t[-1]), rng
        )
        if times.size == 0:
            return None

        # Nearest 1 Hz simulation sample for each report time.
        idx = np.clip(np.round(times - track.t[0]).astype(np.int64), 0, len(track) - 1)
        dist = track.dist_to_stopline_m[idx]
        speed_kmh = track.speed_mps[idx] * 3.6
        passenger = track.passenger[idx]

        # Geometry: position along the directed segment, then GPS noise.
        L = max(seg.length, 1e-9)
        frac = 1.0 - np.clip(dist, 0.0, L) / L
        x = seg.ax + frac * (seg.bx - seg.ax)
        y = seg.ay + frac * (seg.by - seg.ay)
        xn, yn, gps_ok = self.gps.apply(x, y, rng)
        lon, lat = self.net.frame.to_geographic(xn, yn)

        heading = np.mod(
            seg.heading + rng.normal(0.0, self.heading_noise_sd_deg, size=times.size),
            360.0,
        )
        return TraceArrays(
            taxi_id=np.full(times.size, taxi_id, dtype=np.int64),
            t=times,
            lon=lon,
            lat=lat,
            speed_kmh=speed_kmh,
            heading_deg=heading,
            gps_ok=gps_ok,
            overspeed=speed_kmh > OVERSPEED_KMH,
            passenger=passenger,
        )

    def generate(
        self,
        result: SimulationResult,
        rng: RngLike = None,
        *,
        first_taxi_id: int = 10_000,
    ) -> TraceArrays:
        """Generate the full raw trace for a simulation run.

        Taxi ids are assigned sequentially from ``first_taxi_id`` in a
        deterministic (segment id, entry time) order, so a fixed seed
        reproduces the identical trace.
        """
        rng = as_rng(rng)
        parts: List[TraceArrays] = []
        taxi_id = first_taxi_id
        for sid in sorted(result.tracks_by_segment):
            for track in result.tracks_by_segment[sid]:
                if not track.is_taxi:
                    continue
                sampled = self.sample_track(track, taxi_id, rng)
                taxi_id += 1
                if sampled is not None:
                    parts.append(sampled)
        return TraceArrays.concat(parts).sorted_by_time()

    def generate_for_segment(
        self,
        tracks: Sequence[VehicleTrack],
        rng: RngLike = None,
        *,
        first_taxi_id: int = 10_000,
    ) -> TraceArrays:
        """Generate a trace for a single approach's tracks."""
        rng = as_rng(rng)
        parts: List[TraceArrays] = []
        for i, track in enumerate(tracks):
            if not track.is_taxi:
                continue
            sampled = self.sample_track(track, first_taxi_id + i, rng)
            if sampled is not None:
                parts.append(sampled)
        return TraceArrays.concat(parts).sorted_by_time()

    # ------------------------------------------------------------------
    # Multi-segment journeys (corridor simulation)
    # ------------------------------------------------------------------
    def sample_journey(
        self,
        legs: Sequence[VehicleTrack],
        taxi_id: int,
        rng: RngLike = None,
    ) -> Optional[TraceArrays]:
        """Sample one multi-segment journey as a single taxi.

        Unlike per-track sampling, the reporting grid (interval and
        phase) is drawn once and spans every leg, so the emitted trace
        shows one taxi moving through consecutive intersections — the
        structure real fleet data has.
        """
        rng = as_rng(rng)
        if not legs:
            return None
        interval = self.policy.sample_interval(rng)
        times = sample_report_times(
            self.policy, interval, float(legs[0].t[0]), float(legs[-1].t[-1]), rng
        )
        if times.size == 0:
            return None
        starts = np.array([float(tr.t[0]) for tr in legs])
        leg_idx = np.clip(
            np.searchsorted(starts, times, side="right") - 1, 0, len(legs) - 1
        )
        parts: List[TraceArrays] = []
        for li in np.unique(leg_idx):
            tr = legs[int(li)]
            ts = times[leg_idx == li]
            # clamp report times into the leg's recorded span (tiny gaps
            # can exist at segment handovers)
            ts_c = np.clip(ts, float(tr.t[0]), float(tr.t[-1]))
            part = self._emit(tr, ts_c, taxi_id, rng)
            if part is not None:
                parts.append(part)
        if not parts:
            return None
        return TraceArrays.concat(parts).sorted_by_time()

    def _emit(
        self,
        track: VehicleTrack,
        times: np.ndarray,
        taxi_id: int,
        rng: np.random.Generator,
    ) -> Optional[TraceArrays]:
        """Emit reports for explicit report times along one track."""
        if times.size == 0:
            return None
        seg: Segment = self.net.segments[track.segment_id]
        idx = np.clip(np.round(times - track.t[0]).astype(np.int64), 0, len(track) - 1)
        dist = track.dist_to_stopline_m[idx]
        speed_kmh = track.speed_mps[idx] * 3.6
        passenger = track.passenger[idx]
        L = max(seg.length, 1e-9)
        frac = 1.0 - np.clip(dist, 0.0, L) / L
        x = seg.ax + frac * (seg.bx - seg.ax)
        y = seg.ay + frac * (seg.by - seg.ay)
        xn, yn, gps_ok = self.gps.apply(x, y, rng)
        lon, lat = self.net.frame.to_geographic(xn, yn)
        heading = np.mod(
            seg.heading + rng.normal(0.0, self.heading_noise_sd_deg, size=times.size),
            360.0,
        )
        return TraceArrays(
            taxi_id=np.full(times.size, taxi_id, dtype=np.int64),
            t=times,
            lon=lon,
            lat=lat,
            speed_kmh=speed_kmh,
            heading_deg=heading,
            gps_ok=gps_ok,
            overspeed=speed_kmh > OVERSPEED_KMH,
            passenger=passenger,
        )

    def generate_journeys(
        self,
        journeys: Sequence[Sequence[VehicleTrack]],
        rng: RngLike = None,
        *,
        taxi_fraction: float = 0.85,
        first_taxi_id: int = 50_000,
    ) -> TraceArrays:
        """Generate the raw trace of a corridor run.

        Taxi-ness is decided per journey (a vehicle either reports for
        its whole trip or not at all).
        """
        rng = as_rng(rng)
        parts: List[TraceArrays] = []
        taxi_id = first_taxi_id
        for legs in journeys:
            is_taxi = bool(rng.uniform() < taxi_fraction)
            tid = taxi_id
            taxi_id += 1
            if not is_taxi:
                continue
            sampled = self.sample_journey(legs, tid, rng)
            if sampled is not None:
                parts.append(sampled)
        return TraceArrays.concat(parts).sorted_by_time()
