"""Taxi-trace substrate: Table I records, fleet sampling, GPS noise,
trace statistics (Fig. 2), and the raw-text wire format."""

from .fleet import DEFAULT_INTERVAL_MIXTURE, ReportingPolicy, sample_report_times
from .generator import OVERSPEED_KMH, TraceGenerator
from .gps import GPSErrorModel
from .io import (
    BASE_DATE,
    format_record,
    parse_record,
    read_trace,
    seconds_to_timestamp,
    timestamp_to_seconds,
    write_trace,
)
from .records import BODY_COLORS, TaxiRecord, TraceArrays, plate_of, sim_card_of
from .store import PartitionStore
from .stats import (
    STATIONARY_DISTANCE_M,
    ConsecutivePairs,
    TraceStatistics,
    compute_statistics,
    consecutive_pairs,
    records_per_slot,
)

__all__ = [
    "DEFAULT_INTERVAL_MIXTURE",
    "ReportingPolicy",
    "sample_report_times",
    "OVERSPEED_KMH",
    "TraceGenerator",
    "GPSErrorModel",
    "BASE_DATE",
    "format_record",
    "parse_record",
    "read_trace",
    "seconds_to_timestamp",
    "timestamp_to_seconds",
    "write_trace",
    "BODY_COLORS",
    "TaxiRecord",
    "TraceArrays",
    "PartitionStore",
    "plate_of",
    "sim_card_of",
    "STATIONARY_DISTANCE_M",
    "ConsecutivePairs",
    "TraceStatistics",
    "compute_statistics",
    "consecutive_pairs",
    "records_per_slot",
]
