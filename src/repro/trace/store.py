"""Run-scoped column store of partitioned records.

``identify_many`` historically re-pickled every :class:`LightPartition`
into the process pool on every call — for ``evaluate_at_times`` that is
once per light per time spot.  A :class:`PartitionStore` flattens all
partitions into one set of contiguous columns (CSR-style: per-light row
ranges over shared arrays) built **once per run**, and layers the
caches the identification pipeline re-derives per call on top of it:

* ``window_samples`` — ``(t, speed)`` extraction near the stop line,
  O(log n) via ``searchsorted`` on the time-sorted rows instead of a
  full boolean mask per call;
* ``stops`` — the per-light :class:`~repro.core.stops.StopEvents`,
  extracted once over the whole partition and time-windowed per spot;
* ``mean_interval`` — the measured mean report interval, which never
  changes between time spots;
* ``cache`` — an open memo dictionary the batched backend uses for
  regularized grids and other per-(light, window) intermediates.

The store also travels cheaply across process boundaries: pickling
ships the columns once per worker (via ``pmap(..., common=...)``), and
with ``mmap_dir`` set the columns are spilled to ``.npy`` files so
workers re-open them memory-mapped and the pickle payload shrinks to
the file paths.

Extraction semantics are bit-identical to the per-partition code paths
(the parity suite ``tests/test_batch_parity.py`` holds them together).
"""

from __future__ import annotations

import os
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..parallel.pool import run_guarded
from .records import TraceArrays

if TYPE_CHECKING:  # import cycle: matching/core import the store lazily
    from ..core.stops import StopEvents
    from ..matching.partition import LightPartition

__all__ = ["PartitionStore"]

#: Partition key: (intersection id, approach group) — mirrors
#: :data:`repro.matching.partition.LightKey` without importing it
#: (matching sits above trace in the layer order).
LightKey = Tuple[int, str]

#: Per-record columns beyond the raw trace fields.
_EXTRA_COLUMNS = ("segment_id", "dist_to_stopline_m")

_ALL_COLUMNS = TraceArrays.COLUMNS + _EXTRA_COLUMNS


class PartitionStore:
    """Columnar, cache-carrying view over a city's light partitions.

    Build once per run with :meth:`from_partitions`; behaves as a
    read-only mapping from :data:`LightKey` to
    :class:`~repro.matching.partition.LightPartition` (reconstructed as
    zero-copy column slices), so it can stand in for the plain
    partition dict everywhere in the pipeline.
    """

    def __init__(
        self,
        keys: Sequence[LightKey],
        offsets: np.ndarray,
        columns: Dict[str, np.ndarray],
        *,
        irregular: Optional[Dict[LightKey, Any]] = None,
        mmap_dir: Optional[str] = None,
    ) -> None:
        self._regular_keys: List[LightKey] = [
            (int(iid), str(app)) for iid, app in keys
        ]
        self._offsets = np.asarray(offsets, dtype=np.int64)
        if self._offsets.shape[0] != len(self._regular_keys) + 1:
            raise ValueError(
                f"offsets has length {self._offsets.shape[0]}, expected "
                f"{len(self._regular_keys) + 1}"
            )
        missing = [c for c in _ALL_COLUMNS if c not in columns]
        if missing:
            raise ValueError(f"columns missing {missing}")
        self._columns: Optional[Dict[str, np.ndarray]] = dict(columns)
        # Partitions whose columns disagree on length cannot be stored
        # columnar without corrupting their neighbours' row ranges; they
        # ride along as-is and always take the serial path.
        self._irregular: Dict[LightKey, Any] = dict(irregular or {})
        self._mmap_dir = mmap_dir
        self._init_derived()

    def _init_derived(self) -> None:
        self._keys: List[LightKey] = sorted(
            list(self._regular_keys) + list(self._irregular)
        )
        self._index: Dict[LightKey, int] = {
            key: i for i, key in enumerate(self._regular_keys)
        }
        t = self.columns["t"]
        self._time_sorted = np.array(
            [
                bool(np.all(np.diff(t[self._offsets[i]:self._offsets[i + 1]]) >= 0))
                for i in range(len(self._regular_keys))
            ],
            dtype=bool,
        )
        self._partitions: Dict[LightKey, Any] = {}
        self._stops: Dict[LightKey, Any] = {}
        self._intervals: Dict[LightKey, float] = {}
        #: Open memo for per-(light, window) intermediates — the batched
        #: backend parks regularized grids and enhanced sample windows
        #: here so repeated ``evaluate_at_times`` spots reuse them.
        self.cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_partitions(
        cls,
        partitions: "Mapping[LightKey, LightPartition]",
        *,
        mmap_dir: Optional[str] = None,
    ) -> "PartitionStore":
        """Flatten a partition mapping into one columnar store.

        ``partitions`` maps :data:`LightKey` to
        :class:`~repro.matching.partition.LightPartition` (a store is
        returned unchanged).  With ``mmap_dir`` the columns are written
        as ``.npy`` files there and re-opened memory-mapped, so worker
        processes share pages instead of copies.
        """
        if isinstance(partitions, cls):
            return partitions
        keys: List[LightKey] = []
        irregular: Dict[LightKey, Any] = {}
        for key in sorted(partitions):
            if _is_regular(partitions[key]):
                keys.append(key)
            else:
                irregular[key] = partitions[key]
        offsets = np.zeros(len(keys) + 1, dtype=np.int64)
        for i, key in enumerate(keys):
            offsets[i + 1] = offsets[i] + len(partitions[key])
        columns: Dict[str, np.ndarray] = {}
        for name in TraceArrays.COLUMNS:
            columns[name] = _concat(
                [getattr(partitions[key].trace, name) for key in keys]
            )
        columns["segment_id"] = _concat(
            [np.asarray(partitions[key].segment_id) for key in keys]
        )
        columns["dist_to_stopline_m"] = _concat(
            [np.asarray(partitions[key].dist_to_stopline_m, dtype=float) for key in keys]
        )
        store = cls(keys, offsets, columns, irregular=irregular)
        if mmap_dir is not None:
            store.spill_to(mmap_dir)
        return store

    def spill_to(self, mmap_dir: str) -> None:
        """Write the columns to ``mmap_dir`` and re-open them mapped.

        After this, pickling the store ships only metadata + file paths
        and every process re-opens the same pages read-only.
        """
        os.makedirs(mmap_dir, exist_ok=True)
        assert self._columns is not None
        for name, col in self._columns.items():
            np.save(os.path.join(mmap_dir, f"{name}.npy"), col)
        self._mmap_dir = mmap_dir
        self._columns = None  # reload lazily, memory-mapped

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """The shared column arrays (lazily re-opened when mapped)."""
        if self._columns is None:
            assert self._mmap_dir is not None
            self._columns = {
                name: np.load(
                    os.path.join(self._mmap_dir, f"{name}.npy"), mmap_mode="r"
                )
                for name in _ALL_COLUMNS
            }
        return self._columns

    def __getstate__(self) -> Dict[str, Any]:
        state = {
            "keys": self._regular_keys,
            "offsets": self._offsets,
            "irregular": self._irregular,
            "mmap_dir": self._mmap_dir,
            # mapped columns reload from disk in the receiving process
            "columns": self._columns if self._mmap_dir is None else None,
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._regular_keys = state["keys"]
        self._offsets = state["offsets"]
        self._irregular = state["irregular"]
        self._mmap_dir = state["mmap_dir"]
        self._columns = state["columns"]
        self._init_derived()

    # ------------------------------------------------------------------
    # Mapping protocol (drop-in for Dict[LightKey, LightPartition])
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[LightKey]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._index or key in self._irregular

    def keys(self) -> List[LightKey]:
        return list(self._keys)

    def __getitem__(self, key: LightKey) -> "LightPartition":
        return self.partition(key)

    def get(
        self, key: LightKey, default: Optional["LightPartition"] = None
    ) -> Optional["LightPartition"]:
        return self.partition(key) if key in self else default

    def is_regular(self, key: LightKey) -> bool:
        """False for pass-through partitions with inconsistent columns
        (those always take the serial path)."""
        return key in self._index

    @property
    def n_records(self) -> int:
        return int(self._offsets[-1])

    # ------------------------------------------------------------------
    # Cached per-light views
    # ------------------------------------------------------------------
    def _range(self, key: LightKey) -> Tuple[int, int]:
        i = self._index[key]
        return int(self._offsets[i]), int(self._offsets[i + 1])

    def partition(self, key: LightKey) -> "LightPartition":
        """The light's :class:`LightPartition`, as zero-copy slices."""
        if key in self._irregular:
            return self._irregular[key]
        part = self._partitions.get(key)
        if part is None:
            from ..matching.partition import LightPartition

            lo, hi = self._range(key)
            cols = self.columns
            trace = TraceArrays(
                **{name: cols[name][lo:hi] for name in TraceArrays.COLUMNS}
            )
            part = LightPartition(
                intersection_id=key[0],
                approach=key[1],
                trace=trace,
                segment_id=np.asarray(cols["segment_id"][lo:hi]),
                dist_to_stopline_m=np.asarray(cols["dist_to_stopline_m"][lo:hi]),
            )
            self._partitions[key] = part
        return part

    def window_samples(
        self, key: LightKey, t0: float, t1: float, max_dist_m: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(t, speed) near the stop line within ``[t0, t1)``.

        Identical values to
        :func:`repro.core.pipeline._window_samples` on the equivalent
        partition; time-sorted lights use a binary search instead of a
        full mask.
        """
        if key in self._irregular:
            p = self._irregular[key]
            keep = (
                (p.trace.t >= t0)
                & (p.trace.t < t1)
                & (p.dist_to_stopline_m <= max_dist_m)
            )
            return p.trace.t[keep], p.trace.speed_kmh[keep]
        lo, hi = self._range(key)
        cols = self.columns
        t = cols["t"][lo:hi]
        dist = cols["dist_to_stopline_m"][lo:hi]
        v = cols["speed_kmh"][lo:hi]
        if self._time_sorted[self._index[key]]:
            a = int(np.searchsorted(t, t0, side="left"))
            b = int(np.searchsorted(t, t1, side="left"))
            near = dist[a:b] <= max_dist_m
            return t[a:b][near], v[a:b][near]
        keep = (t >= t0) & (t < t1) & (dist <= max_dist_m)
        return t[keep], v[keep]

    def stops(self, key: LightKey) -> "StopEvents":
        """The light's stop events, extracted once per store lifetime."""
        events = self._stops.get(key)
        if events is None:
            from ..core.stops import extract_stops

            events = extract_stops(self.partition(key))
            self._stops[key] = events
        return events

    def mean_interval(self, key: LightKey, default_s: float = 20.14) -> float:
        """Measured mean report interval (cached; see pipeline)."""
        interval = self._intervals.get(key)
        if interval is None:
            from ..core.pipeline import measured_mean_interval

            interval = measured_mean_interval(self.partition(key), default_s)
            self._intervals[key] = interval
        return interval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = f"mmap:{self._mmap_dir}" if self._mmap_dir else "in-memory"
        return (
            f"PartitionStore({len(self._keys)} lights, "
            f"{self.n_records:,} records, {backing})"
        )


def _probe_regular(partition: "LightPartition") -> bool:
    """All per-record columns agree on one length (may raise on garbage)."""
    n = len(partition.trace)
    cols = [getattr(partition.trace, name) for name in TraceArrays.COLUMNS]
    cols += [
        np.asarray(partition.segment_id),
        np.asarray(partition.dist_to_stopline_m),
    ]
    return all(c.ndim == 1 and c.shape[0] == n for c in cols)


def _is_regular(partition: "LightPartition") -> bool:
    """True when the partition can be stored columnar.

    Probing arbitrary partition-like objects can raise anything, so the
    probe runs through the sanctioned containment seam
    (:func:`repro.parallel.pool.run_guarded`); a partition whose probe
    fails is quarantined onto the serial path rather than trusted.
    """
    return run_guarded(_probe_regular, partition) is True


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)
