"""Run-scoped column store of partitioned records.

``identify_many`` historically re-pickled every :class:`LightPartition`
into the process pool on every call — for ``evaluate_at_times`` that is
once per light per time spot.  A :class:`PartitionStore` flattens all
partitions into one set of contiguous columns (CSR-style: per-light row
ranges over shared arrays) built **once per run**, and layers the
caches the identification pipeline re-derives per call on top of it:

* ``window_samples`` — ``(t, speed)`` extraction near the stop line,
  O(log n) via ``searchsorted`` on the time-sorted rows instead of a
  full boolean mask per call;
* ``stops`` — the per-light :class:`~repro.core.stops.StopEvents`,
  extracted once over the whole partition and time-windowed per spot;
* ``mean_interval`` — the measured mean report interval, which never
  changes between time spots;
* ``cache`` — an open memo dictionary the batched backend uses for
  regularized grids and other per-(light, window) intermediates.

The store also travels cheaply across process boundaries: pickling
ships the columns once per worker (via ``pmap(..., common=...)``), and
with ``mmap_dir`` set the columns are spilled to ``.npy`` files so
workers re-open them memory-mapped and the pickle payload shrinks to
the file paths.

Extraction semantics are bit-identical to the per-partition code paths
(the parity suite ``tests/test_batch_parity.py`` holds them together).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..parallel.pool import WorkerError, run_guarded
from .records import TraceArrays

if TYPE_CHECKING:  # import cycle: matching/core import the store lazily
    from ..core.stops import StopEvents
    from ..matching.partition import LightPartition

__all__ = ["PartitionStore"]

#: Partition key: (intersection id, approach group) — mirrors
#: :data:`repro.matching.partition.LightKey` without importing it
#: (matching sits above trace in the layer order).
LightKey = Tuple[int, str]

#: Per-record columns beyond the raw trace fields.
_EXTRA_COLUMNS = ("segment_id", "dist_to_stopline_m")

_ALL_COLUMNS = TraceArrays.COLUMNS + _EXTRA_COLUMNS


class PartitionStore:
    """Columnar, cache-carrying view over a city's light partitions.

    Build once per run with :meth:`from_partitions`; behaves as a
    read-only mapping from :data:`LightKey` to
    :class:`~repro.matching.partition.LightPartition` (reconstructed as
    zero-copy column slices), so it can stand in for the plain
    partition dict everywhere in the pipeline.
    """

    def __init__(
        self,
        keys: Sequence[LightKey],
        offsets: np.ndarray,
        columns: Dict[str, np.ndarray],
        *,
        irregular: Optional[Dict[LightKey, Any]] = None,
        mmap_dir: Optional[str] = None,
    ) -> None:
        self._regular_keys: List[LightKey] = [
            (int(iid), str(app)) for iid, app in keys
        ]
        self._offsets = np.asarray(offsets, dtype=np.int64)
        if self._offsets.shape[0] != len(self._regular_keys) + 1:
            raise ValueError(
                f"offsets has length {self._offsets.shape[0]}, expected "
                f"{len(self._regular_keys) + 1}"
            )
        missing = [c for c in _ALL_COLUMNS if c not in columns]
        if missing:
            raise ValueError(f"columns missing {missing}")
        self._columns: Optional[Dict[str, np.ndarray]] = dict(columns)
        # Partitions whose columns disagree on length cannot be stored
        # columnar without corrupting their neighbours' row ranges; they
        # ride along as-is and always take the serial path.
        self._irregular: Dict[LightKey, Any] = dict(irregular or {})
        self._mmap_dir = mmap_dir
        self._init_derived()

    def _init_derived(self) -> None:
        self._refresh_keys()
        self._partitions: Dict[LightKey, Any] = {}
        self._stops: Dict[LightKey, Any] = {}
        self._intervals: Dict[LightKey, float] = {}
        #: Open memo for per-(light, window) intermediates — the batched
        #: backend parks regularized grids and enhanced sample windows
        #: here so repeated ``evaluate_at_times`` spots reuse them.
        #: Convention: memo keys are tuples whose element ``[1]`` is the
        #: owning :data:`LightKey` — :meth:`invalidate_light` relies on
        #: it to purge one light's entries without touching the rest.
        self.cache: Dict[Any, Any] = {}

    def _refresh_keys(self) -> None:
        """Rebuild the key/index/sortedness views after a column change."""
        self._keys: List[LightKey] = sorted(
            list(self._regular_keys) + list(self._irregular)
        )
        self._index: Dict[LightKey, int] = {
            key: i for i, key in enumerate(self._regular_keys)
        }
        t = self.columns["t"]
        self._time_sorted = np.array(
            [
                bool(np.all(np.diff(t[self._offsets[i]:self._offsets[i + 1]]) >= 0))
                for i in range(len(self._regular_keys))
            ],
            dtype=bool,
        )

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_partitions(
        cls,
        partitions: "Mapping[LightKey, LightPartition]",
        *,
        mmap_dir: Optional[str] = None,
    ) -> "PartitionStore":
        """Flatten a partition mapping into one columnar store.

        ``partitions`` maps :data:`LightKey` to
        :class:`~repro.matching.partition.LightPartition` (a store is
        returned unchanged).  With ``mmap_dir`` the columns are written
        as ``.npy`` files there and re-opened memory-mapped, so worker
        processes share pages instead of copies.
        """
        if isinstance(partitions, cls):
            return partitions
        keys: List[LightKey] = []
        irregular: Dict[LightKey, Any] = {}
        for key in sorted(partitions):
            if _is_regular(partitions[key]):
                keys.append(key)
            else:
                irregular[key] = partitions[key]
        offsets = np.zeros(len(keys) + 1, dtype=np.int64)
        for i, key in enumerate(keys):
            offsets[i + 1] = offsets[i] + len(partitions[key])
        per_key = [_partition_columns(partitions[key]) for key in keys]
        columns: Dict[str, np.ndarray] = {
            name: _concat([cols[name] for cols in per_key]) for name in _ALL_COLUMNS
        }
        store = cls(keys, offsets, columns, irregular=irregular)
        if mmap_dir is not None:
            store.spill_to(mmap_dir)
        return store

    def append_partitions(
        self, chunk: "Mapping[LightKey, LightPartition]"
    ) -> FrozenSet[LightKey]:
        """Append a chunk of per-light records **in place**.

        ``chunk`` maps :data:`LightKey` to a partition holding only the
        new records (a chunk of a replayed trace, or fresh arrivals of a
        live stream).  Returns the set of touched lights.  Contracts:

        * each touched light's rows are re-sorted into the canonical
          ``(t, taxi_id)`` order, so the merged columns are independent
          of how the records were chunked or permuted on the way in
          (bit-for-bit, whenever report timestamps are unique per
          light — always true for continuous-time traces);
        * **only** touched lights lose their cached partition view, stop
          events, mean report interval, and memo (:attr:`cache`)
          entries — every other light's caches survive verbatim;
        * an irregular chunk (inconsistent column lengths) quarantines
          its light onto the serial pass-through path, exactly like an
          irregular partition at build time; healthy lights are
          unaffected;
        * a store spilled to ``mmap_dir`` is pulled back in-memory (the
          on-disk columns no longer match).
        """
        touched: Set[LightKey] = set()
        demoted: Set[LightKey] = set()
        add_rows: Dict[LightKey, "LightPartition"] = {}
        for raw_key in sorted(chunk):
            part = chunk[raw_key]
            key: LightKey = (int(raw_key[0]), str(raw_key[1]))
            if key not in self._irregular and _is_regular(part):
                if len(part.trace) == 0:
                    continue  # empty chunk: nothing changes, keep caches
                add_rows[key] = part
            else:
                base = self._irregular.get(key)
                if base is None and key in self._index:
                    base = self.partition(key)
                    demoted.add(key)
                self._irregular[key] = (
                    part if base is None else _merge_irregular(base, part)
                )
            touched.add(key)
        if add_rows or demoted:
            self._splice_rows(add_rows, demoted)
        for key in touched:
            self.invalidate_light(key)
        if touched:
            self._refresh_keys()
        return frozenset(touched)

    def _splice_rows(
        self,
        add_rows: "Mapping[LightKey, LightPartition]",
        demoted: AbstractSet[LightKey],
    ) -> None:
        """Rebuild the CSR columns with *add_rows* merged in.

        Untouched lights' rows are copied verbatim (one concatenate per
        column); each touched light's merged rows are re-sorted into the
        canonical ``(t, taxi_id)`` order.
        """
        old_cols = self.columns
        new_keys = sorted(
            (set(self._regular_keys) | set(add_rows)) - set(demoted)
        )
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in _ALL_COLUMNS}
        offsets = np.zeros(len(new_keys) + 1, dtype=np.int64)
        for i, key in enumerate(new_keys):
            cols_k: Dict[str, np.ndarray] = {}
            if key in self._index:
                lo, hi = self._range(key)
                for name in _ALL_COLUMNS:
                    cols_k[name] = old_cols[name][lo:hi]
            fresh = add_rows.get(key)
            if fresh is not None:
                new_cols = _partition_columns(fresh)
                if cols_k:
                    for name in _ALL_COLUMNS:
                        cols_k[name] = np.concatenate([cols_k[name], new_cols[name]])
                else:
                    cols_k = new_cols
                order = np.lexsort((cols_k["taxi_id"], cols_k["t"]))
                if not np.array_equal(order, np.arange(order.shape[0])):
                    cols_k = {name: col[order] for name, col in cols_k.items()}
            offsets[i + 1] = offsets[i] + cols_k["t"].shape[0]
            for name in _ALL_COLUMNS:
                pieces[name].append(np.asarray(cols_k[name]))
        previous_dir = self._mmap_dir
        self._regular_keys = list(new_keys)
        self._offsets = offsets
        self._columns = {name: _concat(pieces[name]) for name in _ALL_COLUMNS}
        self._mmap_dir = None
        if previous_dir is not None:
            # the on-disk columns no longer match the spliced rows;
            # leaving them behind would let a later reload serve stale data
            _remove_column_files(previous_dir)

    def invalidate_light(self, key: LightKey, *, derived_only: bool = False) -> None:
        """Drop one light's cached state, leaving every other light's intact.

        With ``derived_only=True`` the light's own extractions (cached
        partition view, stop events, mean interval) survive and only its
        open-memo (:attr:`cache`) entries are purged — the right scope
        when a *neighbouring* light's new data can invalidate
        enhancement-dependent intermediates (mirrored sample grids) but
        not this light's own records.
        """
        if not derived_only:
            self._partitions.pop(key, None)
            self._stops.pop(key, None)
            self._intervals.pop(key, None)
        stale = [
            ck
            for ck in self.cache
            if isinstance(ck, tuple) and len(ck) >= 2 and ck[1] == key
        ]
        for ck in stale:
            del self.cache[ck]

    def _swap_backing(
        self,
        columns: Optional[Dict[str, np.ndarray]],
        mmap_dir: Optional[str],
    ) -> None:
        """Flip the column backing between in-memory and memory-mapped.

        Both representations hold bit-identical rows, so no derived
        cache depends on which one is active and no invalidation is
        due; this is the single sanctioned column write outside the
        row-splicing path.
        """
        self._columns = columns  # repro: allow[REP007]
        self._mmap_dir = mmap_dir

    def spill_to(self, mmap_dir: str) -> None:
        """Write the columns to ``mmap_dir`` and re-open them mapped.

        After this, pickling the store ships only metadata + file paths
        and every process re-opens the same pages read-only.

        Idempotent: re-spilling to the directory already backing the
        store is a no-op, and spilling an already-spilled store to a
        *different* directory rewrites the columns there and deletes the
        old directory's column files — ``_mmap_dir`` never points at
        stale state and no orphaned ``.npy`` files accumulate.
        """
        mmap_dir = os.path.abspath(mmap_dir)
        previous = self._mmap_dir
        if previous == mmap_dir:
            return
        os.makedirs(mmap_dir, exist_ok=True)
        # `columns` (not `_columns`): an already-spilled store may have
        # lazily dropped its arrays, and the property reloads them.
        for name, col in self.columns.items():
            np.save(os.path.join(mmap_dir, f"{name}.npy"), col)
        self._swap_backing(None, mmap_dir)  # reload lazily, memory-mapped
        if previous is not None:
            _remove_column_files(previous)

    @contextmanager
    def spilled(self, mmap_dir: Optional[str] = None) -> Iterator["PartitionStore"]:
        """Temporarily back the columns with on-disk ``.npy`` maps.

        Spills to *mmap_dir* (default: a fresh temporary directory) and
        yields the store itself — which now pickles as a lightweight
        handle (metadata + file paths, zero column bytes), the seam the
        sharded backend fans out over.  On exit the original in-memory
        arrays are swapped back and the spill files are removed (the
        whole temporary directory when this call created it).

        A store that was already spilled is yielded as-is and left
        spilled — its caller owns the lifecycle.  The restore is also
        skipped when the backing changed underneath (e.g. an
        :meth:`append_partitions` inside the context pulled the store
        back in-memory): the fresher rows win over the snapshot.
        """
        if self._mmap_dir is not None:
            yield self
            return
        original = self._columns
        own_dir = mmap_dir is None
        target = tempfile.mkdtemp(prefix="repro-store-") if own_dir else mmap_dir
        assert target is not None
        self.spill_to(target)
        token = self._mmap_dir  # the normalized path spill_to recorded
        try:
            yield self
        finally:
            if self._mmap_dir == token and original is not None:
                self._swap_backing(original, None)
                if own_dir:
                    shutil.rmtree(token, ignore_errors=True)
                else:
                    _remove_column_files(token)

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """The shared column arrays (lazily re-opened when mapped)."""
        if self._columns is None:
            assert self._mmap_dir is not None
            self._swap_backing(
                {
                    name: np.load(
                        os.path.join(self._mmap_dir, f"{name}.npy"), mmap_mode="r"
                    )
                    for name in _ALL_COLUMNS
                },
                self._mmap_dir,
            )
        assert self._columns is not None
        return self._columns

    def __getstate__(self) -> Dict[str, Any]:
        state = {
            "keys": self._regular_keys,
            "offsets": self._offsets,
            "irregular": self._irregular,
            "mmap_dir": self._mmap_dir,
            # mapped columns reload from disk in the receiving process
            "columns": self._columns if self._mmap_dir is None else None,
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._regular_keys = state["keys"]
        self._offsets = state["offsets"]
        self._irregular = state["irregular"]
        self._mmap_dir = state["mmap_dir"]
        self._columns = state["columns"]
        self._init_derived()

    # ------------------------------------------------------------------
    # Mapping protocol (drop-in for Dict[LightKey, LightPartition])
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[LightKey]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._index or key in self._irregular

    def keys(self) -> List[LightKey]:
        return list(self._keys)

    def __getitem__(self, key: LightKey) -> "LightPartition":
        return self.partition(key)

    def get(
        self, key: LightKey, default: Optional["LightPartition"] = None
    ) -> Optional["LightPartition"]:
        return self.partition(key) if key in self else default

    def is_regular(self, key: LightKey) -> bool:
        """False for pass-through partitions with inconsistent columns
        (those always take the serial path)."""
        return key in self._index

    @property
    def n_records(self) -> int:
        return int(self._offsets[-1])

    @property
    def columns_nbytes(self) -> int:
        """Total bytes of the column arrays — what a full (unspilled)
        pickle would ship to every worker."""
        return int(sum(int(col.nbytes) for col in self.columns.values()))

    def light_n_records(self, key: LightKey) -> int:
        """Rows held for *key*: the columnar range for regular lights,
        the pass-through partition's own record count for quarantined
        ones (0 when even that is unmeasurable).  The sharded backend
        balances its shards on these weights."""
        if key in self._irregular:
            n = run_guarded(len, self._irregular[key])
            return 0 if isinstance(n, WorkerError) else int(n)
        i = self._index[key]
        return int(self._offsets[i + 1] - self._offsets[i])

    # ------------------------------------------------------------------
    # Cached per-light views
    # ------------------------------------------------------------------
    def _range(self, key: LightKey) -> Tuple[int, int]:
        i = self._index[key]
        return int(self._offsets[i]), int(self._offsets[i + 1])

    def partition(self, key: LightKey) -> "LightPartition":
        """The light's :class:`LightPartition`, as zero-copy slices."""
        if key in self._irregular:
            return self._irregular[key]
        part = self._partitions.get(key)
        if part is None:
            from ..matching.partition import LightPartition

            lo, hi = self._range(key)
            cols = self.columns
            trace = TraceArrays(
                **{name: cols[name][lo:hi] for name in TraceArrays.COLUMNS}
            )
            part = LightPartition(
                intersection_id=key[0],
                approach=key[1],
                trace=trace,
                segment_id=np.asarray(cols["segment_id"][lo:hi]),
                dist_to_stopline_m=np.asarray(cols["dist_to_stopline_m"][lo:hi]),
            )
            self._partitions[key] = part
        return part

    def window_samples(
        self, key: LightKey, t0: float, t1: float, max_dist_m: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(t, speed) near the stop line within ``[t0, t1)``.

        Identical values to
        :func:`repro.core.pipeline._window_samples` on the equivalent
        partition; time-sorted lights use a binary search instead of a
        full mask.
        """
        if key in self._irregular:
            p = self._irregular[key]
            keep = (
                (p.trace.t >= t0)
                & (p.trace.t < t1)
                & (p.dist_to_stopline_m <= max_dist_m)
            )
            return p.trace.t[keep], p.trace.speed_kmh[keep]
        lo, hi = self._range(key)
        cols = self.columns
        t = cols["t"][lo:hi]
        dist = cols["dist_to_stopline_m"][lo:hi]
        v = cols["speed_kmh"][lo:hi]
        if self._time_sorted[self._index[key]]:
            a = int(np.searchsorted(t, t0, side="left"))
            b = int(np.searchsorted(t, t1, side="left"))
            near = dist[a:b] <= max_dist_m
            return t[a:b][near], v[a:b][near]
        keep = (t >= t0) & (t < t1) & (dist <= max_dist_m)
        return t[keep], v[keep]

    def stops(self, key: LightKey) -> "StopEvents":
        """The light's stop events, extracted once per store lifetime."""
        events = self._stops.get(key)
        if events is None:
            from ..core.stops import extract_stops

            events = extract_stops(self.partition(key))
            self._stops[key] = events
        return events

    def mean_interval(self, key: LightKey, default_s: float = 20.14) -> float:
        """Measured mean report interval (cached; see pipeline)."""
        interval = self._intervals.get(key)
        if interval is None:
            from ..core.pipeline import measured_mean_interval

            interval = measured_mean_interval(self.partition(key), default_s)
            self._intervals[key] = interval
        return interval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = f"mmap:{self._mmap_dir}" if self._mmap_dir else "in-memory"
        return (
            f"PartitionStore({len(self._keys)} lights, "
            f"{self.n_records:,} records, {backing})"
        )


def _probe_regular(partition: "LightPartition") -> bool:
    """All per-record columns agree on one length (may raise on garbage)."""
    n = len(partition.trace)
    cols = [getattr(partition.trace, name) for name in TraceArrays.COLUMNS]
    cols += [
        np.asarray(partition.segment_id),
        np.asarray(partition.dist_to_stopline_m),
    ]
    return all(c.ndim == 1 and c.shape[0] == n for c in cols)


def _is_regular(partition: "LightPartition") -> bool:
    """True when the partition can be stored columnar.

    Probing arbitrary partition-like objects can raise anything, so the
    probe runs through the sanctioned containment seam
    (:func:`repro.parallel.pool.run_guarded`); a partition whose probe
    fails is quarantined onto the serial path rather than trusted.
    """
    return run_guarded(_probe_regular, partition) is True


def _remove_column_files(mmap_dir: str) -> None:
    """Best-effort removal of a directory's spilled column files.

    Only the store's own ``<column>.npy`` files are touched — the
    directory itself may be caller-owned and is left in place.
    """
    for name in _ALL_COLUMNS:
        try:
            os.unlink(os.path.join(mmap_dir, f"{name}.npy"))
        except OSError:
            pass  # already gone, or the directory vanished with it


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)


def _partition_columns(part: "LightPartition") -> Dict[str, np.ndarray]:
    """One partition's rows as the store's column dict."""
    out: Dict[str, np.ndarray] = {
        name: np.asarray(getattr(part.trace, name)) for name in TraceArrays.COLUMNS
    }
    out["segment_id"] = np.asarray(part.segment_id)
    out["dist_to_stopline_m"] = np.asarray(part.dist_to_stopline_m, dtype=np.float64)
    return out


def _merge_partitions(
    base: "LightPartition", fresh: "LightPartition"
) -> "LightPartition":
    """Row-concatenate two partitions (may raise on garbage inputs)."""
    from ..matching.partition import LightPartition

    return LightPartition(
        intersection_id=base.intersection_id,
        approach=base.approach,
        trace=TraceArrays.concat([base.trace, fresh.trace]),
        segment_id=np.concatenate(
            [np.asarray(base.segment_id), np.asarray(fresh.segment_id)]
        ),
        dist_to_stopline_m=np.concatenate(
            [
                np.asarray(base.dist_to_stopline_m, dtype=np.float64),
                np.asarray(fresh.dist_to_stopline_m, dtype=np.float64),
            ]
        ),
    )


def _merge_irregular(base: Any, fresh: Any) -> Any:
    """Best-effort merge of two pass-through partitions.

    Either side may be arbitrary garbage, so the merge runs through the
    sanctioned containment seam.  When it fails, the *fresh* chunk wins:
    the serial path then surfaces the fault for this light instead of
    silently serving estimates from stale pre-chunk records.
    """
    merged = run_guarded(_merge_partitions, base, fresh)
    if isinstance(merged, WorkerError):
        return fresh
    return merged
