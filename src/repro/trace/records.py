"""Taxi-trace records in the paper's Table I format.

Two representations:

* :class:`TaxiRecord` — one report, all 12 fields, for readable code and
  text I/O;
* :class:`TraceArrays` — struct-of-arrays over many reports, the form
  every algorithm consumes (vectorized filtering, sorting, and per-light
  partitioning are O(1) views / fancy indexing, per the HPC guides).

Times are absolute simulation seconds (``t=0`` is midnight of day 0);
:mod:`repro.trace.io` renders them as the paper's ``YYYY-MM-DD HH:mm:ss``
strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np
import numpy.typing as npt

__all__ = ["TaxiRecord", "TraceArrays", "plate_of", "sim_card_of", "BODY_COLORS"]

#: Taxi body colors observed in the Shenzhen fleet (Table I field 12).
BODY_COLORS = ("red", "green", "blue", "yellow")


def plate_of(taxi_id: int) -> str:
    """Deterministic Shenzhen-style plate string for a taxi id."""
    return f"粤B{taxi_id % 100000:05d}"


def sim_card_of(taxi_id: int) -> str:
    """Deterministic SIM card number for a taxi id (Table I field 10)."""
    return f"1390000{taxi_id % 100000:05d}"


@dataclass(frozen=True)
class TaxiRecord:
    """One taxi report — the 12 fields of Table I.

    Only (id, time, longitude, latitude, speed) drive identification;
    GPS condition, passenger condition and heading are used for outlier
    filtering, exactly as in the paper.
    """

    plate: str                 # 1. car plate number
    longitude: float           # 2. degrees (serialized ×1e6)
    latitude: float            # 3. degrees (serialized ×1e6)
    time_s: float              # 4. absolute seconds (serialized as datetime)
    device_id: int             # 5. onboard device id
    speed_kmh: float           # 6. driving speed, km/h
    heading_deg: float         # 7. degrees clockwise from north
    gps_ok: bool               # 8. GPS condition
    overspeed: bool            # 9. overspeed warning
    sim_card: str              # 10. SIM card number
    passenger: bool            # 11. occupancy
    color: str                 # 12. body color


class TraceArrays:
    """Columnar store of taxi reports.

    All columns share one length; rows are independent reports.  The
    class is deliberately *not* frozen — pipelines build it once and
    pass around read-only views.

    Parameters mirror :class:`TaxiRecord`, except the plate/SIM/color
    strings are derived from ``taxi_id`` on demand.
    """

    COLUMNS = (
        "taxi_id", "t", "lon", "lat", "speed_kmh",
        "heading_deg", "device_id", "gps_ok", "overspeed", "passenger",
    )

    def __init__(
        self,
        taxi_id: npt.ArrayLike,
        t: npt.ArrayLike,
        lon: npt.ArrayLike,
        lat: npt.ArrayLike,
        speed_kmh: npt.ArrayLike,
        heading_deg: Optional[npt.ArrayLike] = None,
        device_id: Optional[npt.ArrayLike] = None,
        gps_ok: Optional[npt.ArrayLike] = None,
        overspeed: Optional[npt.ArrayLike] = None,
        passenger: Optional[npt.ArrayLike] = None,
    ) -> None:
        self.taxi_id = np.asarray(taxi_id, dtype=np.int64)
        n = self.taxi_id.shape[0]
        self.t = np.asarray(t, dtype=float)
        self.lon = np.asarray(lon, dtype=float)
        self.lat = np.asarray(lat, dtype=float)
        self.speed_kmh = np.asarray(speed_kmh, dtype=float)
        self.heading_deg = (
            np.zeros(n) if heading_deg is None else np.asarray(heading_deg, dtype=float)
        )
        self.device_id = (
            self.taxi_id + 700_000 if device_id is None
            else np.asarray(device_id, dtype=np.int64)
        )
        self.gps_ok = (
            np.ones(n, dtype=bool) if gps_ok is None else np.asarray(gps_ok, dtype=bool)
        )
        self.overspeed = (
            np.zeros(n, dtype=bool) if overspeed is None
            else np.asarray(overspeed, dtype=bool)
        )
        self.passenger = (
            np.zeros(n, dtype=bool) if passenger is None
            else np.asarray(passenger, dtype=bool)
        )
        for name in self.COLUMNS:
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != n:
                raise ValueError(
                    f"column {name!r} has shape {col.shape}, expected ({n},)"
                )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.taxi_id.shape[0])

    def subset(self, index: np.ndarray) -> "TraceArrays":
        """New :class:`TraceArrays` selected by mask or fancy index."""
        return TraceArrays(**{name: getattr(self, name)[index] for name in self.COLUMNS})

    def sorted_by_time(self) -> "TraceArrays":
        """Stable sort by report time."""
        return self.subset(np.argsort(self.t, kind="stable"))

    def sorted_by_taxi_then_time(self) -> "TraceArrays":
        """Stable sort by (taxi_id, time) — the layout consecutive-update
        statistics (Fig. 2) and stop extraction need."""
        return self.subset(np.lexsort((self.t, self.taxi_id)))

    def time_window(self, t0: float, t1: float) -> "TraceArrays":
        """Reports with ``t0 <= t < t1``."""
        return self.subset((self.t >= t0) & (self.t < t1))

    @classmethod
    def empty(cls) -> "TraceArrays":
        """A zero-row trace."""
        z = np.empty(0)
        return cls(z.astype(np.int64), z, z, z, z)

    @classmethod
    def concat(cls, parts: Sequence["TraceArrays"]) -> "TraceArrays":
        """Concatenate traces (rows stacked in order)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        return cls(
            **{
                name: np.concatenate([getattr(p, name) for p in parts])
                for name in cls.COLUMNS
            }
        )

    # ------------------------------------------------------------------
    # Record conversion
    # ------------------------------------------------------------------
    def to_records(self) -> List[TaxiRecord]:
        """Materialize as :class:`TaxiRecord` objects (small traces only)."""
        out: List[TaxiRecord] = []
        for i in range(len(self)):
            tid = int(self.taxi_id[i])
            out.append(
                TaxiRecord(
                    plate=plate_of(tid),
                    longitude=float(self.lon[i]),
                    latitude=float(self.lat[i]),
                    time_s=float(self.t[i]),
                    device_id=int(self.device_id[i]),
                    speed_kmh=float(self.speed_kmh[i]),
                    heading_deg=float(self.heading_deg[i]),
                    gps_ok=bool(self.gps_ok[i]),
                    overspeed=bool(self.overspeed[i]),
                    sim_card=sim_card_of(tid),
                    passenger=bool(self.passenger[i]),
                    color=BODY_COLORS[tid % len(BODY_COLORS)],
                )
            )
        return out

    @classmethod
    def from_records(cls, records: Iterable[TaxiRecord]) -> "TraceArrays":
        """Build columnar storage from record objects.

        The taxi id is recovered from the plate's numeric suffix.
        """
        records = list(records)
        if not records:
            return cls.empty()
        return cls(
            taxi_id=[int(r.plate[-5:]) for r in records],
            t=[r.time_s for r in records],
            lon=[r.longitude for r in records],
            lat=[r.latitude for r in records],
            speed_kmh=[r.speed_kmh for r in records],
            heading_deg=[r.heading_deg for r in records],
            device_id=[r.device_id for r in records],
            gps_ok=[r.gps_ok for r in records],
            overspeed=[r.overspeed for r in records],
            passenger=[r.passenger for r in records],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self)
        if n == 0:
            return "TraceArrays(0 records)"
        return (
            f"TraceArrays({n} records, {len(np.unique(self.taxi_id))} taxis, "
            f"t in [{self.t.min():.0f}, {self.t.max():.0f}])"
        )
