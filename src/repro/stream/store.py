"""Incremental ingest into a :class:`~repro.trace.store.PartitionStore`.

``StreamStore`` is the mutation layer of the streaming backend: it owns
a ``PartitionStore`` and translates each arriving chunk into the
minimal cache damage —

* a **touched** light (one that received records) loses its partition
  view, stop events, mean report interval, and memo entries;
* its perpendicular partner at the same intersection loses its **memo
  entries only**: §V.B enhancement mirrors the partner's samples into
  sparse windows, so a partner's regularized grid may embed the touched
  light's data, but its own records/stops/interval are untouched;
* every other light's caches survive verbatim.

The **dirty** set (touched lights plus their present partners) is what
the session layer must re-identify; everything else may serve cached
estimates.  Per-light version counters make staleness checks O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Set

from ..matching.partition import LightKey, LightPartition, partner_of
from ..trace.store import PartitionStore

__all__ = ["ChunkIngest", "StreamStore"]


@dataclass(frozen=True)
class ChunkIngest:
    """What one :meth:`StreamStore.append` did.

    Attributes
    ----------
    touched:
        Lights that received records.
    dirty:
        Lights whose cached estimates are now stale: the touched lights
        plus their enhancement-coupled perpendicular partners.
    n_records:
        Records the chunk carried (summed over lights).
    t_max:
        Latest report time in the chunk (``None`` for an empty chunk) —
        the natural "now" for an ingest-triggered refresh.
    """

    touched: FrozenSet[LightKey]
    dirty: FrozenSet[LightKey]
    n_records: int
    t_max: Optional[float]


class StreamStore:
    """A :class:`PartitionStore` that accepts per-chunk appends.

    Parameters
    ----------
    store:
        Optional existing store (or plain partition mapping) to start
        from; by default the stream starts empty.
    """

    def __init__(
        self,
        store: Optional[Mapping[LightKey, LightPartition]] = None,
    ) -> None:
        self.store: PartitionStore = PartitionStore.from_partitions(
            store if store is not None else {}
        )
        #: Monotonic per-light data version; bumped for every light an
        #: append dirties.  Consumers compare against the version they
        #: evaluated at to decide staleness in O(1).
        self.versions: Dict[LightKey, int] = {key: 0 for key in self.store}

    def version(self, key: LightKey) -> int:
        return self.versions.get(key, 0)

    def append(self, chunk: Mapping[LightKey, LightPartition]) -> ChunkIngest:
        """Ingest one chunk; returns the touched/dirty accounting."""
        n_records = 0
        t_max: Optional[float] = None
        for part in chunk.values():
            n = len(part.trace)
            n_records += n
            if n:
                hi = float(part.trace.t.max())
                t_max = hi if t_max is None else max(t_max, hi)

        touched = self.store.append_partitions(chunk)
        dirty: Set[LightKey] = set(touched)
        for key in touched:
            partner = partner_of(key)
            if partner in self.store and partner not in touched:
                # The partner's own records are intact; only its
                # enhancement-derived memo entries can embed stale data.
                self.store.invalidate_light(partner, derived_only=True)
                dirty.add(partner)
        for key in dirty:
            self.versions[key] = self.versions.get(key, 0) + 1
        return ChunkIngest(
            touched=touched,
            dirty=frozenset(dirty),
            n_records=n_records,
            t_max=t_max,
        )
