"""Replay helpers: turn a partition mapping into ingestable chunks.

These are the test harness's levers for the replay-parity oracle: the
same scenario sliced by time, sliced at random, and row-permuted must
all converge to the same streamed state.  They are also what the CLI's
``repro stream`` subcommand uses to replay a simulated trace.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from .._util import RngLike, as_rng
from ..matching.partition import LightKey, LightPartition

__all__ = ["subset_partition", "split_by_time", "split_random"]


def subset_partition(part: LightPartition, rows: np.ndarray) -> LightPartition:
    """A partition restricted to ``rows`` (mask or fancy index)."""
    return LightPartition(
        intersection_id=part.intersection_id,
        approach=part.approach,
        trace=part.trace.subset(rows),
        segment_id=np.asarray(part.segment_id)[rows],
        dist_to_stopline_m=np.asarray(part.dist_to_stopline_m)[rows],
    )


def split_by_time(
    partitions: Mapping[LightKey, LightPartition],
    edges: Sequence[float],
) -> List[Dict[LightKey, LightPartition]]:
    """Slice every partition into ``[edges[i], edges[i+1])`` chunks.

    The natural replay of a recorded trace: chunk *i* holds every
    light's records from that time slice (lights with none are left out
    of the chunk, so their caches survive the ingest).
    """
    if len(edges) < 2:
        raise ValueError("edges must hold at least two boundaries")
    chunks: List[Dict[LightKey, LightPartition]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        chunk: Dict[LightKey, LightPartition] = {}
        for key, part in partitions.items():
            piece = part.time_window(float(lo), float(hi))
            if len(piece):
                chunk[key] = piece
        chunks.append(chunk)
    return chunks


def split_random(
    partitions: Mapping[LightKey, LightPartition],
    n_chunks: int,
    *,
    rng: RngLike = None,
) -> List[Dict[LightKey, LightPartition]]:
    """Scatter records uniformly over ``n_chunks``, rows shuffled.

    The adversarial replay: every record lands in a random chunk and
    each chunk's rows arrive in random order.  Because the store
    re-sorts appended lights into the canonical ``(t, taxi_id)`` order,
    the streamed state must still converge bit-for-bit to the one-shot
    build — the metamorphic property ``tests/test_stream_parity.py``
    drives through many seeded draws.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    gen = as_rng(rng)
    chunks: List[Dict[LightKey, LightPartition]] = [{} for _ in range(n_chunks)]
    for key, part in partitions.items():
        assign = gen.integers(0, n_chunks, size=len(part.trace))
        for c in range(n_chunks):
            rows = np.flatnonzero(assign == c)
            if rows.size == 0:
                continue
            rows = gen.permutation(rows)
            chunks[c][key] = subset_partition(part, rows)
    return chunks
