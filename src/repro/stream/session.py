"""Stateful incremental identification sessions.

``StreamSession`` is the orchestrator of the streaming backend: chunks
go in through :meth:`StreamSession.ingest`, estimates come out as
:class:`IncrementalUpdate` records.  Internally it keeps

* a :class:`~repro.stream.store.StreamStore` (append + targeted cache
  invalidation over the columnar :class:`~repro.trace.store.PartitionStore`);
* a per-light **result cache** ``(data version, at_time) -> estimate``,
  so a refresh re-runs :func:`repro.core.batch.identify_batch` only for
  the lights the chunk dirtied;
* an **online monitor**: every refresh appends one ``(t, cycle_s,
  quality)`` sample per refreshed light, and
  :func:`repro.core.monitor.detect_plan_changes` (after
  :func:`~repro.core.monitor.repair_outliers`) runs over the
  accumulated series — newly detected scheduling changes ride out on
  the update.

Replay-parity contract
----------------------
For partitions whose per-light report timestamps are unique (true for
every generated trace — report times are continuous), ingesting **any**
permutation/partitioning of a scenario's records chunk-by-chunk leaves
the store's per-light columns in the canonical ``(t, taxi_id)`` order,
and every estimate returned by :meth:`evaluate` is **bit-for-bit**
equal to the one-shot batched backend on the same records: the batched
kernels are row-wise exact, so evaluating a dirty subset reproduces the
full-city result light by light.  ``tests/test_stream_parity.py``
enforces this over randomized chunkings.

Snapshot-isolation invariant
----------------------------
A cache entry always describes the data version its estimate was
computed *from*: ``_refresh`` captures each light's version before the
kernels run and stamps the entry with that captured value.  If an
append lands while a refresh is in flight (the serving layer's writer
racing an executor-offloaded shard refresh, say), the refreshed entry
simply stays stale and the next :meth:`evaluate` re-identifies it —
stale-but-consistent beats fresh-but-torn.  ``tests/test_stream.py``
(``test_version_bump_during_refresh_keeps_entry_stale``) pins the
regression; :mod:`repro.serve` builds its published snapshots on top of
this guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.monitor import (
    MonitorSeries,
    PlanChange,
    detect_plan_changes,
    repair_outliers,
)
from ..core.pipeline import PipelineConfig
from ..core.signal_types import ScheduleEstimate
from ..matching.partition import LightKey, LightPartition
from ..obs import ChunkStats, LightFailure, RunReport, StageTelemetry
from ..trace.store import PartitionStore
from .store import ChunkIngest, StreamStore

__all__ = ["IncrementalUpdate", "StreamSession"]


@dataclass(frozen=True)
class IncrementalUpdate:
    """Result of one :meth:`StreamSession.ingest` call.

    ``estimates``/``failures`` are the session's **full current view**
    (cached lights included), so consumers see the same shape as a
    one-shot ``identify_many``; ``refreshed`` says which lights were
    actually re-identified by this ingest.  A light the chunk did not
    dirty keeps its **latest-known** estimate — evaluated as of its own
    last refresh time, not ``at_time``; call
    :meth:`StreamSession.evaluate` for a time-consistent snapshot.
    ``plan_changes`` carries only the scheduling changes *newly*
    detected by this ingest.
    """

    chunk_index: int
    at_time: Optional[float]
    n_records: int
    touched: FrozenSet[LightKey]
    dirty: FrozenSet[LightKey]
    refreshed: FrozenSet[LightKey]
    estimates: Dict[LightKey, ScheduleEstimate] = field(default_factory=dict)
    failures: Dict[LightKey, LightFailure] = field(default_factory=dict)
    plan_changes: Dict[LightKey, List[PlanChange]] = field(default_factory=dict)


#: Result-cache entry: (data version, at_time, estimate-or-None, failure-or-None).
_CacheEntry = Tuple[int, float, Optional[ScheduleEstimate], Optional[LightFailure]]


class StreamSession:
    """Incremental identification over a stream of trace chunks.

    Parameters
    ----------
    config:
        Pipeline configuration shared by every evaluation.
    store:
        Optional initial partitions (plain mapping or a
        :class:`~repro.trace.store.PartitionStore`); default empty.
    monitor:
        Run the online scheduling-change monitor on every refresh.
    report:
        Optional :class:`~repro.obs.report.RunReport`; per-chunk
        :class:`~repro.obs.report.ChunkStats` and per-light telemetry
        fold into it (plus per-shard
        :class:`~repro.obs.report.ShardStats` under the shard backend).
    backend:
        How stale lights are re-identified: ``"batched"`` (default)
        runs :func:`repro.core.batch.identify_batch` in-process;
        ``"shard"`` fans the stale set out over
        :func:`repro.core.shard.identify_shard` — bit-for-bit the same
        estimates, worthwhile when refreshes dirty large slices of a
        large city (each refresh spills/restores the column store, so
        tiny dirty sets are better served batched).
    max_workers:
        Worker processes for the shard backend (default: CPU count).
    """

    def __init__(
        self,
        *,
        config: Optional[PipelineConfig] = None,
        store: Optional[Mapping[LightKey, LightPartition]] = None,
        monitor: bool = True,
        report: Optional[RunReport] = None,
        backend: str = "batched",
        max_workers: Optional[int] = None,
    ) -> None:
        if backend not in ("batched", "shard"):
            raise ValueError(
                f"session backend must be 'batched' or 'shard', got {backend!r}"
            )
        self.config = PipelineConfig() if config is None else config
        self.stream = StreamStore(store)
        self.monitor = monitor
        self.report = report
        self.backend = backend
        self.max_workers = max_workers
        self._chunk_index = 0
        self._last_at_time: Optional[float] = None
        self._results: Dict[LightKey, _CacheEntry] = {}
        # Online monitor state: accumulated (t, cycle_s, quality) samples
        # and how many detected changes were already reported per light.
        self._history: Dict[LightKey, List[Tuple[float, float, float]]] = {}
        self._changes_reported: Dict[LightKey, int] = {}

    @property
    def store(self) -> PartitionStore:
        """The underlying columnar store (read access)."""
        return self.stream.store

    def results_view(self) -> Dict[LightKey, _CacheEntry]:
        """Shallow copy of the per-light result cache.

        Each entry is ``(data version, at_time, estimate, failure)``
        — the version is the one captured *before* the entry's
        identification ran (see :meth:`_refresh`), so an entry whose
        version trails ``stream.version(key)`` is stale, never
        mixed-version.  :mod:`repro.serve` turns these into immutable
        published :class:`~repro.serve.Snapshot` objects.
        """
        return dict(self._results)

    # ------------------------------------------------------------------
    # Evaluation (shared by ingest-refresh and explicit calls)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        at_time: float,
        *,
        keys: Optional[Sequence[LightKey]] = None,
    ) -> Tuple[Dict[LightKey, ScheduleEstimate], Dict[LightKey, LightFailure]]:
        """Estimates for every light (or ``keys``) as of ``at_time``.

        Only **stale** lights — data version or evaluation time differs
        from the cached entry — are re-run, through the batched backend
        restricted to that subset; everything else is served from cache.
        The combined result is bit-for-bit what a one-shot batched run
        over the full store would return.
        """
        self._refresh(at_time, keys)
        wanted = sorted(self.store) if keys is None else sorted(keys)
        estimates: Dict[LightKey, ScheduleEstimate] = {}
        failures: Dict[LightKey, LightFailure] = {}
        for key in wanted:
            entry = self._results.get(key)
            if entry is None:
                continue
            _v, _t, est, fail = entry
            if est is not None:
                estimates[key] = est
            elif fail is not None:
                failures[key] = fail
        return estimates, failures

    def _data_stale_keys(self) -> List[LightKey]:
        """Lights whose *data* changed since their cached result.

        The per-chunk refresh set: a light whose records are untouched
        keeps its latest-known estimate even as "now" advances — only
        :meth:`evaluate` forces a time-consistent snapshot.
        """
        return [
            key
            for key in sorted(self.store)
            if (entry := self._results.get(key)) is None
            or entry[0] != self.stream.version(key)
        ]

    def _stale_keys(
        self, at_time: float, keys: Optional[Sequence[LightKey]]
    ) -> List[LightKey]:
        wanted = sorted(self.store) if keys is None else sorted(keys)
        stale = []
        for key in wanted:
            entry = self._results.get(key)
            if (
                entry is None
                or entry[0] != self.stream.version(key)
                or entry[1] != at_time
            ):
                stale.append(key)
        return stale

    def _refresh(
        self, at_time: float, keys: Optional[Sequence[LightKey]]
    ) -> FrozenSet[LightKey]:
        """Re-identify stale lights; returns the set actually re-run.

        Both backends evaluate the stale subset through the same
        row-wise-exact kernels, so the session's replay-parity contract
        is backend-independent.
        """
        from ..core.batch import identify_batch

        stale = self._stale_keys(at_time, keys)
        if not stale:
            return frozenset()
        # Snapshot-isolation invariant: every cache entry is stamped
        # with the data version captured *before* identification runs,
        # never the version read afterwards.  A version bump that lands
        # while the kernels run (a concurrent ingest under repro.serve,
        # or an executor-offloaded shard refresh) therefore leaves the
        # entry stale — the next evaluate re-identifies it — instead of
        # publishing estimates computed from the old rows under the new
        # version (a mixed-version read).
        versions = {key: self.stream.version(key) for key in stale}
        if self.backend == "shard":
            from ..core.shard import identify_shard

            b_est, b_fail, tels, shard_stats = identify_shard(
                self.store, at_time, config=self.config, keys=stale,
                max_workers=self.max_workers,
            )
            if self.report is not None:
                for stats in shard_stats:
                    self.report.record_shard(stats)
        else:
            b_est, b_fail, tels = identify_batch(
                self.store, at_time, config=self.config, keys=stale
            )
        for key in stale:
            self._results[key] = (
                versions[key],
                at_time,
                b_est.get(key),
                b_fail.get(key),
            )
        if self.report is not None:
            for key in sorted(tels):
                self.report.record_light(key, tels[key], b_fail.get(key))
        if self.monitor:
            self._observe(at_time, stale, b_est)
        return frozenset(stale)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        chunk: Mapping[LightKey, LightPartition],
        *,
        at_time: Optional[float] = None,
        refresh: bool = True,
    ) -> IncrementalUpdate:
        """Append one chunk and (by default) refresh the dirty lights.

        ``at_time`` defaults to the chunk's latest report time (falling
        back to the previous evaluation time), mimicking a live consumer
        asking "what are the schedules *now*?".  Only lights whose
        **data** changed are re-identified — untouched lights keep their
        latest-known estimates, which is what makes a per-chunk update
        O(dirty) instead of O(city) (``bench_stream_incremental``).
        ``refresh=False`` defers all evaluation to a later
        :meth:`evaluate` call.
        """
        tel = StageTelemetry()
        with tel.stage("ingest"):
            ingest: ChunkIngest = self.stream.append(chunk)
            if at_time is None:
                at_time = (
                    ingest.t_max if ingest.t_max is not None else self._last_at_time
                )
            refreshed: FrozenSet[LightKey] = frozenset()
            if refresh and at_time is not None:
                self._last_at_time = at_time
                refreshed = self._refresh(at_time, self._data_stale_keys())
        update = self._build_update(ingest, at_time, refreshed)
        if self.report is not None:
            self.report.record_chunk(
                ChunkStats(
                    chunk_index=update.chunk_index,
                    n_records=ingest.n_records,
                    n_touched=len(ingest.touched),
                    n_dirty=len(ingest.dirty),
                    n_refreshed=len(refreshed),
                    wall_s=tel.stage_s.get("ingest", 0.0),
                )
            )
        self._chunk_index += 1
        return update

    def _build_update(
        self,
        ingest: ChunkIngest,
        at_time: Optional[float],
        refreshed: FrozenSet[LightKey],
    ) -> IncrementalUpdate:
        estimates: Dict[LightKey, ScheduleEstimate] = {}
        failures: Dict[LightKey, LightFailure] = {}
        for key in sorted(self._results):
            _v, _t, est, fail = self._results[key]
            if est is not None:
                estimates[key] = est
            elif fail is not None:
                failures[key] = fail
        changes: Dict[LightKey, List[PlanChange]] = {}
        for key in sorted(refreshed):
            fresh = self._new_plan_changes(key)
            if fresh:
                changes[key] = fresh
        return IncrementalUpdate(
            chunk_index=self._chunk_index,
            at_time=at_time,
            n_records=ingest.n_records,
            touched=ingest.touched,
            dirty=ingest.dirty,
            refreshed=refreshed,
            estimates=estimates,
            failures=failures,
            plan_changes=changes,
        )

    # ------------------------------------------------------------------
    # Online scheduling-change monitor
    # ------------------------------------------------------------------
    def _observe(
        self,
        at_time: float,
        refreshed: Sequence[LightKey],
        estimates: Mapping[LightKey, ScheduleEstimate],
    ) -> None:
        """Append one monitor sample per refreshed light.

        Failed refreshes record NaN cycles, matching
        :func:`~repro.core.monitor.monitor_cycle`'s sparse-window
        convention: gaps stay visible instead of silently vanishing.
        """
        for key in refreshed:
            est = estimates.get(key)
            sample = (
                (at_time, est.cycle.cycle_s, est.cycle.quality)
                if est is not None
                else (at_time, float("nan"), float("nan"))
            )
            history = self._history.setdefault(key, [])
            if history and history[-1][0] == at_time:
                history[-1] = sample
            else:
                history.append(sample)

    def monitor_series(self, key: LightKey) -> MonitorSeries:
        """The accumulated cycle series for one light."""
        history = self._history.get(key, [])
        t = [s[0] for s in history]
        c = [s[1] for s in history]
        q = [s[2] for s in history]
        return MonitorSeries.from_samples(t, c, q)

    def _new_plan_changes(self, key: LightKey) -> List[PlanChange]:
        series = self.monitor_series(key)
        if len(series) < 3 or np.all(np.isnan(series.cycle_s)):
            return []
        changes = detect_plan_changes(repair_outliers(series))
        seen = self._changes_reported.get(key, 0)
        self._changes_reported[key] = len(changes)
        return changes[seen:]
