"""Streaming identification: incremental ingest with replay parity.

The one-shot backends (serial/process/batched) recompute the whole city
for every new batch of records.  This package maintains per-light state
instead: chunks append into the columnar store, only the touched lights
(and their enhancement-coupled perpendicular partners) lose their
caches, and a refresh re-identifies just that dirty subset — bit-for-bit
equal to a full batched recompute (see
:mod:`repro.stream.session` for the replay-parity contract).
"""

from .chunking import split_by_time, split_random, subset_partition
from .session import IncrementalUpdate, StreamSession
from .store import ChunkIngest, StreamStore

__all__ = [
    "ChunkIngest",
    "IncrementalUpdate",
    "StreamSession",
    "StreamStore",
    "split_by_time",
    "split_random",
    "subset_partition",
]
