#!/usr/bin/env python
"""Quickstart: identify traffic-light schedules from simulated taxi traces.

Builds a small signalized city, simulates taxi traffic against known
(ground-truth) light schedules, samples the motion into sparse noisy
Table I reports, runs the paper's full identification pipeline, and
compares the result with the truth.

Run:  python examples/quickstart.py
"""

from repro._util import circular_diff
from repro.core import identify_many
from repro.eval import simulate_and_partition
from repro.scenario import small_scenario


def main() -> None:
    # 1. A 2x2 grid city whose 8 lights all run a 98 s cycle
    #    (39 s red for North-South, 59 s for East-West).
    city = small_scenario(cycle_s=98.0, ns_red_s=39.0, rate_per_hour=400.0)

    # 2. Simulate 1.5 h of taxi traffic and produce the raw trace,
    #    map-matched and partitioned per traffic light (§IV).
    print("simulating 90 minutes of taxi traffic ...")
    trace, partitions = simulate_and_partition(city, 0.0, 5400.0, seed=7)
    print(f"raw trace: {trace}")
    print(f"partitions: {len(partitions)} lights\n")

    # 3. Identify every light's schedule as of t = 5400 s (§V-§VI).
    estimates, failures = identify_many(partitions, at_time=5400.0)

    # 4. Compare with the ground truth the simulator enforced.
    print(f"{'light':<12} {'cycle (GT 98s)':>14} {'red':>12} {'change err':>11}")
    for key in sorted(estimates):
        est = estimates[key]
        iid, approach = key
        truth = city.truth_at(iid, approach, 5400.0)
        change_err = float(circular_diff(
            est.schedule.offset_s + est.schedule.red_s,
            truth.offset_s + truth.red_s,
            truth.cycle_s,
        ))
        print(f"{str(key):<12} {est.cycle_s:>9.1f} s    "
              f"{est.red_s:>6.1f}/{truth.red_s:<4.0f}s "
              f"{change_err:>+9.1f} s")
    for key, reason in failures.items():
        print(f"{str(key):<12} no estimate ({reason.split(';')[0]})")

    # 5. The estimate is a plain LightSchedule: query it like the truth.
    key, est = next(iter(sorted(estimates.items())))
    sched = est.schedule
    print(f"\nlight {key} at t=5600 s would be: {sched.phase(5600.0)}")
    print(f"wait if arriving now: {sched.wait_if_arriving(5600.0):.0f} s")


if __name__ == "__main__":
    main()
