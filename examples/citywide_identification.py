#!/usr/bin/env python
"""City-wide identification on the Table II scenario.

Rebuilds the paper's evaluation city — nine Shenzhen intersections with
record rates spanning the 25x imbalance of Table II — simulates five
hours of taxi traffic, and identifies every light at several random
time spots in parallel, reporting the §VIII.A error statistics.

Run:  python examples/citywide_identification.py
"""

import numpy as np

from repro.eval import (
    evaluate_at_times,
    simulate_and_partition,
    summarize_errors,
)
from repro.scenario import TABLE2, shenzhen_scenario


def main() -> None:
    scn = shenzhen_scenario()
    print("Table II scenario:")
    for i, row in enumerate(TABLE2):
        plans = scn.plans[i]
        kind = "pre-programmed" if len(plans) > 1 else "static"
        print(f"  {row.id}. {row.name:<22} {row.records_per_hour:>5} rec/h "
              f"cycle {plans[0].cycle_s:.0f}s ({kind})")

    print("\nsimulating 5 hours of taxi traffic (parallel across approaches) ...")
    trace, partitions = simulate_and_partition(scn, 0.0, 5 * 3600.0, seed=42)
    print(f"raw trace: {trace}")

    times = np.arange(10800.0, 18000.0 + 1, 1800.0)
    print(f"\nidentifying {len(partitions)} lights at {len(times)} time spots ...")
    result = evaluate_at_times(partitions, scn.truth_at, times)

    print(f"\nsamples: {len(result)}  (data-starved: {result.n_failures})")
    print(summarize_errors(result.cycle_errors, "cycle length   "))
    print(summarize_errors(result.red_errors, "red duration   "))
    print(summarize_errors(result.change_errors, "change time    "))

    locked = [s for s in result.samples if s.errors and abs(s.errors.cycle_s) <= 5.0]
    print(f"\ncycle-locked subset ({len(locked)} samples — the paper's "
          f"'very accurate' mode):")
    print(summarize_errors([s.errors.red_s for s in locked], "red | locked   "))
    print(summarize_errors([s.errors.change_s for s in locked], "change | locked"))

    print("\nper-intersection cycle hit rate (within 3 s):")
    for i, row in enumerate(TABLE2):
        sub = [
            s for s in result.samples
            if s.key[0] == i and s.errors is not None
        ]
        total = [s for s in result.samples if s.key[0] == i]
        hits = sum(1 for s in sub if abs(s.errors.cycle_s) <= 3.0)
        print(f"  {row.name:<22} ({row.records_per_hour:>5} rec/h): "
              f"{hits}/{len(total)}")


if __name__ == "__main__":
    main()
