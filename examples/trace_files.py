#!/usr/bin/env python
"""Working with raw Table I trace files.

Generates a trace, writes it in the paper's 12-field wire format (the
format Shenzhen's data center stores ~10 GB/day of), reads it back, and
reproduces the paper's Fig. 2 statistical characterization.

Run:  python examples/trace_files.py
"""

import os
import tempfile

from repro.eval import simulate_and_partition
from repro.scenario import small_scenario
from repro.trace import compute_statistics, read_trace, write_trace


def main() -> None:
    city = small_scenario(rate_per_hour=500.0)
    print("simulating one hour of taxi traffic ...")
    trace, _ = simulate_and_partition(city, 0.0, 3600.0, seed=11)
    print(f"generated {trace}")

    path = os.path.join(tempfile.mkdtemp(), "shenzhen_taxi.txt")
    with open(path, "w", encoding="utf-8") as fp:
        n = write_trace(trace, fp)
    size_kb = os.path.getsize(path) / 1024
    print(f"\nwrote {n:,} records to {path} ({size_kb:.0f} KiB)")
    print("first three lines (Table I format):")
    with open(path, encoding="utf-8") as fp:
        for _ in range(3):
            print("  " + fp.readline().rstrip())

    with open(path, encoding="utf-8") as fp:
        back = read_trace(fp)
    print(f"\nread back: {back}")

    stats = compute_statistics(back, city.net.frame)
    print("\nFig. 2-style characterization of the file:")
    print(f"  records/minute:        {stats.records_per_minute:,.0f}")
    print(f"  update interval:       {stats.mean_update_interval_s:.2f} s "
          f"(paper: 20.41 s)")
    print(f"  stationary updates:    {100 * stats.stationary_fraction:.1f}% "
          f"(paper: 42.66%)")
    print(f"  moving update length:  {stats.mean_moving_distance_m:.1f} m "
          f"(paper: 100.69 m)")
    print(f"  speed difference:      N({stats.speed_diff_mean_kmh:.1f}, "
          f"{stats.speed_diff_std_kmh:.1f}) km/h (paper: N(0, 40))")


if __name__ == "__main__":
    main()
