#!/usr/bin/env python
"""Running the pipeline on an OpenStreetMap extract.

The paper's preprocessing uses OpenStreetMap as the digital map (§IV).
This example parses a small hand-written OSM XML document (a signalized
crossroad), simulates taxi traffic on it, and identifies the light —
demonstrating that the pipeline is map-source-agnostic.

With a real extract, replace the inline XML with
``parse_osm(open("map.osm"))``.

Run:  python examples/osm_import.py
"""

import numpy as np

from repro.core import identify_many
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.matching import match_trace, partition_by_light
from repro.network import parse_osm
from repro.sim import ApproachConfig, CitySimulation
from repro.trace import TraceGenerator

OSM_XML = """<?xml version='1.0' encoding='UTF-8'?>
<osm version="0.6" generator="handmade">
  <node id="1" lat="22.5400" lon="114.0400"/>
  <node id="2" lat="22.5400" lon="114.0500">
    <tag k="highway" v="traffic_signals"/>
  </node>
  <node id="3" lat="22.5400" lon="114.0600"/>
  <node id="4" lat="22.5320" lon="114.0500"/>
  <node id="5" lat="22.5480" lon="114.0500"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="name" v="ShenNan Road"/>
  </way>
  <way id="200">
    <nd ref="4"/><nd ref="2"/><nd ref="5"/>
    <tag k="highway" v="secondary"/>
    <tag k="name" v="WenJin Road"/>
  </way>
</osm>
"""


def main() -> None:
    net = parse_osm(OSM_XML)
    sig = next(n for n in net.intersections if n.signalized)
    print(f"parsed OSM: {net}")
    print(f"signalized node: {sig.name} with "
          f"{len(net.incoming(sig.id))} approaches\n")

    plans = {sig.id: [SignalPlan(cycle_s=110.0, ns_red_s=50.0, offset_s=23.0)]}
    signals = attach_signals_to_network(net, plans)
    rates = {s.id: 400.0 for s in net.incoming(sig.id)}

    print("simulating 1.5 h of taxi traffic on the OSM crossroad ...")
    sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400.0))
    res = sim.run(0.0, 5400.0, seed=8)
    trace = TraceGenerator(net).generate(res, rng=np.random.default_rng(1))
    print(f"raw trace: {trace}\n")

    parts = partition_by_light(match_trace(trace, net), net)
    ests, fails = identify_many(parts, 5400.0)
    for key, est in sorted(ests.items()):
        gt = signals[sig.id].schedule_at(key[1], 5400.0)
        print(f"{est.row()}   | truth cycle {gt.cycle_s:.0f}s red {gt.red_s:.0f}s")


if __name__ == "__main__":
    main()
