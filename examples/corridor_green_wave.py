#!/usr/bin/env python
"""Green-wave analysis of an arterial from taxi traces (extension).

The paper's community use case: "transportation researchers can
investigate the correlation between traffic light scheduling and
traffic flow".  This example simulates a coordinated one-way arterial
(taxis traverse all lights, reporting as one continuous trajectory —
the structure real fleet data has), identifies every light purely from
those traces, and then recovers the corridor's coordination: relative
offsets and green-wave progression bandwidth, identified vs truth.

Run:  python examples/corridor_green_wave.py
"""

import numpy as np

from repro.core import identify_many
from repro.core.coordination import corridor_report, progression_bandwidth
from repro.matching import match_trace, partition_by_light
from repro.sim import CorridorSpec, simulate_corridor
from repro.trace import TraceGenerator


def main() -> None:
    spec = CorridorSpec(
        n_lights=5,
        segment_length_m=500.0,
        entry_rate_per_hour=450.0,
        cycle_s=100.0,
        red_s=45.0,
    )
    tt = spec.segment_length_m / spec.params.free_speed_mps
    print(f"arterial: {spec.n_lights} lights, {spec.segment_length_m:.0f} m links "
          f"({tt:.0f} s free-flow), cycle {spec.cycle_s:.0f} s, "
          f"green-wave offsets {['%.0f' % o for o in spec.resolved_offsets()]}")

    print("\nsimulating 1.5 h of corridor traffic ...")
    res = simulate_corridor(spec, 0.0, 5400.0, seed=9)
    tts = res.corridor_travel_times()
    print(f"journeys: {len(res.journeys)} "
          f"(complete: {len(tts)}, mean travel {tts.mean():.0f} s)")

    gen = TraceGenerator(res.net)
    trace = gen.generate_journeys(res.journeys, rng=np.random.default_rng(2))
    print(f"taxi trace: {trace}")

    parts = partition_by_light(match_trace(trace, res.net), res.net)
    ests, fails = identify_many(parts, 5400.0)
    print(f"\nidentified {len(ests)}/{spec.n_lights} lights")

    truth = [res.signals[i].schedule_at("EW", 5400.0) for i in range(spec.n_lights)]
    believed = []
    from repro._util import circular_diff
    print(f"  {'light':<7} {'cycle err':>10} {'r2g err':>9}")
    for i in range(spec.n_lights):
        est = ests.get((i, "EW"))
        believed.append(est.schedule if est else None)
        if est is not None:
            dc = est.cycle_s - truth[i].cycle_s
            dr2g = float(circular_diff(
                est.schedule.offset_s + est.schedule.red_s,
                truth[i].offset_s + truth[i].red_s, truth[i].cycle_s))
            note = ""
            if abs(dr2g) > 10:
                note = "  <- well-coordinated lights stop few taxis: weak evidence"
            print(f"  L{i:<6} {dc:>+9.1f}s {dr2g:>+8.1f}s{note}")

    travel_times = [tt] * (spec.n_lights - 1)
    print("\nlink progression (green-wave bandwidth):")
    print(f"  {'link':<8} {'truth':>8} {'identified':>11}")
    truth_rep = corridor_report(truth, travel_times)
    for link in truth_rep:
        i, j = link.upstream_index, link.downstream_index
        if believed[i] is not None and believed[j] is not None:
            bw_est = progression_bandwidth(believed[i], believed[j], link.travel_time_s)
            est_txt = f"{100 * bw_est:>10.0f}%"
        else:
            est_txt = "        n/a"
        print(f"  {i}->{j:<5} {100 * link.bandwidth:>7.0f}% {est_txt}")

    print("\nthe identified schedules recover the corridor's coordination —")
    print("exactly the analysis a traffic authority could run city-wide")
    print("without touching a single signal controller.")


if __name__ == "__main__":
    main()
