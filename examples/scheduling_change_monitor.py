#!/usr/bin/env python
"""Continuous monitoring of a pre-programmed traffic light (§VII).

A downtown light switches between off-peak and peak plans during the
morning.  The monitor re-estimates the cycle every five minutes from
the rolling taxi-trace window, repairs outliers, detects the plan
switches, and applies day-over-day historical correction — the Fig. 12
workflow.

Run:  python examples/scheduling_change_monitor.py
"""

import numpy as np

from repro.core.monitor import (
    HistoricalProfile,
    detect_plan_changes,
    monitor_cycle,
    repair_outliers,
)
from repro.matching import match_trace, partition_by_light
from repro.scenario import shenzhen_scenario
from repro.trace import TraceGenerator


def sparkline(values, lo, hi):
    glyphs = " .:-=+*#%@"
    chars = []
    for v in values:
        if np.isnan(v):
            chars.append("?")
        else:
            k = int(np.clip((v - lo) / (hi - lo) * (len(glyphs) - 1), 0, len(glyphs) - 1))
            chars.append(glyphs[k])
    return "".join(chars)


def main() -> None:
    scn = shenzhen_scenario()
    # ShenNan x WenJin (Table II row 1) runs peak plans 07:00-10:00
    target = 0
    off = scn.truth_at(target, "NS", 5 * 3600.0)
    peak = scn.truth_at(target, "NS", 8 * 3600.0)
    print(f"monitored light: {scn.net.intersections[target].name} (NS group)")
    print(f"ground truth: off-peak cycle {off.cycle_s:.0f} s, "
          f"peak cycle {peak.cycle_s:.0f} s, switches 07:00 / 10:00\n")

    sim = scn.simulation()
    sim.rate_per_segment = {
        sid: r for sid, r in sim.rate_per_segment.items()
        if scn.net.segments[sid].to_id == target
    }
    print("simulating 05:00-12:00 ...")
    res = sim.run(5 * 3600.0, 12 * 3600.0, seed=99)
    trace = TraceGenerator(scn.net).generate(res, rng=np.random.default_rng(4))
    parts = partition_by_light(match_trace(trace, scn.net), scn.net)
    p = parts[(target, "NS")]

    series = monitor_cycle(p, 5 * 3600.0, 12 * 3600.0, every_s=300.0, window_s=1800.0)
    repaired = repair_outliers(series)
    lo, hi = off.cycle_s - 10, peak.cycle_s + 10
    print(f"cycle estimates every 5 min ({len(series)} windows, "
          f"{100 * series.valid_fraction():.0f}% valid):")
    print(f"  raw      [{sparkline(series.cycle_s, lo, hi)}]")
    print(f"  repaired [{sparkline(repaired.cycle_s, lo, hi)}]")

    print("\ndetected scheduling changes:")
    for ch in detect_plan_changes(repaired):
        print(f"  {ch.at_time / 3600:05.2f} h: {ch.old_cycle_s:.0f} s "
              f"-> {ch.new_cycle_s:.0f} s")

    hist = HistoricalProfile([repaired])
    wild = 2 * off.cycle_s
    print(f"\nhistorical correction of a wild estimate at 06:15: "
          f"{wild:.0f} s -> {hist.correct(6.25 * 3600.0, wild):.0f} s")


if __name__ == "__main__":
    main()
