#!/usr/bin/env python
"""Red-light-aware navigation (the paper's §VIII.B demo application).

Builds the Fig. 15 grid (1 km segments, a light per intersection,
cycles 120-300 s with red = green), then compares three navigators on
the same trips:

* baseline — conventional shortest-time routing (driving time only);
* light-aware (paper) — enumerate candidate paths, include predicted
  red waiting, re-plan at every intersection;
* light-aware (extension) — time-dependent Dijkstra, optimal and
  polynomial.

Run:  python examples/navigation_advisory.py
"""

import numpy as np

from repro.navigation import (
    GroundTruthProvider,
    NavScenario,
    TravelConfig,
    TripSimulator,
    navigate,
    run_navigation_experiment,
    shortest_drive_path,
)


def one_trip_walkthrough() -> None:
    scenario = NavScenario(n_cols=6, n_rows=6)
    net, signals = scenario.build(rng=np.random.default_rng(4))
    sim = TripSimulator(net, signals, TravelConfig(scenario.speed_mps))
    provider = GroundTruthProvider(signals)

    src, dst, depart = 0, 35, 300.0  # corner to corner
    base_path = shortest_drive_path(net, src, dst, sim.config)
    base = sim.simulate_path(base_path, depart)
    aware = navigate(sim, provider, src, dst, depart, strategy="enumerate")

    print("single corner-to-corner trip (10 km):")
    print(f"  baseline path: {base_path}")
    print(f"    travel {base.total_time_s:.0f} s, waited {base.total_wait_s:.0f} s "
          f"at {base.n_stops} red lights")
    aware_path = [net.segments[l.segment_id].from_id for l in aware.legs]
    aware_path.append(dst)
    print(f"  light-aware path: {aware_path}")
    print(f"    travel {aware.total_time_s:.0f} s, waited {aware.total_wait_s:.0f} s "
          f"at {aware.n_stops} red lights")
    saved = 1.0 - aware.total_time_s / base.total_time_s
    print(f"  saving: {100 * saved:.1f}%\n")


def fig16_sweep() -> None:
    print("Fig. 16 sweep — mean travel time vs navigation distance:")
    buckets = run_navigation_experiment(
        NavScenario(n_cols=6, n_rows=6),
        hop_distances=(2, 3, 4, 5, 6, 7, 8),
        trips_per_distance=12,
        seed=7,
    )
    for b in buckets:
        bar = "#" * int(round(b.saving_fraction * 100 / 2))
        print(f"  {b.row()}  {bar}")
    overall = float(np.average(
        [b.saving_fraction for b in buckets],
        weights=[b.n_trips for b in buckets],
    ))
    print(f"  overall saving: {100 * overall:.1f}%  (paper: ~15%)")





def glosa_demo() -> None:
    """Green-light speed advisory on one approach (extension)."""
    from repro.lights import LightSchedule
    from repro.navigation import advise_speed

    sched = LightSchedule(cycle_s=100.0, red_s=40.0, offset_s=0.0)
    print("\nGLOSA speed advisory (light: 100 s cycle, red 0-40 s):")
    for d, t in ((400.0, 0.0), (600.0, 20.0), (250.0, 35.0)):
        a = advise_speed(sched, d, t)
        if a.advised_speed_mps is not None:
            print(f"  {d:.0f} m out at t={t:.0f}s: drive "
                  f"{a.advised_speed_mps * 3.6:.0f} km/h, arrive t={a.arrives_at:.0f}s "
                  f"on green (saves {a.idling_saved_s:.0f}s of idling)")
        else:
            print(f"  {d:.0f} m out at t={t:.0f}s: no green reachable — "
                  f"will wait {a.wait_s:.0f}s")


if __name__ == "__main__":
    one_trip_walkthrough()
    fig16_sweep()
    glosa_demo()
