"""Unit tests for network/plan JSON serialization."""

import io

import numpy as np
import pytest

from repro.lights.intersection import SignalPlan
from repro.network.roadnet import grid_network
from repro.network.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    plans_from_dict,
    plans_to_dict,
    save_network,
)
from repro.scenario import shenzhen_scenario


class TestNetworkRoundtrip:
    def test_grid_roundtrip(self):
        net = grid_network(3, 2, 450.0)
        back = network_from_dict(network_to_dict(net))
        assert len(back.intersections) == len(net.intersections)
        assert len(back.segments) == len(net.segments)
        for a, b in zip(net.segments, back.segments):
            assert (a.ax, a.ay, a.bx, a.by) == (b.ax, b.ay, b.bx, b.by)
            assert a.from_id == b.from_id and a.to_id == b.to_id
        assert back.frame.origin_lon == net.frame.origin_lon

    def test_shenzhen_roundtrip_with_plans(self):
        scn = shenzhen_scenario()
        buf = io.StringIO()
        save_network(scn.net, buf, plans=scn.plans)
        buf.seek(0)
        net, plans = load_network(buf)
        assert len(net.intersections) == 45
        assert plans is not None and set(plans) == set(scn.plans)
        for iid in scn.plans:
            for a, b in zip(scn.plans[iid], plans[iid]):
                assert a.cycle_s == b.cycle_s
                assert a.ns_red_s == b.ns_red_s
                assert a.offset_s == pytest.approx(b.offset_s)
                assert a.start_second_of_day == b.start_second_of_day

    def test_no_plans_returns_none(self):
        net = grid_network(2, 2)
        buf = io.StringIO()
        save_network(net, buf)
        buf.seek(0)
        _, plans = load_network(buf)
        assert plans is None

    def test_geometry_tables_rebuilt(self):
        net = grid_network(2, 2, 300.0)
        back = network_from_dict(network_to_dict(net))
        np.testing.assert_allclose(back.seg_heading, net.seg_heading)
        np.testing.assert_array_equal(back.seg_to, net.seg_to)


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro"):
            network_from_dict({"format": "gpx"})

    def test_rejects_wrong_version(self):
        doc = network_to_dict(grid_network(2, 2))
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            network_from_dict(doc)


class TestPlans:
    def test_plan_dict_roundtrip(self):
        plans = {
            0: [SignalPlan(98.0, 39.0, 5.0)],
            3: [
                SignalPlan(98.0, 39.0, 5.0, start_second_of_day=0.0),
                SignalPlan(140.0, 70.0, 5.0, start_second_of_day=7 * 3600.0),
            ],
        }
        back = plans_from_dict(plans_to_dict(plans))
        assert set(back) == {0, 3}
        assert len(back[3]) == 2
        assert back[3][1].cycle_s == 140.0
