"""Conformance/property suite for every LightController subclass.

For each controller — the paper's three categories plus the adaptive
tier — seeded randomized-time checks pin the interface contract: the
delegating phase helpers (``is_red``/``is_green``/``phase``/
``wait_if_arriving``/``next_change``) must stay mutually consistent
with ``schedule_at(t)``, across day-boundary wraparound (``t mod
86400``) and at plan-switch instants.  RNG only via ``_util.as_rng``
(REP003).
"""

import pickle

import pytest

from repro._util import as_rng
from repro.lights.controller import (
    SECONDS_PER_DAY,
    ActuatedController,
    AdaptiveController,
    DemandSignal,
    FuzzyController,
    GapActuatedController,
    LightController,
    ManualController,
    PlanSwitch,
    PreProgrammedController,
    StaticController,
)
from repro.lights.schedule import LightSchedule, Phase
from repro.scenario.synthetic import SinusoidalDemand

DAY = SECONDS_PER_DAY
HORIZON = 2.5 * DAY

OFFPEAK = LightSchedule(cycle_s=90.0, red_s=40.0, offset_s=10.0)
PEAK = LightSchedule(cycle_s=140.0, red_s=70.0, offset_s=25.0)

ADAPTIVE_CLASSES = (ActuatedController, GapActuatedController, FuzzyController)


def _build_controllers():
    ctrls = {
        "static": StaticController(OFFPEAK),
        "preprogrammed": PreProgrammedController(
            [
                PlanSwitch(7 * 3600.0, PEAK),
                PlanSwitch(10 * 3600.0, OFFPEAK),
                PlanSwitch(17 * 3600.0, PEAK),
                PlanSwitch(20 * 3600.0, OFFPEAK),
            ]
        ),
        "manual": ManualController(
            PreProgrammedController(
                [PlanSwitch(6 * 3600.0, OFFPEAK), PlanSwitch(16 * 3600.0, PEAK)]
            ),
            overrides=[
                (3600.0, 2 * 3600.0, PEAK),
                (30 * 3600.0, 31 * 3600.0, OFFPEAK),
            ],
        ),
    }
    for cls in ADAPTIVE_CLASSES:
        for alpha in (0.0, 0.5, 1.0):
            name = f"{cls.__name__}-a{alpha:g}"
            ctrls[name] = cls(
                OFFPEAK,
                alpha=alpha,
                demand=SinusoidalDemand(phase_s=13.0 * alpha),
            )
        ctrls[f"{cls.__name__}-switch"] = cls(
            OFFPEAK,
            alpha=0.5,
            demand=SinusoidalDemand(),
            base2=PEAK,
            switch_at_s=6 * 3600.0,
        )
    return ctrls


CONTROLLERS = _build_controllers()


def _probe_times(controller: LightController, seed: int):
    """Seeded random times plus crafted day-boundary and plan-switch
    instants (the discontinuities where delegation is most likely to
    break)."""
    rng = as_rng(seed)
    ts = [float(t) for t in rng.uniform(0.0, HORIZON, size=250)]
    for k in range(1, 3):
        for d in (-1e-3, 0.0, 1e-3):
            ts.append(k * DAY + d)
    switches = controller.plan_switch_times(0.0, HORIZON)[:60]
    for s in switches:
        ts.append(s)
        if s > 1e-3:
            ts.append(s - 1e-3)
        ts.append(s + 1e-3)
    return [t for t in ts if 0.0 <= t < HORIZON]


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_phase_helpers_consistent_with_schedule_at(name):
    c = CONTROLLERS[name]
    for t in _probe_times(c, seed=0xC0FFEE):
        sched = c.schedule_at(t)
        red = c.is_red(t)
        assert red == bool(sched.is_red(t))
        assert c.is_green(t) == (not red)
        assert c.phase(t) == (Phase.RED if red else Phase.GREEN)
        wait = c.wait_if_arriving(t)
        assert wait == sched.wait_if_arriving(t)
        assert (wait > 0.0) == red


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_next_change_consistent_with_schedule_at(name):
    c = CONTROLLERS[name]
    eps = 1e-3
    for t in _probe_times(c, seed=0xBEEF):
        t_change, new_phase = c.next_change(t)
        assert t_change > t
        assert (t_change, new_phase) == c.schedule_at(t).next_change(t)
        # A plan switch strictly inside (t, t_change) may cut the
        # predicted phase short — only the unswitched intervals are
        # probe-able.  A switch exactly at t_change is fine: every plan
        # (and every realized adaptive segment) starts with red, so the
        # phase flip at the boundary is still exact.
        interior = [
            s for s in c.plan_switch_times(t, t_change + 1e-9) if t < s < t_change - eps
        ]
        if interior:
            continue
        mid = 0.5 * (t + t_change)
        assert c.phase(mid) == c.phase(t)
        assert c.phase(max(t_change - eps, t)) == c.phase(t)
        assert c.phase(t_change + eps) == new_phase


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_plan_switch_times_are_sorted_and_windowed(name):
    c = CONTROLLERS[name]
    switches = c.plan_switch_times(0.0, HORIZON)
    assert switches == sorted(switches)
    assert all(0.0 <= s < HORIZON for s in switches)
    # window sub-additivity: [0, H) == [0, H/2) + [H/2, H)
    first = c.plan_switch_times(0.0, HORIZON / 2)
    second = c.plan_switch_times(HORIZON / 2, HORIZON)
    assert switches == first + second


@pytest.mark.parametrize("cls", ADAPTIVE_CLASSES)
def test_alpha_zero_matches_static_bitwise(cls):
    c = cls(OFFPEAK, alpha=0.0, demand=SinusoidalDemand())
    ref = StaticController(OFFPEAK)
    assert c.schedule_at(12345.6) is OFFPEAK
    assert c.plan_switch_times(0.0, HORIZON) == []
    rng = as_rng(7)
    for t in rng.uniform(0.0, HORIZON, size=300):
        t = float(t)
        assert c.is_red(t) == ref.is_red(t)
        assert c.wait_if_arriving(t) == ref.wait_if_arriving(t)


@pytest.mark.parametrize("cls", ADAPTIVE_CLASSES)
def test_realized_segments_tile_time_and_start_red(cls):
    c = cls(OFFPEAK, alpha=1.0, demand=SinusoidalDemand())
    segments = c.realized_cycles(0.0, 6 * 3600.0)
    assert segments
    for (s0, sched0), (s1, _sched1) in zip(segments, segments[1:]):
        assert s1 == s0 + sched0.cycle_s
    for start, sched in segments:
        assert sched.offset_s == start          # anchored at its own start
        assert sched.red_s == OFFPEAK.red_s     # red fixed, green adapts
        assert c.is_red(start)                  # every segment opens red
        assert sched.green_s >= min(c.min_green_s, OFFPEAK.green_s)
        assert sched.green_s <= c.max_green_factor * OFFPEAK.green_s


def test_adaptive_green_monotone_in_alpha():
    heavy = SinusoidalDemand(amplitude=0.0, base_queue=12.0, base_headway_s=2.0)
    greens = []
    for alpha in (0.0, 0.5, 1.0):
        c = ActuatedController(OFFPEAK, alpha=alpha, demand=heavy)
        _, sched = c.realized_cycles(0.0, 2000.0)[1]
        greens.append(sched.green_s)
    assert greens[0] == OFFPEAK.green_s
    assert greens[0] < greens[1] < greens[2]


def test_gap_controller_gaps_out_on_empty_approach():
    def no_traffic(t0, t1):
        return DemandSignal(queue_len=0.0, headway_s=float("inf"))

    c = GapActuatedController(OFFPEAK, alpha=1.0, demand=no_traffic)
    _, sched = c.realized_cycles(0.0, 1000.0)[1]
    assert sched.green_s == c.min_green_s

    def platoon(t0, t1):
        return DemandSignal(queue_len=10.0, headway_s=1.0)

    dense = GapActuatedController(OFFPEAK, alpha=1.0, demand=platoon)
    _, sched_d = dense.realized_cycles(0.0, 1000.0)[1]
    assert sched_d.green_s > sched.green_s


def test_fuzzy_rule_table_directions():
    def saturated(t0, t1):
        return DemandSignal(queue_len=20.0, headway_s=1.0)

    def empty(t0, t1):
        return DemandSignal(queue_len=0.0, headway_s=float("inf"))

    c_hi = FuzzyController(OFFPEAK, alpha=1.0, demand=saturated)
    c_lo = FuzzyController(OFFPEAK, alpha=1.0, demand=empty)
    _, hi = c_hi.realized_cycles(0.0, 1000.0)[1]
    _, lo = c_lo.realized_cycles(0.0, 1000.0)[1]
    # saturated extends (bounded by the table's +max adjustment);
    # empty is exactly the (low queue, long headway) corner rule: -1.
    assert OFFPEAK.green_s < hi.green_s <= OFFPEAK.green_s + c_hi.max_adjust_s
    assert lo.green_s == OFFPEAK.green_s - c_lo.max_adjust_s


def test_programmed_switch_under_adaptation():
    switch_at = 3600.0
    c = ActuatedController(
        OFFPEAK, alpha=0.0, demand=SinusoidalDemand(), base2=PEAK, switch_at_s=switch_at
    )
    for start, sched in c.realized_cycles(0.0, 3 * 3600.0):
        expected = OFFPEAK if start < switch_at else PEAK
        assert sched.red_s == expected.red_s
        assert sched.green_s == expected.green_s
    switches = c.plan_switch_times(0.0, 3 * 3600.0)
    assert len(switches) == 1
    assert switches[0] >= switch_at
    assert switches[0] - switch_at < OFFPEAK.cycle_s


def test_bind_demand_resets_realization():
    c = GapActuatedController(OFFPEAK, alpha=1.0)
    assert c.needs_feedback
    with pytest.raises(ValueError, match="no demand source"):
        c.schedule_at(500.0)
    c.bind_demand(SinusoidalDemand(), anchor_t=0.0)
    assert not c.needs_feedback
    first = c.schedule_at(5000.0)
    c.bind_demand(SinusoidalDemand(phase_s=400.0), anchor_t=0.0)
    second = c.schedule_at(5000.0)
    assert first != second  # realization restarted under the new demand
    assert not c.sim_bound
    c.bind_sim_demand(SinusoidalDemand(), anchor_t=0.0)
    assert c.sim_bound


def test_adaptive_validation_errors():
    with pytest.raises(ValueError):
        ActuatedController(OFFPEAK, alpha=1.5, demand=SinusoidalDemand())
    with pytest.raises(ValueError, match="given together"):
        ActuatedController(OFFPEAK, base2=PEAK)
    with pytest.raises(ValueError, match="given together"):
        ActuatedController(OFFPEAK, switch_at_s=100.0)
    with pytest.raises(ValueError, match="max_realized_cycles"):
        ActuatedController(OFFPEAK, max_realized_cycles=0)
    with pytest.raises(ValueError, match="3x3"):
        FuzzyController(OFFPEAK, rules=((0.0, 0.0),))
    c = GapActuatedController(
        OFFPEAK, alpha=1.0, demand=SinusoidalDemand(), max_realized_cycles=3
    )
    with pytest.raises(ValueError, match="max_realized_cycles"):
        c.schedule_at(10 * OFFPEAK.cycle_s)


def test_demand_signal_validation():
    with pytest.raises(ValueError):
        DemandSignal(queue_len=-1.0, headway_s=5.0)
    with pytest.raises(ValueError):
        DemandSignal(queue_len=1.0, headway_s=0.0)
    DemandSignal(queue_len=0.0, headway_s=float("inf"))  # empty approach is valid


@pytest.mark.parametrize("cls", ADAPTIVE_CLASSES)
def test_adaptive_controller_pickle_roundtrip(cls):
    c = cls(OFFPEAK, alpha=0.7, demand=SinusoidalDemand(phase_s=5.0))
    c.schedule_at(4000.0)  # partially realized state must survive
    clone = pickle.loads(pickle.dumps(c))
    rng = as_rng(11)
    for t in rng.uniform(0.0, 9000.0, size=50):
        t = float(t)
        assert clone.schedule_at(t) == c.schedule_at(t)
        assert clone.wait_if_arriving(t) == c.wait_if_arriving(t)
