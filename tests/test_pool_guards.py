"""Dispatch guards of the pool layer, exercised on the serial paths.

Process pools live in ``tests/test_parallel.py`` (slow tier); these
cover the contracts that must hold before any process is spawned:
``max_workers`` validation, the common-slot hygiene that keeps one
run's store from leaking into the next ``pmap`` call, and the
``common_bytes_limit`` zero-copy guard.
"""

import numpy as np
import pytest

from repro.parallel import pool
from repro.parallel.pool import (
    default_workers,
    get_common,
    payload_nbytes,
    pmap,
    pmap_seeded,
)
from repro.trace.store import PartitionStore


def plus_one(x):
    return x + 1


def boom(x):
    raise ValueError("boom")


def poison_and_boom(x):
    # a worker scribbling on the slot before dying — the strongest leak
    pool._set_common(("poison", x))
    raise ValueError("boom")


def read_common(x):
    return get_common()


def read_common_seeded(item, rng):
    return get_common()


def outer_with_nested_map(x):
    inner = pmap(read_common, [x], serial=True)
    return (inner[0], get_common())


class TestDefaultWorkersValidation:
    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            default_workers(bad)

    @pytest.mark.parametrize("bad", [2.5, "4", True, False, 3.0])
    def test_non_integral_rejected(self, bad):
        with pytest.raises(TypeError, match="max_workers"):
            default_workers(bad)

    def test_numpy_integers_accepted(self):
        assert default_workers(np.int64(3)) == 3
        assert isinstance(default_workers(np.int32(2)), int)

    def test_derived_default_clamped_to_one(self, monkeypatch):
        # a degenerate affinity mask must never produce an empty pool
        monkeypatch.setattr(pool, "_available_cpus", lambda: 0)
        assert default_workers() == 1


class TestCommonSlotHygiene:
    def test_failed_dispatch_restores_clean_slot(self):
        assert get_common() is None
        with pytest.raises(ValueError):
            pmap(boom, [1, 2], serial=True, common="this-run-store")
        assert get_common() is None

    def test_poisoning_worker_cannot_leak_into_next_map(self):
        out = pmap(poison_and_boom, [1], serial=True, on_error="return")
        assert out[0].error_type == "ValueError"
        assert get_common() is None
        # the next, common-free map starts from a clean slot
        assert pmap(read_common, [0], serial=True) == [None]

    def test_common_visible_only_during_map(self):
        assert pmap(read_common, [0, 1], serial=True, common="store") == (
            ["store", "store"]
        )
        assert get_common() is None

    def test_nested_map_isolates_and_restores_outer_common(self):
        # get_common() is None inside a common-free inner map, and the
        # outer map's object is back once the inner dispatch returns
        out = pmap(outer_with_nested_map, [7], serial=True, common="outer-store")
        assert out == [(None, "outer-store")]
        assert get_common() is None

    def test_seeded_map_resets_stale_slot(self):
        pool._set_common("stale-from-a-crashed-run")
        try:
            out = pmap_seeded(read_common_seeded, [0], base_seed=1, serial=True)
        finally:
            pool._set_common(None)
        assert out == [None]


class TestCommonBytesLimit:
    def test_oversized_common_rejected_before_dispatch(self):
        big = np.zeros(100_000)
        with pytest.raises(ValueError, match="bytes"):
            pmap(plus_one, [1, 2], serial=True, common=big, common_bytes_limit=1024)
        assert get_common() is None

    def test_within_limit_passes(self):
        out = pmap(read_common, [0], serial=True, common="ok", common_bytes_limit=4096)
        assert out == ["ok"]

    def test_limit_ignored_without_common(self):
        assert pmap(plus_one, [1], serial=True, common_bytes_limit=1) == [2]

    def test_spilled_store_fits_where_full_store_does_not(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        limit = 32 * 1024
        assert payload_nbytes(store) > limit, "fixture city should out-size the limit"
        with pytest.raises(ValueError, match="spill"):
            pmap(plus_one, [1, 2], serial=True, common=store, common_bytes_limit=limit)
        with store.spilled():
            assert payload_nbytes(store) < limit
            out = pmap(
                plus_one, [1, 2], serial=True, common=store,
                common_bytes_limit=limit,
            )
        assert out == [2, 3]
