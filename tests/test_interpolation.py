"""Unit + property tests for §V.A regularization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interpolation import bucket_mean, regularize
from repro.core.signal_types import InsufficientDataError


class TestBucketMean:
    def test_mean_merge_same_second(self):
        t = np.array([10.2, 10.7, 20.1])
        v = np.array([4.0, 8.0, 5.0])
        bt, bv = bucket_mean(t, v, 0.0, 30.0)
        np.testing.assert_allclose(bt, [10.0, 20.0])
        np.testing.assert_allclose(bv, [6.0, 5.0])

    def test_window_filtering(self):
        t = np.array([-5.0, 10.0, 40.0])
        v = np.ones(3)
        bt, _ = bucket_mean(t, v, 0.0, 30.0)
        np.testing.assert_allclose(bt, [10.0])

    def test_empty(self):
        bt, bv = bucket_mean(np.array([]), np.array([]), 0.0, 10.0)
        assert bt.size == 0 and bv.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bucket_mean(np.array([1.0]), np.array([1.0, 2.0]), 0, 10)
        with pytest.raises(ValueError):
            bucket_mean(np.array([1.0]), np.array([1.0]), 10, 0)

    @given(
        values=st.lists(st.floats(-50, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=30)
    def test_property_mean_bounded(self, values):
        t = np.arange(len(values), dtype=float) * 0.25  # collisions guaranteed
        v = np.array(values)
        _, bv = bucket_mean(t, v, 0.0, 100.0)
        assert bv.min() >= v.min() - 1e-9
        assert bv.max() <= v.max() + 1e-9


class TestRegularize:
    def test_grid_shape(self):
        t = np.arange(0, 100, 7.0)
        v = np.sin(t)
        grid, out = regularize(t, v, 0.0, 100.0)
        assert grid.shape == out.shape == (100,)
        np.testing.assert_allclose(np.diff(grid), 1.0)

    @pytest.mark.parametrize("kind", ["spline", "linear", "previous"])
    def test_exact_at_sample_points(self, kind):
        t = np.arange(0, 100, 10.0)
        v = np.cos(t / 9.0) * 10
        grid, out = regularize(t, v, 0.0, 100.0, kind=kind)
        idx = t.astype(int)
        np.testing.assert_allclose(out[idx], v, atol=1e-8)

    def test_spline_recovers_smooth_signal(self):
        t = np.sort(np.random.default_rng(0).uniform(0, 200, 60))
        true = lambda x: 5 + 3 * np.sin(2 * np.pi * x / 50.0)
        grid, out = regularize(t, true(t), 0.0, 200.0, kind="spline")
        inside = (grid > t.min()) & (grid < t.max())
        err = np.abs(out[inside] - true(grid[inside]))
        assert np.median(err) < 0.5

    def test_edges_held_constant(self):
        t = np.array([50.0, 60.0, 70.0, 80.0])
        v = np.array([1.0, 2.0, 3.0, 4.0])
        grid, out = regularize(t, v, 0.0, 100.0)
        np.testing.assert_allclose(out[:50], 1.0)
        np.testing.assert_allclose(out[81:], 4.0)

    def test_insufficient_data_raises(self):
        with pytest.raises(InsufficientDataError):
            regularize(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 0.0, 100.0)

    def test_min_samples_counts_buckets_not_rows(self):
        # 10 rows but all in one second: still insufficient
        t = np.full(10, 5.3)
        v = np.arange(10.0)
        with pytest.raises(InsufficientDataError):
            regularize(t, v, 0.0, 100.0, min_samples=4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            regularize(np.arange(10.0), np.arange(10.0), 0, 10, kind="cubic")

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20)
    def test_property_no_nans(self, seed):
        rng = np.random.default_rng(seed)
        t = np.sort(rng.uniform(0, 300, 12))
        v = rng.uniform(-10, 60, 12)
        _, out = regularize(t, v, 0.0, 300.0)
        assert np.isfinite(out).all()
