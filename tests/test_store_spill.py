"""Spill lifecycle of the column store: idempotent re-spill, stale-file
cleanup, the ``spilled()`` zero-copy window, and the mmap round trip.

These pin the seam the sharded backend fans out over: a spilled store
must serve bit-identical rows to any number of readers, pickle as a
metadata-sized handle, enforce read-only columns, and never leave
``.npy`` files behind when its backing moves or its rows change.
"""

import os
import pickle
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.parallel.pool import payload_nbytes
from repro.trace.store import PartitionStore

from tests.test_faults import synth_partition


def _spill_files(mmap_dir):
    return sorted(f for f in os.listdir(mmap_dir) if f.endswith(".npy"))


def _column_snapshot(store):
    return {name: np.asarray(col).copy() for name, col in store.columns.items()}


@pytest.fixture()
def store(partitions):
    return PartitionStore.from_partitions(partitions)


class TestSpillIdempotence:
    def test_respill_same_dir_is_noop(self, store, tmp_path):
        """Regression: re-spilling a lazily-reloaded store used to crash
        on ``assert self._columns is not None``."""
        target = tmp_path / "cols"
        store.spill_to(str(target))
        before = _spill_files(target)
        # the store has dropped its arrays; a second spill must not crash
        store.spill_to(str(target))
        assert _spill_files(target) == before
        # and after a lazy reload the same call is still a no-op
        _ = store.columns
        store.spill_to(str(target))
        assert _spill_files(target) == before

    def test_respill_new_dir_moves_and_cleans_old(self, store, tmp_path, partitions):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        reference = _column_snapshot(store)
        store.spill_to(str(dir_a))
        assert _spill_files(dir_a)
        store.spill_to(str(dir_b))
        assert _spill_files(dir_b)
        assert _spill_files(dir_a) == [], "old spill dir must not keep stale columns"
        for name, col in store.columns.items():
            np.testing.assert_array_equal(np.asarray(col), reference[name])
        key = sorted(partitions)[0]
        np.testing.assert_array_equal(
            store.partition(key).trace.t, partitions[key].trace.t
        )

    def test_append_after_spill_removes_stale_files(self, store, tmp_path):
        target = tmp_path / "cols"
        store.spill_to(str(target))
        fresh = synth_partition(seed=5, iid=500)
        touched = store.append_partitions({fresh.key: fresh})
        assert fresh.key in touched
        assert _spill_files(target) == [], (
            "spliced rows invalidate the on-disk columns; leaving them "
            "would let a later reload serve stale data"
        )
        np.testing.assert_array_equal(
            store.partition(fresh.key).trace.t, fresh.trace.t
        )


class TestSpilledContext:
    def test_roundtrip_restores_in_memory_columns(self, store):
        reference = _column_snapshot(store)
        full_bytes = payload_nbytes(store)
        with store.spilled() as s:
            assert s is store
            spill_dir = s._mmap_dir
            assert spill_dir is not None and os.path.isdir(spill_dir)
            handle_bytes = payload_nbytes(s)
            assert handle_bytes < 64 * 1024 < full_bytes, (
                "a spilled store must pickle as a metadata-sized handle"
            )
        assert store._mmap_dir is None
        assert not os.path.exists(spill_dir), "own tempdir must be removed"
        for name, col in store.columns.items():
            np.testing.assert_array_equal(np.asarray(col), reference[name])

    def test_caller_directory_keeps_dir_but_not_files(self, store, tmp_path):
        target = tmp_path / "mine"
        with store.spilled(str(target)):
            assert _spill_files(target)
        assert target.is_dir(), "caller-owned directory survives"
        assert _spill_files(target) == []

    def test_already_spilled_store_left_spilled(self, store, tmp_path):
        target = tmp_path / "cols"
        store.spill_to(str(target))
        backing = store._mmap_dir
        with store.spilled() as s:
            assert s._mmap_dir == backing
        assert store._mmap_dir == backing, "caller owns the lifecycle"
        assert _spill_files(target)

    def test_append_inside_context_wins_over_snapshot(self, store):
        fresh = synth_partition(seed=6, iid=600)
        with store.spilled():
            store.append_partitions({fresh.key: fresh})
        assert store._mmap_dir is None
        assert fresh.key in store
        np.testing.assert_array_equal(
            store.partition(fresh.key).trace.t, fresh.trace.t
        )


class TestMmapRoundTrip:
    def test_concurrent_readers_match_in_memory_originals(self, store, partitions):
        keys = sorted(partitions)
        reference = {
            key: (
                np.asarray(store.partition(key).trace.t).copy(),
                np.asarray(store.partition(key).trace.speed_kmh).copy(),
            )
            for key in keys
        }
        clean = PartitionStore.from_partitions(partitions)
        with clean.spilled() as s:

            def read(key):
                p = s.partition(key)
                return (
                    np.asarray(p.trace.t).copy(),
                    np.asarray(p.trace.speed_kmh).copy(),
                )

            with ThreadPoolExecutor(max_workers=4) as ex:
                results = list(ex.map(read, keys * 3))
        for key, (t, v) in zip(keys * 3, results):
            np.testing.assert_array_equal(t, reference[key][0])
            np.testing.assert_array_equal(v, reference[key][1])

    def test_mapped_columns_are_read_only(self, store):
        with store.spilled() as s:
            for name, col in s.columns.items():
                arr = np.asarray(col)
                assert arr.flags.writeable is False, (
                    f"spilled column {name!r} must be read-only"
                )
                with pytest.raises(ValueError):
                    col[0] = 0.0

    def test_pickled_handle_reattaches_identically(self, store, partitions):
        with store.spilled() as s:
            payload = pickle.dumps(s)
            clone = pickle.loads(payload)
            assert sorted(clone) == sorted(s)
            for key in sorted(partitions):
                np.testing.assert_array_equal(
                    clone.partition(key).trace.t, partitions[key].trace.t
                )
            # the clone reads straight off the mapped files
            assert np.asarray(clone.columns["t"]).flags.writeable is False

    def test_columns_reload_routes_through_swap_backing(self, store, tmp_path):
        store.spill_to(str(tmp_path / "cols"))
        assert store._columns is None, "spill drops the arrays for lazy reload"
        calls = []
        original = store._swap_backing

        def spy(columns, mmap_dir):
            calls.append((columns is not None, mmap_dir))
            original(columns, mmap_dir)

        store._swap_backing = spy
        try:
            _ = store.columns
        finally:
            del store._swap_backing
        assert calls == [(True, store._mmap_dir)], (
            "the lazy reload must go through the sanctioned _swap_backing seam"
        )
