"""Observability layer: StageTelemetry, LightFailure, RunReport.

Ends with the acceptance scenario of the fault-containment issue: a
citywide ``identify_many`` run with ~10% deliberately poisoned
partitions completes under the process pool, reports the poisoned
lights in the failure map with exception class + stage, and exports
per-stage wall time and counter totals as JSON.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import identify_many
from repro.eval import evaluate_at_times
from repro.matching.partition import LightPartition
from repro.network.roadnet import Approach
from repro.obs import LightFailure, RunReport, StageTelemetry, format_light_key


def poison_partition(p: LightPartition) -> LightPartition:
    """Corrupt a partition's parallel arrays (length mismatch) so the
    pipeline's very first windowing step raises a ValueError."""
    return LightPartition(
        p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
    )


class TestStageTelemetry:
    def test_stage_times_accumulate(self):
        tel = StageTelemetry()
        with tel.stage("a"):
            sum(range(1000))
        with tel.stage("a"):
            pass
        with tel.stage("b"):
            pass
        assert tel.stage_calls["a"] == 2
        assert tel.stage_s["a"] > 0.0
        assert tel.total_s() == pytest.approx(tel.stage_s["a"] + tel.stage_s["b"])

    def test_last_stage_survives_raise(self):
        tel = StageTelemetry()
        with pytest.raises(RuntimeError):
            with tel.stage("boom"):
                raise RuntimeError("x")
        assert tel.last_stage == "boom"
        assert tel.stage_calls["boom"] == 1  # crash time still accounted

    def test_counters(self):
        tel = StageTelemetry()
        tel.count("samples")
        tel.count("samples", 9)
        assert tel.counters == {"samples": 10}

    def test_merge(self):
        a, b = StageTelemetry(), StageTelemetry()
        with a.stage("x"):
            pass
        with b.stage("x"):
            pass
        with b.stage("y"):
            pass
        b.count("c", 3)
        a.merge(b)
        assert a.stage_calls == {"x": 2, "y": 1}
        assert a.counters == {"c": 3}

    def test_picklable(self):
        tel = StageTelemetry()
        with tel.stage("x"):
            tel.count("n", 2)
        clone = pickle.loads(pickle.dumps(tel))
        assert clone.stage_s == tel.stage_s
        assert clone.counters == tel.counters
        assert clone.last_stage == "x"


class TestLightFailure:
    def test_from_exception(self):
        f = LightFailure.from_exception(ValueError("bad shape"), "samples")
        assert f.error_type == "ValueError"
        assert f.stage == "samples"
        assert f.message == "bad shape"
        assert not f.insufficient_data
        assert f.kind == "samples/ValueError"
        assert "samples" in str(f) and "bad shape" in str(f)

    def test_stage_defaults_to_setup(self):
        f = LightFailure.from_exception(RuntimeError("x"), None)
        assert f.stage == "setup"

    def test_dict_roundtrip(self):
        f = LightFailure(error_type="ValueError", stage="red", message="m")
        assert LightFailure.from_dict(f.to_dict()) == f

    def test_insufficient_data_flag(self):
        from repro.core.signal_types import InsufficientDataError
        f = LightFailure.from_exception(InsufficientDataError("sparse"), "cycle")
        assert f.insufficient_data


class TestRunReport:
    def test_record_and_taxonomy(self):
        report = RunReport()
        tel = StageTelemetry()
        with tel.stage("cycle"):
            pass
        report.record_light((0, "NS"), tel)
        report.record_light(
            (1, "EW"), None,
            LightFailure(error_type="ValueError", stage="red", message="m"),
        )
        report.finish_run(0.5)
        assert report.n_lights == 2 and report.n_ok == 1 and report.n_failed == 1
        assert report.runs == 1 and report.wall_s == pytest.approx(0.5)
        assert report.failure_taxonomy() == {"red/ValueError": 1}
        assert "1:EW" in report.failures

    def test_json_roundtrip(self, tmp_path):
        report = RunReport()
        tel = StageTelemetry()
        with tel.stage("cycle"):
            tel.count("samples_primary", 42)
        report.record_light((0, "NS"), tel)
        report.record_light(
            (3, "EW"), None,
            LightFailure(error_type="TypeError", stage="stops", message="oops"),
        )
        report.finish_run(1.25)
        path = tmp_path / "report.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.n_lights == report.n_lights
        assert loaded.counters == report.counters
        assert loaded.failures == report.failures
        assert loaded.wall_s == pytest.approx(report.wall_s)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.run_report/v1"

    def test_summary_mentions_stages_and_failures(self):
        report = RunReport()
        tel = StageTelemetry()
        with tel.stage("cycle"):
            pass
        report.record_light((0, "NS"), tel)
        report.record_light(
            (1, "NS"), None,
            LightFailure(error_type="ValueError", stage="red", message="m"),
        )
        text = report.summary()
        assert "cycle" in text and "red/ValueError" in text

    def test_format_light_key(self):
        assert format_light_key((3, "NS")) == "3:NS"
        assert format_light_key("free-form") == "free-form"


class TestReportFromIdentifyMany:
    def test_report_collects_stages_and_counters(self, partitions):
        report = RunReport()
        ests, fails = identify_many(partitions, 5400.0, serial=True, report=report)
        assert report.n_lights == len(partitions)
        assert report.n_ok == len(ests) and report.n_failed == len(fails)
        for stage in ("samples", "stops", "cycle", "red"):
            assert report.stage_s[stage] > 0.0
        assert report.counters["samples_primary"] > 0
        assert report.counters["cycle_candidates_scanned"] > 0
        assert report.counters["stops_extracted"] >= report.counters["stops_kept"]

    def test_report_aggregates_across_time_spots(self, partitions, city):
        def truth_fn(iid, app, t):
            plan = city.plans[iid][0]
            return plan.ns_schedule() if app == Approach.NS else plan.ew_schedule()

        report = RunReport()
        result = evaluate_at_times(
            partitions, truth_fn, [4500.0, 5400.0], serial=True, report=report
        )
        assert report.runs == 2
        assert report.n_lights == 2 * len(partitions)
        assert len(result) == 2 * len(partitions)
        assert report.wall_s > 0.0

    def test_poisoned_citywide_run_completes(self, partitions, tmp_path):
        # ~10% of the city deliberately poisoned (1 of 8 lights here).
        keys = sorted(partitions)
        bad = keys[: max(1, round(0.1 * len(keys)))]
        city = dict(partitions)
        for k in bad:
            city[k] = poison_partition(city[k])

        report = RunReport()
        ests, fails = identify_many(city, 5400.0, max_workers=2, report=report)

        # The run completed and every poisoned light is typed in the map.
        for k in bad:
            assert k in fails
            assert fails[k].error_type == "ValueError"
            assert fails[k].stage == "samples"
        # The healthy lights got exactly the estimates a clean run gives.
        clean, _ = identify_many(partitions, 5400.0, serial=True)
        for k in clean:
            if k not in bad:
                assert k in ests
                assert ests[k].cycle_s == pytest.approx(clean[k].cycle_s)

        # The exported JSON carries per-stage wall time + counter totals.
        path = tmp_path / "report.json"
        report.save(path)
        doc = json.loads(path.read_text())
        assert doc["lights"]["failed"] == len(bad)
        assert doc["lights"]["ok"] == len(ests)
        assert doc["stages"] and all(v["wall_s"] >= 0.0 for v in doc["stages"].values())
        assert doc["counters"]["samples_primary"] > 0
        entry = doc["failures"][format_light_key(bad[0])]
        assert entry["error_type"] == "ValueError"
        assert entry["stage"] == "samples"
        assert doc["failure_taxonomy"]["samples/ValueError"] == len(bad)
