"""Unit tests for map matching (§IV, Fig. 5 rules)."""

import numpy as np
import pytest

from repro.matching.mapmatch import MatchConfig, match_trace
from repro.network.roadnet import grid_network
from repro.trace.records import TraceArrays


@pytest.fixture(scope="module")
def net():
    return grid_network(2, 2, 500.0)


def trace_at(net, x, y, heading, gps_ok=True):
    lon, lat = net.frame.to_geographic(np.atleast_1d(x), np.atleast_1d(y))
    n = lon.shape[0]
    return TraceArrays(
        taxi_id=np.arange(n) + 1,
        t=np.arange(n, dtype=float),
        lon=lon,
        lat=lat,
        speed_kmh=np.full(n, 20.0),
        heading_deg=np.broadcast_to(np.asarray(heading, float), (n,)).copy(),
        gps_ok=np.full(n, gps_ok),
    )


class TestNearestRule:
    def test_matches_nearest_compatible_segment(self, net):
        # point on the south edge road, heading east -> the eastbound segment
        tr = trace_at(net, 250.0, 5.0, 90.0)
        m = match_trace(tr, net)
        seg = net.segments[int(m.segment_id[0])]
        assert seg.heading == pytest.approx(90.0)
        assert m.distance_m[0] == pytest.approx(5.0, abs=0.1)

    def test_heading_conflict_picks_opposite_direction(self, net):
        # same point but heading west: the westbound twin must win even
        # though both are equidistant geometrically
        tr = trace_at(net, 250.0, 5.0, 270.0)
        m = match_trace(tr, net)
        seg = net.segments[int(m.segment_id[0])]
        assert seg.heading == pytest.approx(270.0)

    def test_far_point_unmatched(self, net):
        tr = trace_at(net, 250.0, 5000.0, 90.0)
        m = match_trace(tr, net, MatchConfig(max_distance_m=120.0))
        assert m.segment_id[0] == -1
        assert np.isnan(m.distance_m[0])

    def test_incompatible_heading_everywhere_unmatched(self, net):
        # heading 45° is NS-ish... make the threshold tiny so nothing fits
        tr = trace_at(net, 250.0, 5.0, 45.0)
        m = match_trace(tr, net, MatchConfig(max_heading_diff_deg=10.0))
        assert m.segment_id[0] == -1


class TestGPSFilter:
    def test_gps_not_ok_dropped(self, net):
        tr = trace_at(net, 250.0, 5.0, 90.0, gps_ok=False)
        m = match_trace(tr, net)
        assert len(m.trace) == 0

    def test_gps_filter_can_be_disabled(self, net):
        tr = trace_at(net, 250.0, 5.0, 90.0, gps_ok=False)
        m = match_trace(tr, net, MatchConfig(require_gps_ok=False))
        assert len(m.trace) == 1 and m.segment_id[0] >= 0


class TestBatch:
    def test_chunking_matches_unchunked(self, net, rng):
        xs = rng.uniform(-50, 550, 300)
        ys = rng.uniform(-50, 550, 300)
        hs = rng.uniform(0, 360, 300)
        tr = trace_at(net, xs, ys, hs)
        a = match_trace(tr, net, MatchConfig(chunk_size=7))
        b = match_trace(tr, net, MatchConfig(chunk_size=100_000))
        np.testing.assert_array_equal(a.segment_id, b.segment_id)

    def test_matched_fraction(self, net):
        tr = trace_at(net, np.array([250.0, 250.0]), np.array([5.0, 9000.0]),
                      np.array([90.0, 90.0]))
        m = match_trace(tr, net)
        assert m.matched_fraction == pytest.approx(0.5)

    def test_matched_only(self, net):
        tr = trace_at(net, np.array([250.0, 250.0]), np.array([5.0, 9000.0]),
                      np.array([90.0, 90.0]))
        sub, segs = match_trace(tr, net).matched_only()
        assert len(sub) == 1 and segs.shape == (1,)

    def test_empty_trace(self, net):
        m = match_trace(TraceArrays.empty(), net)
        assert len(m.trace) == 0 and np.isnan(m.matched_fraction)

    def test_end_to_end_fraction_high(self, trace, city):
        m = match_trace(trace, city.net)
        assert m.matched_fraction > 0.95


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MatchConfig(max_distance_m=0.0)
        with pytest.raises(ValueError):
            MatchConfig(chunk_size=0)
