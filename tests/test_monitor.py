"""Unit tests for scheduling-change monitoring (§VII)."""

import numpy as np
import pytest

from repro.core.monitor import (
    HistoricalProfile,
    MonitorSeries,
    PlanChange,
    detect_plan_changes,
    monitor_cycle,
    repair_outliers,
)


def series(cycles, t0=0.0, every=300.0, quality=None):
    cycles = np.asarray(cycles, dtype=float)
    t = t0 + np.arange(cycles.size) * every
    q = np.ones_like(cycles) if quality is None else np.asarray(quality, float)
    return MonitorSeries(t=t, cycle_s=cycles, quality=q)


class TestRepairOutliers:
    def test_isolated_spike_repaired(self):
        s = series([98, 98, 240, 98, 98, 98])
        r = repair_outliers(s)
        assert r.cycle_s[2] == pytest.approx(98.0)

    def test_sustained_shift_survives(self):
        s = series([98] * 6 + [140] * 6)
        r = repair_outliers(s)
        assert r.cycle_s[-1] == pytest.approx(140.0)
        assert r.cycle_s[0] == pytest.approx(98.0)

    def test_nans_passed_through(self):
        s = series([98, np.nan, 98, 98])
        r = repair_outliers(s)
        assert np.isnan(r.cycle_s[1])

    def test_valid_fraction(self):
        s = series([98, np.nan, 98, np.nan])
        assert s.valid_fraction() == pytest.approx(0.5)


class TestDetectPlanChanges:
    def test_single_change_detected(self):
        s = series([98] * 10 + [140] * 10, every=300.0)
        changes = detect_plan_changes(s)
        assert len(changes) == 1
        ch = changes[0]
        assert ch.at_time == pytest.approx(10 * 300.0)
        assert ch.old_cycle_s == pytest.approx(98.0, abs=2.0)
        assert ch.new_cycle_s == pytest.approx(140.0, abs=2.0)

    def test_no_change_on_stable_series(self):
        s = series([98] * 30)
        assert detect_plan_changes(s) == []

    def test_isolated_blip_not_a_change(self):
        s = series([98] * 10 + [140] + [98] * 10)
        assert detect_plan_changes(s) == []

    def test_two_blips_below_min_consecutive_ignored(self):
        s = series([98] * 10 + [140, 140] + [98] * 10)
        assert detect_plan_changes(s, min_consecutive=3) == []

    def test_round_trip_peak_plan(self):
        # off-peak -> peak -> off-peak (the Fig. 12 daily pattern)
        s = series([98] * 12 + [140] * 8 + [98] * 12)
        changes = detect_plan_changes(s)
        assert len(changes) == 2
        assert changes[0].new_cycle_s == pytest.approx(140.0, abs=2.0)
        assert changes[1].new_cycle_s == pytest.approx(98.0, abs=2.0)

    def test_nan_gaps_tolerated(self):
        cycles = [98] * 8 + [np.nan] * 3 + [140] * 6
        changes = detect_plan_changes(series(cycles))
        assert len(changes) == 1

    def test_empty_series(self):
        assert detect_plan_changes(series([np.nan, np.nan])) == []


class TestMonitorCycle:
    def test_monitor_on_real_partition(self, partitions, city):
        key = next(iter(sorted(partitions)))
        p = partitions[key]
        out = monitor_cycle(p, 0.0, 5400.0, every_s=600.0, window_s=1800.0)
        assert len(out) == len(np.arange(1800.0, 5400.0 + 1e-9, 600.0))
        assert out.valid_fraction() > 0.5
        valid = out.cycle_s[~np.isnan(out.cycle_s)]
        # the test city runs 98 s cycles; most estimates must agree
        assert np.median(valid) == pytest.approx(98.0, abs=3.0)

    def test_validation(self, partitions):
        p = next(iter(partitions.values()))
        with pytest.raises(ValueError):
            monitor_cycle(p, 0.0, 100.0, every_s=0.0)


class TestHistoricalProfile:
    def test_median_across_days(self):
        day = 86_400.0
        d1 = series([98] * 10, t0=8 * 3600.0, every=1800.0)
        d2 = series([100] * 10, t0=day + 8 * 3600.0, every=1800.0)
        d3 = series([98] * 10, t0=2 * day + 8 * 3600.0, every=1800.0)
        h = HistoricalProfile([d1, d2, d3])
        assert h.expectation_at(8.5 * 3600.0) == pytest.approx(98.0)

    def test_correct_snaps_outlier(self):
        d = series([98] * 20, t0=6 * 3600.0, every=1800.0)
        h = HistoricalProfile([d])
        assert h.correct(7 * 3600.0, 98.5) == pytest.approx(98.5)  # within tol
        assert h.correct(7 * 3600.0, 180.0) == pytest.approx(98.0)  # snapped

    def test_unknown_slot_passthrough(self):
        d = series([98] * 4, t0=6 * 3600.0, every=1800.0)
        h = HistoricalProfile([d])
        assert h.correct(20 * 3600.0, 123.0) == 123.0

    def test_bin_validation(self):
        with pytest.raises(ValueError):
            HistoricalProfile([], bin_s=7.0)


class TestDriftingSchedules:
    """Gradual (non-step) schedule transitions through the monitor stack.

    The detector was designed for step changes; these tests pin how it
    behaves when the truth drifts smoothly instead — staged detections
    for fast ramps, silence for slow creep — so a future tuning change
    shows up as an explicit diff here rather than a silent behavior
    shift.
    """

    def test_fast_ramp_reported_as_staged_changes(self):
        """A 42 s ramp over 30 windows surfaces as a few step changes,
        each moving in the drift direction and inside the ramp's span."""
        ramp = np.concatenate(
            [np.full(8, 98.0), np.linspace(98.0, 140.0, 30), np.full(8, 140.0)]
        )
        s = series(ramp)
        changes = detect_plan_changes(repair_outliers(s))
        assert 1 <= len(changes) <= 5
        times = [c.at_time for c in changes]
        assert times == sorted(times)
        assert all(c.new_cycle_s > c.old_cycle_s for c in changes)
        for c in changes:
            assert 98.0 < c.new_cycle_s <= 140.0 + 2.0
        # First staged detection happens after the drift actually starts.
        assert changes[0].at_time >= 8 * 300.0

    def test_repair_does_not_flatten_a_ramp(self):
        """A smooth drift is signal, not outliers: repair must pass it
        through untouched (every step is well inside the spike gate)."""
        ramp = np.linspace(98.0, 140.0, 30)
        r = repair_outliers(series(ramp))
        np.testing.assert_allclose(r.cycle_s, ramp)

    def test_slow_creep_stays_silent(self):
        """Sub-tolerance per-step creep is tracked by the EWMA level and
        never crosses the run-of-3 gate: zero reported changes.  This is
        the documented blind spot of a step detector, pinned on purpose."""
        creep = np.linspace(98.0, 160.0, 120)
        assert detect_plan_changes(series(creep)) == []

    def test_drift_with_nan_gaps_is_crash_free(self):
        """NaN holes in a drifting series must not break detection."""
        d = np.linspace(98.0, 140.0, 40)
        d[::7] = np.nan
        changes = detect_plan_changes(series(d))
        assert all(c.new_cycle_s > c.old_cycle_s for c in changes)

    def test_drift_into_nan_tail(self):
        """Estimates going dark mid-drift (all-NaN tail) is containment,
        not a crash; detections stay within the observed span."""
        d = np.concatenate([np.linspace(98.0, 130.0, 20), np.full(10, np.nan)])
        changes = detect_plan_changes(series(d))
        for c in changes:
            assert c.at_time < 20 * 300.0

    def test_degenerate_series_lengths(self):
        """Too-short series can never satisfy the run-of-3 gate."""
        assert detect_plan_changes(series([98.0])) == []
        assert detect_plan_changes(series([98.0, 140.0])) == []
        assert detect_plan_changes(series([np.nan] * 10)) == []

    def test_adaptive_partition_end_to_end(self):
        """monitor -> repair -> detect on a fully demand-driven adaptive
        trace: the realized schedule drifts every cycle, and the whole
        stack must stay crash-free with usable estimates throughout."""
        from repro.scenario import adaptive_synthetic_lights, synthetic_partitions

        lights = adaptive_synthetic_lights(2, alpha=1.0, kind="gap", seed=3)
        parts = synthetic_partitions(lights, 0.0, 9000.0, seed=3)
        partition = next(iter(parts.values()))
        ms = monitor_cycle(partition, 1800.0, 9000.0, every_s=300.0, window_s=1800.0)
        assert ms.t.size > 0
        assert ms.valid_fraction() > 0.8
        changes = detect_plan_changes(repair_outliers(ms))
        for c in changes:
            assert 1800.0 <= c.at_time <= 9000.0

    def test_empty_monitoring_window_is_contained(self):
        """A horizon shorter than the trailing window yields an empty
        series, and every downstream stage degrades gracefully on it."""
        from repro.scenario import adaptive_synthetic_lights, synthetic_partitions

        lights = adaptive_synthetic_lights(1, alpha=1.0, kind="actuated", seed=9)
        parts = synthetic_partitions(lights, 0.0, 9000.0, seed=9)
        partition = next(iter(parts.values()))
        ms = monitor_cycle(partition, 0.0, 600.0, every_s=300.0, window_s=1800.0)
        assert ms.t.size == 0
        assert np.isnan(ms.valid_fraction())
        assert repair_outliers(ms).cycle_s.size == 0
        assert detect_plan_changes(ms) == []
