"""Unit tests for scheduling-change monitoring (§VII)."""

import numpy as np
import pytest

from repro.core.monitor import (
    HistoricalProfile,
    MonitorSeries,
    PlanChange,
    detect_plan_changes,
    monitor_cycle,
    repair_outliers,
)


def series(cycles, t0=0.0, every=300.0, quality=None):
    cycles = np.asarray(cycles, dtype=float)
    t = t0 + np.arange(cycles.size) * every
    q = np.ones_like(cycles) if quality is None else np.asarray(quality, float)
    return MonitorSeries(t=t, cycle_s=cycles, quality=q)


class TestRepairOutliers:
    def test_isolated_spike_repaired(self):
        s = series([98, 98, 240, 98, 98, 98])
        r = repair_outliers(s)
        assert r.cycle_s[2] == pytest.approx(98.0)

    def test_sustained_shift_survives(self):
        s = series([98] * 6 + [140] * 6)
        r = repair_outliers(s)
        assert r.cycle_s[-1] == pytest.approx(140.0)
        assert r.cycle_s[0] == pytest.approx(98.0)

    def test_nans_passed_through(self):
        s = series([98, np.nan, 98, 98])
        r = repair_outliers(s)
        assert np.isnan(r.cycle_s[1])

    def test_valid_fraction(self):
        s = series([98, np.nan, 98, np.nan])
        assert s.valid_fraction() == pytest.approx(0.5)


class TestDetectPlanChanges:
    def test_single_change_detected(self):
        s = series([98] * 10 + [140] * 10, every=300.0)
        changes = detect_plan_changes(s)
        assert len(changes) == 1
        ch = changes[0]
        assert ch.at_time == pytest.approx(10 * 300.0)
        assert ch.old_cycle_s == pytest.approx(98.0, abs=2.0)
        assert ch.new_cycle_s == pytest.approx(140.0, abs=2.0)

    def test_no_change_on_stable_series(self):
        s = series([98] * 30)
        assert detect_plan_changes(s) == []

    def test_isolated_blip_not_a_change(self):
        s = series([98] * 10 + [140] + [98] * 10)
        assert detect_plan_changes(s) == []

    def test_two_blips_below_min_consecutive_ignored(self):
        s = series([98] * 10 + [140, 140] + [98] * 10)
        assert detect_plan_changes(s, min_consecutive=3) == []

    def test_round_trip_peak_plan(self):
        # off-peak -> peak -> off-peak (the Fig. 12 daily pattern)
        s = series([98] * 12 + [140] * 8 + [98] * 12)
        changes = detect_plan_changes(s)
        assert len(changes) == 2
        assert changes[0].new_cycle_s == pytest.approx(140.0, abs=2.0)
        assert changes[1].new_cycle_s == pytest.approx(98.0, abs=2.0)

    def test_nan_gaps_tolerated(self):
        cycles = [98] * 8 + [np.nan] * 3 + [140] * 6
        changes = detect_plan_changes(series(cycles))
        assert len(changes) == 1

    def test_empty_series(self):
        assert detect_plan_changes(series([np.nan, np.nan])) == []


class TestMonitorCycle:
    def test_monitor_on_real_partition(self, partitions, city):
        key = next(iter(sorted(partitions)))
        p = partitions[key]
        out = monitor_cycle(p, 0.0, 5400.0, every_s=600.0, window_s=1800.0)
        assert len(out) == len(np.arange(1800.0, 5400.0 + 1e-9, 600.0))
        assert out.valid_fraction() > 0.5
        valid = out.cycle_s[~np.isnan(out.cycle_s)]
        # the test city runs 98 s cycles; most estimates must agree
        assert np.median(valid) == pytest.approx(98.0, abs=3.0)

    def test_validation(self, partitions):
        p = next(iter(partitions.values()))
        with pytest.raises(ValueError):
            monitor_cycle(p, 0.0, 100.0, every_s=0.0)


class TestHistoricalProfile:
    def test_median_across_days(self):
        day = 86_400.0
        d1 = series([98] * 10, t0=8 * 3600.0, every=1800.0)
        d2 = series([100] * 10, t0=day + 8 * 3600.0, every=1800.0)
        d3 = series([98] * 10, t0=2 * day + 8 * 3600.0, every=1800.0)
        h = HistoricalProfile([d1, d2, d3])
        assert h.expectation_at(8.5 * 3600.0) == pytest.approx(98.0)

    def test_correct_snaps_outlier(self):
        d = series([98] * 20, t0=6 * 3600.0, every=1800.0)
        h = HistoricalProfile([d])
        assert h.correct(7 * 3600.0, 98.5) == pytest.approx(98.5)  # within tol
        assert h.correct(7 * 3600.0, 180.0) == pytest.approx(98.0)  # snapped

    def test_unknown_slot_passthrough(self):
        d = series([98] * 4, t0=6 * 3600.0, every=1800.0)
        h = HistoricalProfile([d])
        assert h.correct(20 * 3600.0, 123.0) == 123.0

    def test_bin_validation(self):
        with pytest.raises(ValueError):
            HistoricalProfile([], bin_s=7.0)
