"""Unit + property tests for data superposition (§VI.B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.superposition import cycle_profile, fold_samples, fold_times


class TestFoldTimes:
    def test_basic_modulo(self):
        out = fold_times(np.array([0.0, 98.0, 150.0]), 98.0)
        np.testing.assert_allclose(out, [0.0, 0.0, 52.0])

    def test_anchor_shifts(self):
        out = fold_times(np.array([100.0]), 98.0, anchor=10.0)
        assert out[0] == pytest.approx(90.0 % 98.0)

    def test_rejects_bad_cycle(self):
        with pytest.raises(ValueError):
            fold_times(np.array([1.0]), 0.0)

    @given(
        times=st.lists(st.floats(0, 1e5), min_size=1, max_size=50),
        cycle=st.floats(1.0, 400.0),
    )
    @settings(max_examples=40)
    def test_property_range(self, times, cycle):
        out = fold_times(np.array(times), cycle)
        assert np.all((out >= 0) & (out < cycle))

    @given(
        t=st.floats(0, 1e4),
        k=st.integers(0, 20),
        cycle=st.floats(1.0, 400.0),
    )
    @settings(max_examples=40)
    def test_property_index_preserved(self, t, k, cycle):
        """'Data superposition will keep the relative index of data
        within a cycle' — the fold is invariant to whole-cycle shifts."""
        from repro._util import circular_diff
        a = float(fold_times(np.array([t]), cycle)[0])
        b = float(fold_times(np.array([t + k * cycle]), cycle)[0])
        # equality is circular: float fuzz may express 0 as ~cycle
        assert abs(float(circular_diff(a, b, cycle))) < 1e-6 * max(1, k) + 1e-9


class TestFoldSamples:
    def test_sorted_and_paired(self):
        t = np.array([150.0, 0.0, 98.0])
        v = np.array([3.0, 1.0, 2.0])
        ft, fv = fold_samples(t, v, 98.0)
        assert np.all(np.diff(ft) >= 0)
        # values follow their timestamps
        assert fv[np.isclose(ft, 52.0)][0] == 3.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fold_samples(np.array([1.0]), np.array([1.0, 2.0]), 98.0)


class TestCycleProfile:
    def test_means_per_bin(self):
        t = np.array([5.0, 5.4, 103.2])  # bins 5, 5, 5 (folded)
        v = np.array([2.0, 4.0, 6.0])
        prof = cycle_profile(t, v, 98.0)
        assert prof.shape == (98,)
        assert prof[5] == pytest.approx(4.0)

    def test_circular_interpolation_of_gaps(self):
        # samples only at folded seconds 10 and 90 of a 100 s cycle:
        # second 0 must interpolate across the wrap, not extrapolate
        t = np.array([10.0, 90.0])
        v = np.array([0.0, 10.0])
        prof = cycle_profile(t, v, 100.0)
        assert np.isfinite(prof).all()
        # wrap path 90 -> 110(=10): second 0 is halfway
        assert prof[0] == pytest.approx(5.0, abs=0.5)

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            cycle_profile(np.array([]), np.array([]), 98.0)

    def test_recovers_square_wave(self, rng):
        cycle, red = 98.0, 39.0
        t = np.sort(rng.uniform(0, 3600, 400))
        v = np.where((t % cycle) < red, 1.0, 9.0)
        prof = cycle_profile(t, v, cycle)
        assert prof[:38].mean() < 3.0
        assert prof[45:95].mean() > 7.0

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15)
    def test_property_profile_within_value_range(self, seed):
        rng = np.random.default_rng(seed)
        t = np.sort(rng.uniform(0, 2000, 50))
        v = rng.uniform(-5, 25, 50)
        prof = cycle_profile(t, v, 97.0)
        assert prof.min() >= v.min() - 1e-9
        assert prof.max() <= v.max() + 1e-9
