"""REP017/REP018/REP019 — numeric-contract rules: fixtures + canaries.

Synthetic trees exercise each rule's fire and clean paths through
``lint_sources`` (the same engine path CI takes).  The canary tests
then mutate the *real* tree in memory — deleting a seam blessing,
inserting a set-fed accumulation, calling a tolerance-tier kernel from
unmarked code — and assert the rule catches each regression, proving
the committed-empty baseline is load-bearing rather than vacuous.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import iter_python_files, lint_sources

REPO_ROOT = Path(__file__).resolve().parents[1]

PARITY = "src/repro/core/cycle.py"
SEAM = "src/repro/core/kernel_tier.py"
LIB = "src/repro/eval/driver.py"

# built by concatenation so this test file itself never carries a
# live tolerance marker (the analyzer lints tests/ too)
MARKER = "# repro" + ": tolerance"


def _rules(findings):
    return [f.rule for f in findings]


def _messages(findings, rule):
    return [f.message for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# REP017 — precision dataflow into parity-kernel parameters
# ----------------------------------------------------------------------


class TestRep017:
    KERNEL = (
        "import numpy as np\n\n"
        "def fold_kernel(t, v):\n"
        "    return float(np.sum(t) + np.sum(v))\n"
    )

    def test_direct_sub_f64_argument_fires(self):
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def run(samples):\n"
            "    t = np.asarray(samples, dtype=np.float32)\n"
            "    v = np.asarray(samples, dtype=np.float64)\n"
            "    return fold_kernel(t, v)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        msgs = _messages(findings, "REP017")
        assert len(msgs) == 1
        assert "`t`" in msgs[0]
        assert "run -> fold_kernel" in msgs[0]
        assert "sub-float64" in msgs[0]

    def test_violation_through_helper_names_full_chain(self):
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def _mid(t, v):\n"
            "    return fold_kernel(t, v)\n\n"
            "def run(samples):\n"
            "    t = np.asarray(samples, dtype=np.float32)\n"
            "    return _mid(t, t)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        msgs = _messages(findings, "REP017")
        assert msgs
        assert any("run -> _mid -> fold_kernel" in m for m in msgs)

    def test_unknown_precision_fires(self):
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def produce(n) -> np.ndarray:\n"
            "    return _outside_helper(n)\n\n"
            "def run(n):\n"
            "    t = produce(n)\n"
            "    return fold_kernel(t, t)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        msgs = _messages(findings, "REP017")
        assert msgs
        assert any("unknown-precision" in m for m in msgs)

    def test_blessed_seam_is_clean(self):
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def run(samples):\n"
            "    t = np.asarray(samples, dtype=np.float32)\n"
            "    return fold_kernel(t.astype(np.float64), t.astype(np.float64))\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        assert _messages(findings, "REP017") == []

    def test_ambiguous_spelling_is_rep005_not_rep017(self):
        # dtype=float IS float64 — REP017 stays quiet; only the
        # spelling rule (scoped to parity files) may comment
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def run(samples):\n"
            "    t = np.asarray(samples, dtype=float)\n"
            "    return fold_kernel(t, t)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        assert _messages(findings, "REP017") == []

    def test_dtype_parameter_resolves_interprocedurally(self):
        # the check_1d idiom: a validator coercing through its own
        # dtype parameter must not collapse to UNKNOWN
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def _check(arr, dtype=np.float64) -> np.ndarray:\n"
            "    return np.asarray(arr, dtype=dtype)\n\n"
            "def run(samples):\n"
            "    t = _check(samples)\n"
            "    return fold_kernel(t, t)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        assert _messages(findings, "REP017") == []

    def test_dtype_parameter_downcast_fires(self):
        driver = (
            "import numpy as np\n"
            "from repro.core.cycle import fold_kernel\n\n"
            "def _check(arr, dtype=np.float64) -> np.ndarray:\n"
            "    return np.asarray(arr, dtype=dtype)\n\n"
            "def run(samples):\n"
            "    t = _check(samples, dtype=np.float32)\n"
            "    return fold_kernel(t, t)\n"
        )
        findings = lint_sources([(PARITY, self.KERNEL), (LIB, driver)])
        msgs = _messages(findings, "REP017")
        assert msgs
        assert any("sub-float64" in m for m in msgs)


# ----------------------------------------------------------------------
# REP018 — order-stable reductions in the parity-reachable closure
# ----------------------------------------------------------------------


class TestRep018:
    def test_set_fed_reduction_in_kernel_fires(self):
        kernel = (
            "import numpy as np\n\n"
            "def fold_kernel(values):\n"
            "    vals = list({float(x) for x in values})\n"
            "    return float(np.sum(vals))\n"
        )
        findings = lint_sources([(PARITY, kernel)])
        msgs = _messages(findings, "REP018")
        assert msgs
        assert any("set-order-tainted" in m for m in msgs)

    def test_set_fed_loop_accumulation_in_helper_fires(self):
        kernel = (
            "from repro.eval.driver import acc\n\n"
            "def fold_kernel(values):\n"
            "    return acc(values)\n"
        )
        helper = (
            "def acc(values):\n"
            "    total = 0.0\n"
            "    for x in set(values):\n"
            "        total += x\n"
            "    return total\n"
        )
        findings = lint_sources([(PARITY, kernel), (LIB, helper)])
        msgs = _messages(findings, "REP018")
        assert msgs
        assert any("canonical order" in m for m in msgs)

    def test_fsum_outside_seam_list_fires(self):
        kernel = (
            "import math\n\n"
            "def fold_kernel(values):\n"
            "    return math.fsum(values)\n"
        )
        findings = lint_sources([(PARITY, kernel)])
        msgs = _messages(findings, "REP018")
        assert msgs
        assert any("fsum" in m for m in msgs)

    def test_unreachable_helper_is_out_of_scope(self):
        # same unstable accumulation, but nothing in a parity file
        # calls it — REP006 may comment per-file; REP018 must not
        helper = (
            "def acc(values):\n"
            "    total = 0.0\n"
            "    for x in set(values):\n"
            "        total += x\n"
            "    return total\n"
        )
        findings = lint_sources([(LIB, helper)])
        assert _messages(findings, "REP018") == []

    def test_sorted_reduction_is_clean(self):
        kernel = (
            "import numpy as np\n\n"
            "def fold_kernel(values):\n"
            "    vals = sorted({float(x) for x in values})\n"
            "    return float(np.sum(vals))\n"
        )
        findings = lint_sources([(PARITY, kernel)])
        assert _messages(findings, "REP018") == []


# ----------------------------------------------------------------------
# REP019 — the exact/tolerance kernel-tier boundary
# ----------------------------------------------------------------------


class TestRep019:
    def test_unmarked_calling_marked_fires(self):
        lib = (
            f"def _relaxed(x):  {MARKER}[ulp=2]\n"
            "    return x\n\n"
            "def run(x):\n"
            "    return _relaxed(x)\n"
        )
        findings = lint_sources([(LIB, lib)])
        msgs = _messages(findings, "REP019")
        assert msgs
        assert any("ulp=2" in m and "kernel_tier" in m for m in msgs)

    def test_marked_calling_marked_is_clean(self):
        lib = (
            f"def _relaxed(x):  {MARKER}[ulp=2]\n"
            "    return x\n\n"
            f"def _also_relaxed(x):  {MARKER}[ulp=4]\n"
            "    return _relaxed(x)\n"
        )
        findings = lint_sources([(LIB, lib)])
        assert _messages(findings, "REP019") == []

    def test_kernel_tier_seam_may_call_marked(self):
        lib = (
            f"def _relaxed(x):  {MARKER}[ulp=2]\n"
            "    return x\n"
        )
        seam = (
            "from repro.eval.driver import _relaxed\n\n"
            "def resolve(x):\n"
            "    return _relaxed(x)\n"
        )
        findings = lint_sources([(LIB, lib), (SEAM, seam)])
        assert _messages(findings, "REP019") == []

    def test_marker_inside_parity_file_fires(self):
        kernel = (
            f"def fold_kernel(t):  {MARKER}[ulp=1]\n"
            "    return t\n"
        )
        findings = lint_sources([(PARITY, kernel)])
        msgs = _messages(findings, "REP019")
        assert msgs
        assert any("parity-kernel file" in m for m in msgs)

    def test_malformed_marker_is_an_orphan(self):
        lib = (
            f"def _relaxed(x):  {MARKER}[ulp=two]\n"
            "    return x\n"
        )
        findings = lint_sources([(LIB, lib)])
        msgs = _messages(findings, "REP019")
        assert msgs
        assert any("malformed" in m for m in msgs)

    def test_marker_off_signature_is_an_orphan(self):
        lib = (
            "def _relaxed(x):\n"
            f"    return x  {MARKER}[ulp=2]\n"
        )
        findings = lint_sources([(LIB, lib)])
        msgs = _messages(findings, "REP019")
        assert msgs
        assert any("def signature" in m for m in msgs)

    def test_prose_mention_in_docstring_is_inert(self):
        lib = (
            "def helper(x):\n"
            f'    """Docs may explain the {MARKER}[ulp=N] grammar."""\n'
            "    return x\n"
        )
        findings = lint_sources([(LIB, lib)])
        assert _messages(findings, "REP019") == []

    def test_reference_handoff_fires(self):
        lib = (
            f"def _relaxed(x):  {MARKER}[ulp=2]\n"
            "    return x\n\n"
            "def pick(submit):\n"
            "    return submit(_relaxed)\n"
        )
        findings = lint_sources([(LIB, lib)])
        msgs = _messages(findings, "REP019")
        assert msgs
        assert any("reference" in m for m in msgs)


# ----------------------------------------------------------------------
# Real-tree canaries: the committed-empty baseline is load-bearing
# ----------------------------------------------------------------------


def _real_tree():
    files = []
    for path in iter_python_files([str(REPO_ROOT / "src")]):
        text = Path(path).read_text(encoding="utf-8")
        files.append((str(Path(path).relative_to(REPO_ROOT)), text))
    return files


@pytest.fixture(scope="module")
def tree():
    return _real_tree()


def _patched(tree, rel_path, old, new, count=1):
    out = []
    hit = False
    for path, text in tree:
        if path == rel_path:
            assert old in text, f"canary anchor vanished from {rel_path}"
            text = text.replace(old, new, count)
            hit = True
        out.append((path, text))
    assert hit, f"{rel_path} not in tree"
    return out


class TestRealTreeCanaries:
    def test_src_tree_is_clean(self, tree):
        assert lint_sources(tree) == []

    def test_dropping_prepare_light_blessing_fires_rep017(self, tree):
        patched = _patched(
            tree,
            "src/repro/core/batch.py",
            "t=t.astype(np.float64)",
            "t=t",
        )
        findings = lint_sources(patched)
        msgs = _messages(findings, "REP017")
        assert msgs, "deleting the _prepare_light blessing must fire REP017"
        assert any("identify_batch" in m for m in msgs)

    def test_set_fed_accumulation_in_kernel_fires_rep018(self, tree):
        extra = (
            "\n\n"
            "def _canary_profile_mean(xs):\n"
            "    vals = list({float(x) for x in xs})\n"
            "    acc = 0.0\n"
            "    for x in vals:\n"
            "        acc += x\n"
            "    return acc / max(len(vals), 1)\n"
        )
        patched = [
            (p, t + extra if p == "src/repro/core/superposition.py" else t)
            for p, t in tree
        ]
        findings = lint_sources(patched)
        assert _messages(findings, "REP018"), (
            "a set-fed accumulation inside a parity file must fire REP018"
        )

    def test_unmarked_call_into_tolerance_tier_fires_rep019(self, tree):
        extra = (
            "\n\n"
            "def _canary_relaxed_profile(t, v, cycle_s, anchor):\n"
            "    from repro.core.kernel_tier import _cycle_profile_tolerant\n"
            "    return _cycle_profile_tolerant(t, v, cycle_s, anchor)\n"
        )
        patched = [
            (p, t + extra if p == "src/repro/core/pipeline.py" else t)
            for p, t in tree
        ]
        findings = lint_sources(patched)
        msgs = _messages(findings, "REP019")
        assert msgs, "unmarked code calling a tolerance kernel must fire REP019"
        assert any("_cycle_profile_tolerant" in m for m in msgs)
