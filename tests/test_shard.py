"""Zero-copy sharded backend: parity, balance, fallback, telemetry.

The shard backend's contract mirrors the batched one it decomposes:
bit-for-bit estimate parity on any key subset, typed per-light failure
containment, plus two claims of its own — zero column bytes shipped per
worker (the store crosses the pool boundary as a metadata handle) and
row-count-balanced shards.  Everything here runs ``max_workers=1`` (the
in-process dispatch path, same semantics); real pools are exercised in
``tests/test_batch_parity.py``'s slow tier.
"""

import json

import pytest

import repro.core.shard as shard_mod
from repro.core import identify_many
from repro.core.batch import identify_batch
from repro.core.shard import balanced_shards, identify_shard
from repro.obs import RunReport, ShardStats
from repro.stream import StreamSession
from repro.trace.store import PartitionStore

from tests.test_batch_parity import _assert_parity, _est_tuple, _poisoned_city


class TestShardParity:
    def test_matches_batched_bitwise(self, partitions):
        ref = identify_many(partitions, 5400.0, backend="batched")
        out = identify_many(partitions, 5400.0, backend="shard", max_workers=1)
        assert len(ref[0]) > 0, "fixture city must identify some lights"
        _assert_parity(ref, out, "shard")

    def test_key_subset_matches_batched_subset(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        subset = sorted(partitions)[:3]
        b_est, b_fail, _ = identify_batch(store, 5400.0, keys=subset)
        s_est, s_fail, s_tels, _ = identify_shard(
            PartitionStore.from_partitions(partitions), 5400.0,
            keys=subset, max_workers=1,
        )
        assert sorted(s_est) == sorted(b_est)
        assert sorted(s_fail) == sorted(b_fail)
        assert sorted(s_tels) == sorted(subset)
        for key in b_est:
            assert _est_tuple(s_est[key]) == _est_tuple(b_est[key]), key

    def test_poisoned_city_parity_and_containment(self, partitions):
        city, bad_key, _dead_key = _poisoned_city(partitions)
        ref = identify_many(city, 5400.0, serial=True)
        out = identify_many(city, 5400.0, backend="shard", max_workers=1)
        _assert_parity(ref, out, "shard/poisoned")
        assert out[1][bad_key].error_type == "ValueError"
        assert len(out[0]) + len(out[1]) == len(city)

    def test_empty_key_set(self, partitions):
        est, fail, tels, stats = identify_shard(
            partitions, 5400.0, keys=[], max_workers=1
        )
        assert est == {} and fail == {} and tels == {} and stats == []


class TestShardFaultContainment:
    def test_dead_shard_reruns_in_parent(self, partitions, monkeypatch):
        """A shard dying at the pool boundary falls back to in-parent
        ``identify_batch`` over the same keys — parity survives."""

        def dead_worker(job):
            raise RuntimeError("worker lost")

        monkeypatch.setattr(shard_mod, "_identify_shard_worker", dead_worker)
        ref = identify_many(partitions, 5400.0, backend="batched")
        est, fail, tels, stats = identify_shard(partitions, 5400.0, max_workers=1)
        _assert_parity(ref, (est, fail), "shard/fallback")
        assert stats, "fallback shards still report ShardStats"
        assert all(s.wall_s >= 0.0 for s in stats)


class TestZeroCopyTelemetry:
    def test_zero_column_bytes_shipped(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        est, fail, tels, stats = identify_shard(store, 5400.0, max_workers=1)
        assert stats
        handle = stats[0].common_bytes
        assert all(s.common_bytes == handle for s in stats)
        # the handle is metadata-sized; the columns it stands for are not
        assert handle < 64 * 1024
        assert store.columns_nbytes > 10 * handle
        # shard accounting covers the whole city exactly once
        assert sum(s.n_lights for s in stats) == len(store)
        assert sum(s.n_records for s in stats) == store.n_records
        assert sum(s.n_ok for s in stats) == len(est)
        assert sum(s.n_failed for s in stats) == len(fail)
        assert [s.shard_index for s in stats] == list(range(len(stats)))

    def test_store_restored_in_memory_after_call(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        identify_shard(store, 5400.0, max_workers=1)
        assert store._mmap_dir is None, "the spill window closes with the call"

    def test_shard_stats_fold_into_report(self, partitions):
        report = RunReport()
        identify_many(
            partitions, 5400.0, backend="shard", max_workers=1, report=report
        )
        assert report.shards
        assert report.n_lights == len(partitions)
        doc = report.to_dict()
        assert "shards" in doc
        clone = RunReport.from_dict(json.loads(report.to_json()))
        assert clone.shards == report.shards
        assert all(isinstance(s, ShardStats) for s in clone.shards)

    def test_non_shard_report_has_no_shards_section(self, partitions):
        report = RunReport()
        identify_many(
            partitions, 5400.0, backend="batched", report=report
        )
        assert "shards" not in report.to_dict(), "v1 document shape is preserved"


class TestBalancedShards:
    def test_partitions_keys_exactly_and_in_order(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        keys = sorted(store)
        shards = balanced_shards(store, keys, 3)
        assert [k for shard in shards for k in shard] == keys
        assert all(shard for shard in shards)

    def test_more_shards_than_keys_degrades_to_singletons(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        keys = sorted(store)
        shards = balanced_shards(store, keys, 10 * len(keys))
        assert len(shards) == len(keys)
        assert all(len(shard) == 1 for shard in shards)

    def test_row_weights_balance_the_split(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        keys = sorted(store)
        shards = balanced_shards(store, keys, 2)
        loads = [
            sum(store.light_n_records(k) for k in shard) for shard in shards
        ]
        assert max(loads) <= 2 * min(loads), f"skewed split: {loads}"

    def test_empty_keys(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        assert balanced_shards(store, [], 4) == []


class TestSessionShardBackend:
    def test_session_shard_matches_batched_session(self, partitions):
        batched = StreamSession(store=partitions)
        sharded = StreamSession(store=partitions, backend="shard", max_workers=1)
        ref = batched.evaluate(5400.0)
        out = sharded.evaluate(5400.0)
        _assert_parity(ref, out, "session/shard")

    def test_shard_session_reports_shard_stats(self, partitions):
        report = RunReport()
        session = StreamSession(
            store=partitions, backend="shard", max_workers=1, report=report
        )
        session.evaluate(5400.0)
        assert report.shards

    def test_unknown_session_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            StreamSession(backend="gpu")
