"""Shared fixtures: one small simulated city reused across test modules.

Simulation + trace generation is the expensive part of the stack, so the
heavyweight artifacts are session-scoped; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import simulate_and_partition
from repro.scenario import small_scenario


@pytest.fixture(scope="session")
def city():
    """The canonical 2×2 test city (known ground truth)."""
    return small_scenario(cycle_s=98.0, ns_red_s=39.0, rate_per_hour=400.0, seed=0)


@pytest.fixture(scope="session")
def city_data(city):
    """(trace, partitions) for 1.5 simulated hours of the test city."""
    trace, parts = simulate_and_partition(city, 0.0, 5400.0, seed=7, serial=False)
    return trace, parts


@pytest.fixture(scope="session")
def trace(city_data):
    """Raw Table I trace of the test city."""
    return city_data[0]


@pytest.fixture(scope="session")
def partitions(city_data):
    """Per-light partitions of the test city."""
    return city_data[1]


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
