"""Shared fixtures: one small simulated city reused across test modules.

Simulation + trace generation is the expensive part of the stack, so the
heavyweight artifacts are session-scoped; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import simulate_and_partition
from repro.scenario import small_scenario


@pytest.fixture(scope="session")
def city():
    """The canonical 2×2 test city (known ground truth)."""
    return small_scenario(cycle_s=98.0, ns_red_s=39.0, rate_per_hour=400.0, seed=0)


def _fingerprint(trace, parts):
    """Cheap content checksum of the shared artifacts (read-only guard)."""
    total = float(np.sum(trace.speed_kmh)) + float(np.sum(trace.lon))
    for key in sorted(parts):
        p = parts[key]
        total += float(np.sum(p.trace.speed_kmh)) + float(np.sum(p.trace.t))
    return total


@pytest.fixture(scope="session")
def city_data(city):
    """(trace, partitions) for 1.5 simulated hours of the test city."""
    trace, parts = simulate_and_partition(city, 0.0, 5400.0, seed=7, serial=False)
    before = _fingerprint(trace, parts)
    yield trace, parts
    assert _fingerprint(trace, parts) == before, (
        "a test mutated the session-scoped city fixture in place "
        "(write-through-a-view bug); copy before writing"
    )


@pytest.fixture(scope="session")
def trace(city_data):
    """Raw Table I trace of the test city."""
    return city_data[0]


@pytest.fixture(scope="session")
def partitions(city_data):
    """Per-light partitions of the test city."""
    return city_data[1]


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _guard_global_numpy_rng():
    """Fail any test that mutates the legacy global NumPy RNG.

    Library and test code must draw randomness from explicit
    ``Generator`` objects (the ``rng`` fixture, ``as_rng``); touching
    ``np.random.*`` module-level functions reorders every later draw
    and is the classic source of order-dependent flakes.
    """
    before = np.random.get_state()
    yield
    after = np.random.get_state()
    same = before[0] == after[0] and all(
        np.array_equal(b, a) for b, a in zip(before[1:], after[1:])
    )
    assert same, (
        "test mutated the global NumPy RNG state; use an explicit "
        "np.random.Generator (e.g. the `rng` fixture) instead"
    )
