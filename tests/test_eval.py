"""Unit tests for the evaluation harness (§VIII.A)."""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.signal_types import (
    ChangePointEstimate,
    CycleEstimate,
    RedEstimate,
    ScheduleEstimate,
)
from repro.eval.cdf import cdf_at, empirical_cdf, fraction_within, summarize_errors
from repro.eval.errors import compare
from repro.eval.harness import evaluate_at_times
from repro.lights.schedule import LightSchedule


def make_estimate(cycle=98.0, red=39.0, offset=10.0):
    sched = LightSchedule(cycle, red, offset)
    return ScheduleEstimate(
        intersection_id=0,
        approach="NS",
        at_time=1800.0,
        schedule=sched,
        cycle=CycleEstimate(cycle, 18, 100.0, 5.0, 200),
        red=RedEstimate(red, 2, np.arange(6) * 20.0, np.ones(5), 50, 3),
        change=ChangePointEstimate(offset % cycle, (offset + red) % cycle,
                                   np.zeros(98), np.zeros(98)),
    )


class TestCompare:
    def test_exact_match_zero_errors(self):
        truth = LightSchedule(98.0, 39.0, 10.0)
        err = compare(make_estimate(), truth)
        assert err.cycle_s == 0.0 and err.red_s == 0.0 and err.change_s == pytest.approx(0.0)
        assert err.within(0.1)

    def test_cycle_and_red_errors_signed(self):
        truth = LightSchedule(100.0, 42.0, 10.0)
        err = compare(make_estimate(cycle=98.0, red=39.0), truth)
        assert err.cycle_s == pytest.approx(-2.0)
        assert err.red_s == pytest.approx(-3.0)

    def test_change_error_is_circular(self):
        # estimate's red->green at 49; truth's at 49 + 96 ≡ 47 (mod 98)
        truth = LightSchedule(98.0, 39.0, 10.0 + 96.0)
        err = compare(make_estimate(), truth)
        assert abs(err.change_s) == pytest.approx(2.0)

    def test_offset_whole_cycles_ignored(self):
        truth = LightSchedule(98.0, 39.0, 10.0 + 3 * 98.0)
        err = compare(make_estimate(), truth)
        assert err.change_s == pytest.approx(0.0)

    def test_row_and_max_abs(self):
        truth = LightSchedule(98.0, 45.0, 10.0)
        err = compare(make_estimate(), truth)
        assert err.max_abs == pytest.approx(6.0)
        assert "dRed" in err.row()


class TestCDF:
    def test_empirical_cdf(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_nans_dropped(self):
        x, _ = empirical_cdf([1.0, np.nan])
        assert x.size == 1

    def test_fraction_within(self):
        assert fraction_within([1.0, -2.0, 5.0, np.nan], 2.0) == pytest.approx(0.5)

    def test_cdf_at(self):
        out = cdf_at([-1.0, 2.0, 3.0], [0.0, 2.5, 10.0])
        np.testing.assert_allclose(out, [0.0, 2 / 3, 1.0])

    def test_summarize(self):
        s = summarize_errors([1.0, 2.0, 30.0], "cycle")
        assert "cycle" in s and "median" in s
        assert summarize_errors([], "none") == "none: no data"


class TestEvaluateAtTimes:
    def test_full_sweep(self, partitions, city):
        def truth_fn(iid, app, t):
            return city.truth_at(iid, app, t)

        res = evaluate_at_times(partitions, truth_fn, [3600.0, 5400.0], serial=True)
        assert len(res) == 2 * len(partitions)
        assert res.n_failures < len(res)
        assert res.cycle_errors.shape == (len(res),)
        ok = res.cycle_errors[~np.isnan(res.cycle_errors)]
        assert np.median(np.abs(ok)) < 5.0

    def test_for_key_filter(self, partitions, city):
        def truth_fn(iid, app, t):
            return city.truth_at(iid, app, t)

        res = evaluate_at_times(partitions, truth_fn, [5400.0], serial=True)
        key = next(iter(sorted(partitions)))
        sub = res.for_key(key)
        assert all(s.key == key for s in sub.samples)
        assert len(sub) == 1


@pytest.mark.slow
class TestFusedSimulatePath:
    def test_fused_deterministic_across_workers(self):
        from repro.scenario import small_scenario
        from repro.eval import simulate_and_partition

        scn = small_scenario(rate_per_hour=300.0)
        a, _ = simulate_and_partition(scn, 0.0, 900.0, seed=4, serial=True, fused=True)
        b, _ = simulate_and_partition(scn, 0.0, 900.0, seed=4, max_workers=3, fused=True)
        np.testing.assert_array_equal(a.t, b.t)
        np.testing.assert_array_equal(a.taxi_id, b.taxi_id)
        np.testing.assert_allclose(a.lon, b.lon)

    def test_fused_produces_usable_partitions(self):
        from repro.scenario import small_scenario
        from repro.eval import simulate_and_partition
        from repro.core import identify_many

        scn = small_scenario(rate_per_hour=400.0)
        trace, parts = simulate_and_partition(
            scn, 0.0, 5400.0, seed=11, serial=True, fused=True
        )
        assert len(trace) > 1000 and len(parts) == 8
        ests, _ = identify_many(parts, 5400.0, serial=True)
        good = sum(1 for e in ests.values() if abs(e.cycle_s - 98.0) <= 3.0)
        assert good >= 5
