"""Golden-fixture regression: pipeline outputs vs committed snapshots.

The committed fixtures in ``tests/golden/`` pin the **exact** float64
estimates of three seeded scenarios.  Comparison is pure equality on the
JSON-round-tripped payload — IEEE-754 doubles survive the shortest-repr
round trip bit-for-bit, so any numeric change anywhere in the stack
shows up as a hard diff here.  Regenerate deliberately with
``python -m tests.golden.regen`` (never from inside a test).
"""

import json

import pytest

from tests.golden.scenarios import (
    ALL_GOLDEN_SCENARIOS,
    build_partitions,
    compute_payload,
    load_fixture,
)

_BY_NAME = {spec.name: spec for spec in ALL_GOLDEN_SCENARIOS}


def _diff(expected, actual):
    """Human-readable first-differences between two fixture payloads."""
    lines = []
    for section in ("estimates", "failures"):
        exp, act = expected[section], actual[section]
        for key in sorted(set(exp) | set(act)):
            if exp.get(key) != act.get(key):
                lines.append(f"{section}[{key}]: {exp.get(key)} != {act.get(key)}")
    return "\n".join(lines) or "payloads differ outside estimates/failures"


@pytest.fixture(scope="module")
def golden_partitions(partitions):
    """Partitions per scenario; ``a`` reuses the session city fixture."""

    def build(spec):
        if spec.name == "a":
            return partitions
        return build_partitions(spec)

    return build


class TestGoldenFixtures:
    def test_all_fixtures_exist(self):
        for spec in ALL_GOLDEN_SCENARIOS:
            assert spec.path.exists(), (
                f"missing fixture {spec.path}; run "
                "`PYTHONPATH=src python -m tests.golden.regen`"
            )

    @pytest.mark.parametrize("name", sorted(_BY_NAME))
    def test_pipeline_matches_fixture_exactly(self, name, golden_partitions):
        spec = _BY_NAME[name]
        expected = load_fixture(spec)
        actual = json.loads(json.dumps(compute_payload(
            spec, golden_partitions(spec)
        )))
        assert expected["scenario"] == actual["scenario"], (
            "scenario parameters drifted from the committed fixture"
        )
        assert expected == actual, _diff(expected, actual)

    @pytest.mark.parametrize("name", sorted(_BY_NAME))
    def test_stream_backend_matches_fixture_exactly(self, name, golden_partitions):
        """The replay-parity contract extends to the committed numbers."""
        from repro.core import identify_many

        spec = _BY_NAME[name]
        expected = load_fixture(spec)
        parts = golden_partitions(spec)
        estimates, failures = identify_many(
            parts, spec.at_time, backend="stream"
        )
        got = {
            f"{iid}:{app}": {
                "cycle_s": est.cycle_s,
                "red_s": est.red_s,
                "green_s": est.green_s,
                "offset_s": est.schedule.offset_s,
                "red_to_green_s": est.change.red_to_green_s,
                "green_to_red_s": est.change.green_to_red_s,
            }
            for (iid, app), est in estimates.items()
        }
        assert json.loads(json.dumps(got)) == expected["estimates"]
        assert sorted(f"{i}:{a}" for i, a in failures) == sorted(
            expected["failures"]
        )

    @pytest.mark.parametrize("name", sorted(_BY_NAME))
    def test_shard_backend_matches_fixture_exactly(self, name, golden_partitions):
        """Zero-copy sharding must not move a single committed bit."""
        from repro.core import identify_many

        spec = _BY_NAME[name]
        expected = load_fixture(spec)
        parts = golden_partitions(spec)
        estimates, failures = identify_many(
            parts, spec.at_time, backend="shard", max_workers=1
        )
        got = {
            f"{iid}:{app}": {
                "cycle_s": est.cycle_s,
                "red_s": est.red_s,
                "green_s": est.green_s,
                "offset_s": est.schedule.offset_s,
                "red_to_green_s": est.change.red_to_green_s,
                "green_to_red_s": est.change.green_to_red_s,
            }
            for (iid, app), est in estimates.items()
        }
        assert json.loads(json.dumps(got)) == expected["estimates"]
        assert sorted(f"{i}:{a}" for i, a in failures) == sorted(
            expected["failures"]
        )

    def test_fixture_floats_roundtrip_exactly(self):
        """The storage format itself cannot lose precision."""
        for spec in ALL_GOLDEN_SCENARIOS:
            payload = load_fixture(spec)
            assert json.loads(json.dumps(payload)) == payload
