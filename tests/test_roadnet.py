"""Unit tests for repro.network.roadnet."""

import numpy as np
import pytest

from repro.network.roadnet import Approach, Intersection, RoadNetwork, Segment, grid_network


class TestApproach:
    @pytest.mark.parametrize("h,expected", [
        (0.0, "NS"), (180.0, "NS"), (44.0, "NS"), (316.0, "NS"),
        (90.0, "EW"), (270.0, "EW"), (46.0, "EW"), (134.0, "EW"),
    ])
    def test_classification(self, h, expected):
        assert Approach.of_heading(h) == expected


class TestSegment:
    def test_length_and_heading(self):
        s = Segment(0, 0, 1, ax=0, ay=0, bx=0, by=500)
        assert s.length == pytest.approx(500.0)
        assert s.heading == pytest.approx(0.0)  # due north
        assert s.approach == Approach.NS

    def test_point_at_stopline(self):
        s = Segment(0, 0, 1, ax=0, ay=0, bx=100, by=0)
        assert s.point_at(0.0) == (pytest.approx(100.0), pytest.approx(0.0))

    def test_point_at_upstream(self):
        s = Segment(0, 0, 1, ax=0, ay=0, bx=100, by=0)
        x, y = s.point_at(30.0)
        assert x == pytest.approx(70.0)

    def test_point_at_clamps(self):
        s = Segment(0, 0, 1, ax=0, ay=0, bx=100, by=0)
        assert s.point_at(1e9) == (pytest.approx(0.0), pytest.approx(0.0))


class TestGridNetwork:
    def test_counts(self):
        net = grid_network(3, 2, 500.0)
        assert len(net.intersections) == 6
        # edges: horizontal 2*2=4, vertical 3*1=3 -> 7 roads, 14 directed
        assert len(net.segments) == 14

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)

    def test_incoming_outgoing_consistency(self):
        net = grid_network(3, 3)
        for node in net.intersections:
            for seg in net.incoming(node.id):
                assert seg.to_id == node.id
            for seg in net.outgoing(node.id):
                assert seg.from_id == node.id

    def test_corner_has_two_neighbors(self):
        net = grid_network(3, 3)
        assert sorted(net.neighbors(0)) == [1, 3]

    def test_center_has_four_neighbors(self):
        net = grid_network(3, 3)
        assert len(net.neighbors(4)) == 4

    def test_segment_between(self):
        net = grid_network(2, 2)
        seg = net.segment_between(0, 1)
        assert seg is not None and seg.from_id == 0 and seg.to_id == 1
        assert net.segment_between(0, 3) is None  # diagonal

    def test_approach_groups_cover_all_incoming(self):
        net = grid_network(3, 3)
        groups = net.approaches(4)
        total = len(groups[Approach.NS]) + len(groups[Approach.EW])
        assert total == len(net.incoming(4)) == 4

    def test_geometry_tables_match_segments(self):
        net = grid_network(2, 3, 250.0)
        for seg in net.segments:
            assert net.seg_ax[seg.id] == seg.ax
            assert net.seg_to[seg.id] == seg.to_id
            assert net.seg_heading[seg.id] == pytest.approx(seg.heading)

    def test_to_networkx(self):
        net = grid_network(2, 2, 100.0)
        g = net.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == len(net.segments)
        assert g[0][1]["length"] == pytest.approx(100.0)


class TestValidation:
    def test_nondense_intersection_ids_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork([Intersection(1, 0, 0)], [])

    def test_segment_referencing_unknown_node_rejected(self):
        nodes = [Intersection(0, 0, 0), Intersection(1, 100, 0)]
        segs = [Segment(0, 0, 7, 0, 0, 100, 0)]
        with pytest.raises(ValueError):
            RoadNetwork(nodes, segs)

    def test_nondense_segment_ids_rejected(self):
        nodes = [Intersection(0, 0, 0), Intersection(1, 100, 0)]
        segs = [Segment(5, 0, 1, 0, 0, 100, 0)]
        with pytest.raises(ValueError):
            RoadNetwork(nodes, segs)

    def test_signalized_filter(self):
        nodes = [Intersection(0, 0, 0, signalized=True), Intersection(1, 1, 0, signalized=False)]
        net = RoadNetwork(nodes, [])
        assert [n.id for n in net.signalized_intersections()] == [0]
