"""Replay-parity oracle: streamed ingest ≡ one-shot batched, bit-for-bit.

The binding contract of the streaming backend (see
:mod:`repro.stream.session`): for traces with unique per-light report
timestamps, ingesting **any** permutation/partitioning of a scenario's
records chunk-by-chunk must leave the session in a state whose estimates
are bit-for-bit identical to the one-shot batched backend over the same
records — same estimate numbers, same failure stages/types/messages.

These are metamorphic tests: the batched run is the oracle, and many
seeded random chunkings (random chunk count, random per-row chunk
assignment, rows shuffled within each chunk) are the transformed inputs.
"""

import numpy as np
import pytest

from repro.core import identify_many
from repro.matching.partition import LightPartition
from repro.scenario import synthetic_lights, synthetic_partitions
from repro.stream import StreamSession, split_by_time, split_random

from tests.test_batch_parity import _assert_parity, _est_tuple, _poisoned_city

#: Seeded draws for the metamorphic sweep (ISSUE: at least 20).
PARITY_SEEDS = list(range(24))


def _stream_replay(partitions, chunks, at_time, *, refresh_each=False):
    """Ingest ``chunks`` in order; return (estimates, failures) at ``at_time``."""
    session = StreamSession(monitor=False)
    for chunk in chunks:
        session.ingest(chunk, at_time=at_time, refresh=refresh_each)
    return session.evaluate(at_time)


@pytest.fixture(scope="module")
def synthetic_city():
    """A 16-light closed-form city (fast, no simulator involved)."""
    lights = synthetic_lights(8, seed=11)
    return synthetic_partitions(lights, 0.0, 5400.0, seed=11)


class TestReplayParityOracle:
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_random_chunking_matches_batched(self, partitions, seed):
        """The oracle itself: ≥20 seeded random permutations/partitions."""
        rng = np.random.default_rng(seed)
        n_chunks = int(rng.integers(1, 8))
        chunks = split_random(partitions, n_chunks, rng=rng)
        ref = identify_many(partitions, 5400.0, backend="batched")
        out = _stream_replay(partitions, chunks, 5400.0)
        _assert_parity(ref, out, f"stream/random seed={seed}")

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_chunking_synthetic_city(self, synthetic_city, seed):
        rng = np.random.default_rng(100 + seed)
        chunks = split_random(synthetic_city, int(rng.integers(2, 10)), rng=rng)
        ref = identify_many(synthetic_city, 5400.0, backend="batched")
        assert len(ref[0]) > 0
        out = _stream_replay(synthetic_city, chunks, 5400.0)
        _assert_parity(ref, out, f"stream/synthetic seed={seed}")

    def test_time_sliced_replay_with_intermediate_refreshes(self, partitions):
        """Refreshing after every chunk must not disturb the final state."""
        edges = list(np.linspace(0.0, 5401.0, 7))
        chunks = split_by_time(partitions, edges)
        ref = identify_many(partitions, 5400.0, backend="batched")
        out = _stream_replay(partitions, chunks, 5400.0, refresh_each=True)
        _assert_parity(ref, out, "stream/time-sliced+refresh")

    def test_single_chunk_equals_batched(self, partitions):
        ref = identify_many(partitions, 5400.0, backend="batched")
        out = _stream_replay(partitions, [dict(partitions)], 5400.0)
        _assert_parity(ref, out, "stream/one-chunk")

    def test_chunk_order_against_serial_reference(self, partitions):
        """Transitivity spot-check: the stream also matches plain serial."""
        rng = np.random.default_rng(7)
        chunks = split_random(partitions, 4, rng=rng)
        ref = identify_many(partitions, 5400.0, serial=True)
        out = _stream_replay(partitions, chunks, 5400.0)
        _assert_parity(ref, out, "stream/vs-serial")


class TestPoisonedReplayParity:
    def test_poisoned_chunk_keeps_parity_for_unaffected_lights(self, partitions):
        """A corrupt chunk fails its light identically to the batched run
        and leaves every other light bit-for-bit intact."""
        city, bad_key, dead_key = _poisoned_city(partitions)
        ref = identify_many(city, 5400.0, backend="batched")
        assert bad_key in ref[1] and dead_key in ref[1]

        # the corrupt partition cannot be row-sliced (that is the point),
        # so it arrives whole in one chunk while everything else streams
        rng = np.random.default_rng(13)
        healthy = {k: v for k, v in city.items() if k != bad_key}
        chunks = split_random(healthy, 5, rng=rng)
        chunks[2][bad_key] = city[bad_key]
        out = _stream_replay(city, chunks, 5400.0, refresh_each=True)
        _assert_parity(ref, out, "stream/poisoned")

    def test_late_poison_does_not_disturb_healthy_lights(self, partitions):
        """Healthy first, then a poisoned chunk arrives for one light."""
        ref = identify_many(partitions, 5400.0, backend="batched")
        session = StreamSession(monitor=False)
        session.ingest(dict(partitions), at_time=5400.0)
        bad_key = sorted(partitions)[0]
        p = partitions[bad_key]
        session.ingest(
            {
                bad_key: LightPartition(
                    p.intersection_id, p.approach, p.trace,
                    p.segment_id, np.empty(3),
                )
            },
            at_time=5400.0,
        )
        est, fail = session.evaluate(5400.0)
        assert bad_key in fail, "the poisoned light must now fail"
        partner = (bad_key[0], "EW" if bad_key[1] == "NS" else "NS")
        for key, val in ref[0].items():
            if key in (bad_key, partner):
                continue  # partner re-runs against the quarantined data
            assert _est_tuple(est[key]) == _est_tuple(val), key


class TestUniqueTimestampPrecondition:
    def test_fixture_city_has_unique_per_light_timestamps(self, partitions):
        """The contract's precondition holds for generated traces."""
        for key, part in partitions.items():
            t = np.asarray(part.trace.t)
            assert len(np.unique(t)) == len(t), key

    def test_synthetic_city_has_unique_per_light_timestamps(self, synthetic_city):
        for key, part in synthetic_city.items():
            t = np.asarray(part.trace.t)
            assert len(np.unique(t)) == len(t), key


@pytest.fixture(scope="module")
def adaptive_synthetic_city():
    """Demand-responsive closed-form city (same spec as the batch-parity
    and golden adaptive scenarios)."""
    from repro.scenario import adaptive_synthetic_lights

    lights = adaptive_synthetic_lights(3, alpha=0.6, kind="gap", seed=5)
    return synthetic_partitions(lights, 0.0, 5400.0, seed=5)


class TestAdaptiveReplayParity:
    """The replay-parity oracle extends to adaptive traces: any chunking
    of a demand-responsive city converges bit-for-bit to batched."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_chunking_adaptive_city(self, adaptive_synthetic_city, seed):
        rng = np.random.default_rng(200 + seed)
        chunks = split_random(
            adaptive_synthetic_city, int(rng.integers(2, 10)), rng=rng
        )
        ref = identify_many(adaptive_synthetic_city, 5400.0, backend="batched")
        assert len(ref[0]) > 0
        out = _stream_replay(adaptive_synthetic_city, chunks, 5400.0)
        _assert_parity(ref, out, f"stream/adaptive seed={seed}")

    def test_adaptive_city_has_unique_per_light_timestamps(
        self, adaptive_synthetic_city
    ):
        """The order-independence precondition survives adaptive plans."""
        for key, part in adaptive_synthetic_city.items():
            t = np.asarray(part.trace.t)
            assert len(np.unique(t)) == len(t), key
