"""PartitionStore unit tests: the quarantine path and per-light caches.

The parity suite (``test_batch_parity``) exercises the store through
the identification backends; these tests pin the store's own contract —
that probing never raises, that quarantined objects round-trip
untouched, and that the per-light derived products (partition views,
stop events, mean intervals) are computed exactly once per store
lifetime.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.trace.store import PartitionStore, _is_regular, _probe_regular

from tests.test_faults import synth_partition


class _Explosive:
    """A partition-like object whose every attribute access raises.

    Probing arbitrary objects must never sink store construction; this
    is the worst case the ``run_guarded`` seam has to absorb.
    """

    key = (999, "NS")

    @property
    def trace(self):
        raise RuntimeError("boom")


@pytest.fixture
def small_city():
    a = synth_partition(seed=1, iid=10)
    b = synth_partition(seed=2, iid=11)
    return {a.key: a, b.key: b}


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_probe_accepts_healthy_partition(self, small_city):
        part = next(iter(small_city.values()))
        assert _probe_regular(part) is True

    def test_probe_rejects_inconsistent_columns(self, small_city):
        from repro.matching.partition import LightPartition

        p = next(iter(small_city.values()))
        bad = LightPartition(
            p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
        )
        assert _probe_regular(bad) is False

    def test_is_regular_contains_probe_crash(self):
        # _probe_regular raises on this object; _is_regular must not.
        assert _is_regular(_Explosive()) is False

    def test_exploding_object_is_quarantined_not_fatal(self, small_city):
        boom = _Explosive()
        city = dict(small_city)
        city[boom.key] = boom
        store = PartitionStore.from_partitions(city)
        assert not store.is_regular(boom.key)
        assert boom.key in store
        # comes back by identity: the store never re-packs quarantined objects
        assert store.partition(boom.key) is boom
        assert sorted(store) == sorted(city)

    def test_quarantined_rows_excluded_from_columns(self, small_city):
        boom = _Explosive()
        city = dict(small_city)
        city[boom.key] = boom
        store = PartitionStore.from_partitions(city)
        assert store.n_records == sum(len(p.trace) for p in small_city.values())

    def test_quarantined_objects_survive_pickling(self, small_city):
        from repro.matching.partition import LightPartition

        p = next(iter(small_city.values()))
        bad = LightPartition(
            p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
        )
        city = dict(small_city)
        bad_key = (998, "EW")
        city[bad_key] = bad
        store = PartitionStore.from_partitions(city)
        clone = pickle.loads(pickle.dumps(store))
        assert not clone.is_regular(bad_key)
        np.testing.assert_array_equal(
            clone.partition(bad_key).dist_to_stopline_m,
            bad.dist_to_stopline_m,
        )

    def test_get_returns_default_for_missing_key(self, small_city):
        store = PartitionStore.from_partitions(small_city)
        assert store.get((12345, "NS")) is None
        sentinel = object()
        assert store.get((12345, "NS"), sentinel) is sentinel


# ----------------------------------------------------------------------
# Per-light cache reuse
# ----------------------------------------------------------------------
class TestCacheReuse:
    def test_partition_view_is_cached(self, small_city):
        store = PartitionStore.from_partitions(small_city)
        key = sorted(store)[0]
        assert store.partition(key) is store.partition(key)

    def test_stops_extracted_once_per_light(self, small_city, monkeypatch):
        import repro.core.stops as stops_mod

        calls = []
        real = stops_mod.extract_stops

        def counting(partition, *args, **kwargs):
            calls.append(partition)
            return real(partition, *args, **kwargs)

        monkeypatch.setattr(stops_mod, "extract_stops", counting)
        store = PartitionStore.from_partitions(small_city)
        key = sorted(store)[0]
        first = store.stops(key)
        second = store.stops(key)
        assert first is second
        assert len(calls) == 1

    def test_mean_interval_measured_once_per_light(self, small_city, monkeypatch):
        import repro.core.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.measured_mean_interval

        def counting(partition, default_s):
            calls.append(partition)
            return real(partition, default_s)

        monkeypatch.setattr(pipeline_mod, "measured_mean_interval", counting)
        store = PartitionStore.from_partitions(small_city)
        key = sorted(store)[0]
        first = store.mean_interval(key)
        second = store.mean_interval(key)
        assert first == second
        assert len(calls) == 1

    def test_caches_are_per_light_not_global(self, small_city):
        store = PartitionStore.from_partitions(small_city)
        k0, k1 = sorted(store)[:2]
        assert store.stops(k0) is not store.stops(k1)
        assert store.partition(k0) is not store.partition(k1)

    def test_cached_views_match_originals(self, small_city):
        store = PartitionStore.from_partitions(small_city)
        for key, p in small_city.items():
            q = store.partition(key)
            np.testing.assert_array_equal(q.trace.t, p.trace.t)
            np.testing.assert_array_equal(q.trace.speed_kmh, p.trace.speed_kmh)
            np.testing.assert_array_equal(q.segment_id, p.segment_id)
