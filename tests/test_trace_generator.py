"""Unit tests for repro.trace.generator and trace statistics."""

import numpy as np
import pytest

from repro.network.geometry import LocalFrame
from repro.network.roadnet import grid_network
from repro.sim.vehicle import VehicleTrack
from repro.trace.fleet import ReportingPolicy
from repro.trace.generator import OVERSPEED_KMH, TraceGenerator
from repro.trace.gps import GPSErrorModel
from repro.trace.stats import (
    compute_statistics,
    consecutive_pairs,
    records_per_slot,
)


@pytest.fixture(scope="module")
def net():
    return grid_network(2, 2, 500.0)


def make_track(net, segment_id=0, n=120, speed=8.0, t0=0.0):
    seg = net.segments[segment_id]
    dist = np.maximum(seg.length - speed * np.arange(n), 0.0)
    v = np.full(n, speed)
    v[dist == 0.0] = 0.0
    return VehicleTrack(
        vehicle_id=1,
        segment_id=segment_id,
        t=t0 + np.arange(n, dtype=float),
        dist_to_stopline_m=dist,
        speed_mps=v,
        passenger=np.zeros(n, dtype=bool),
    )


class TestSampleTrack:
    def test_positions_near_segment(self, net, rng):
        gen = TraceGenerator(net, gps=GPSErrorModel(sigma_m=2.0, outlier_prob=0.0,
                                                    unavailable_prob=0.0))
        track = make_track(net)
        out = gen.sample_track(track, taxi_id=42, rng=rng)
        assert out is not None and len(out) >= 1
        x, y = net.frame.to_local(out.lon, out.lat)
        seg = net.segments[0]
        from repro.network.geometry import point_segment_distance
        d = point_segment_distance(x, y, seg.ax, seg.ay, seg.bx, seg.by)
        assert np.all(d < 15.0)

    def test_speed_units_kmh(self, net, rng):
        gen = TraceGenerator(net)
        out = gen.sample_track(make_track(net, speed=10.0), 42, rng)
        moving = out.speed_kmh[out.speed_kmh > 0]
        assert np.all(np.abs(moving - 36.0) < 1.0)  # 10 m/s = 36 km/h

    def test_overspeed_flag(self, net, rng):
        gen = TraceGenerator(net)
        out = gen.sample_track(make_track(net, speed=25.0), 42, rng)  # 90 km/h
        assert out.overspeed.any()
        assert (out.speed_kmh[out.overspeed] > OVERSPEED_KMH).all()

    def test_heading_near_segment_heading(self, net, rng):
        gen = TraceGenerator(net, heading_noise_sd_deg=1.0)
        track = make_track(net, segment_id=0)
        seg = net.segments[0]
        out = gen.sample_track(track, 42, rng)
        from repro.network.geometry import heading_difference
        assert np.all(heading_difference(out.heading_deg, seg.heading) < 10.0)

    def test_short_track_may_yield_none(self, net, rng):
        gen = TraceGenerator(net, policy=ReportingPolicy(
            interval_mixture=((60.0, 1.0),), packet_loss_prob=0.0))
        tiny = make_track(net, n=3)
        # 3 s track with a 60 s interval: usually no report
        results = [gen.sample_track(tiny, 1, np.random.default_rng(i)) for i in range(30)]
        assert any(r is None for r in results)


class TestGenerate:
    def test_taxi_ids_distinct_per_track(self, net, rng):
        from repro.sim.engine import SimulationResult
        tracks = {0: [make_track(net), make_track(net)], 2: [make_track(net, 2)]}
        res = SimulationResult(tracks_by_segment=tracks, t0=0.0, t1=200.0)
        gen = TraceGenerator(net)
        out = gen.generate(res, rng)
        assert len(np.unique(out.taxi_id)) == 3

    def test_sorted_by_time(self, net, rng):
        from repro.sim.engine import SimulationResult
        tracks = {0: [make_track(net, t0=100.0), make_track(net, t0=0.0)]}
        res = SimulationResult(tracks_by_segment=tracks, t0=0.0, t1=300.0)
        out = TraceGenerator(net).generate(res, rng)
        assert np.all(np.diff(out.t) >= 0)

    def test_deterministic(self, net):
        from repro.sim.engine import SimulationResult
        res = SimulationResult({0: [make_track(net)]}, 0.0, 200.0)
        gen = TraceGenerator(net)
        a = gen.generate(res, np.random.default_rng(5))
        b = gen.generate(res, np.random.default_rng(5))
        np.testing.assert_array_equal(a.t, b.t)
        np.testing.assert_array_equal(a.lon, b.lon)


class TestStats:
    def test_consecutive_pairs_only_same_taxi(self):
        from repro.trace.records import TraceArrays
        tr = TraceArrays(
            taxi_id=[1, 1, 2, 2, 2],
            t=[0.0, 30.0, 10.0, 25.0, 55.0],
            lon=np.full(5, 114.05),
            lat=np.full(5, 22.54),
            speed_kmh=[0, 10, 20, 30, 40.0],
        )
        pairs = consecutive_pairs(tr)
        assert len(pairs) == 3
        np.testing.assert_allclose(np.sort(pairs.dt_s), [15.0, 30.0, 30.0])

    def test_records_per_slot(self):
        from repro.trace.records import TraceArrays
        tr = TraceArrays(
            taxi_id=[1, 1, 1],
            t=[0.0, 601.0, 86_400.0 + 30.0],  # slots 0, 1, 0 (next day)
            lon=np.full(3, 114.05),
            lat=np.full(3, 22.54),
            speed_kmh=np.zeros(3),
        )
        starts, counts = records_per_slot(tr, slot_s=600.0)
        assert counts[0] == 2 and counts[1] == 1
        assert counts.sum() == 3
        assert starts.shape == counts.shape == (144,)

    def test_records_per_slot_validation(self):
        from repro.trace.records import TraceArrays
        with pytest.raises(ValueError):
            records_per_slot(TraceArrays.empty(), slot_s=7.0)

    def test_compute_statistics_smoke(self, trace):
        st = compute_statistics(trace, LocalFrame())
        assert st.n_records == len(trace)
        assert st.n_taxis > 0
        assert 5.0 <= st.mean_update_interval_s <= 40.0
        assert 0.0 <= st.stationary_fraction <= 1.0
        assert st.row()  # printable
