"""Unit tests for per-light partitioning (§IV)."""

import numpy as np
import pytest

from repro.matching.mapmatch import match_trace
from repro.matching.partition import partition_by_light
from repro.network.roadnet import Approach, Intersection, RoadNetwork, Segment, grid_network
from repro.trace.records import TraceArrays


class TestPartitionStructure:
    def test_every_light_covered(self, trace, city, partitions):
        # 2x2 grid: 4 signalized intersections x 2 approach groups
        assert len(partitions) == 8
        for (iid, app), p in partitions.items():
            assert p.intersection_id == iid and p.approach == app

    def test_partition_contents_match_segment_geometry(self, trace, city, partitions):
        net = city.net
        for key, p in partitions.items():
            iid, app = key
            for sid in np.unique(p.segment_id):
                seg = net.segments[int(sid)]
                assert seg.to_id == iid
                assert seg.approach == app

    def test_traces_time_sorted(self, partitions):
        for p in partitions.values():
            assert np.all(np.diff(p.trace.t) >= 0)

    def test_dist_to_stopline_in_range(self, city, partitions):
        for p in partitions.values():
            assert np.all(p.dist_to_stopline_m >= 0)
            max_len = max(s.length for s in city.net.segments)
            assert np.all(p.dist_to_stopline_m <= max_len + 1e-6)

    def test_no_record_lost_or_duplicated(self, trace, city, partitions):
        m = match_trace(trace, city.net)
        matched, _ = m.matched_only()
        total = sum(len(p) for p in partitions.values())
        assert total == len(matched)

    def test_records_per_hour(self, partitions):
        for p in partitions.values():
            assert p.records_per_hour() > 0

    def test_time_window(self, partitions):
        p = next(iter(partitions.values()))
        w = p.time_window(100.0, 1000.0)
        assert np.all((w.trace.t >= 100.0) & (w.trace.t < 1000.0))
        assert len(w.segment_id) == len(w.trace)
        assert len(w.dist_to_stopline_m) == len(w.trace)


class TestUnsignalized:
    def test_records_at_unsignalized_nodes_dropped(self):
        # one signalized core fed by an unsignalized feeder; trace points
        # near the feeder's own incoming segment must not create a light
        nodes = [
            Intersection(0, 0.0, 0.0, signalized=True),
            Intersection(1, 400.0, 0.0, signalized=False),
        ]
        segs = [
            Segment(0, 1, 0, ax=400.0, ay=0.0, bx=0.0, by=0.0),  # into the light
            Segment(1, 0, 1, ax=0.0, ay=0.0, bx=400.0, by=0.0),  # away from it
        ]
        net = RoadNetwork(nodes, segs)
        lon, lat = net.frame.to_geographic(np.array([200.0, 200.0]), np.zeros(2))
        tr = TraceArrays(
            taxi_id=[1, 2],
            t=[0.0, 1.0],
            lon=lon,
            lat=lat,
            speed_kmh=[10.0, 10.0],
            heading_deg=[270.0, 90.0],  # one per direction
        )
        parts = partition_by_light(match_trace(tr, net), net)
        # only the westbound record (into node 0) survives
        assert list(parts) == [(0, Approach.EW)]
        assert len(parts[(0, Approach.EW)]) == 1

    def test_empty_match_gives_empty_partitions(self):
        net = grid_network(2, 2)
        parts = partition_by_light(match_trace(TraceArrays.empty(), net), net)
        assert parts == {}
