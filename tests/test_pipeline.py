"""Integration tests: the full identification pipeline on the test city."""

import numpy as np
import pytest

from repro._util import circular_diff
from repro.core.pipeline import (
    PipelineConfig,
    identify_light,
    identify_many,
    measured_mean_interval,
)
from repro.core.signal_types import InsufficientDataError, ScheduleEstimate
from repro.network.roadnet import Approach


def truth_for(city, key):
    iid, app = key
    plan = city.plans[iid][0]
    return plan.ns_schedule() if app == Approach.NS else plan.ew_schedule()


class TestIdentifyLight:
    def test_returns_complete_estimate(self, partitions, city):
        key = (0, Approach.EW)
        est = identify_light(
            partitions[key], 5400.0, perpendicular=partitions[(0, Approach.NS)]
        )
        assert isinstance(est, ScheduleEstimate)
        assert est.intersection_id == 0 and est.approach == Approach.EW
        assert est.schedule.red_s < est.schedule.cycle_s
        assert est.cycle.n_samples > 0
        assert est.row()

    def test_cycle_accuracy_on_busy_lights(self, partitions, city):
        hits = 0
        for key, p in sorted(partitions.items()):
            iid, app = key
            perp = partitions.get((iid, "EW" if app == "NS" else "NS"))
            est = identify_light(p, 5400.0, perpendicular=perp)
            if abs(est.cycle_s - 98.0) <= 3.0:
                hits += 1
        assert hits >= 6  # at least 6 of the 8 lights lock the cycle

    def test_red_and_change_reasonable_when_locked(self, partitions, city):
        red_errs, chg_errs = [], []
        for key, p in sorted(partitions.items()):
            iid, app = key
            perp = partitions.get((iid, "EW" if app == "NS" else "NS"))
            est = identify_light(p, 5400.0, perpendicular=perp)
            if abs(est.cycle_s - 98.0) > 3.0:
                continue
            gt = truth_for(city, key)
            red_errs.append(abs(est.red_s - gt.red_s))
            chg_errs.append(abs(float(circular_diff(
                est.schedule.offset_s + est.schedule.red_s,
                gt.offset_s + gt.red_s,
                gt.cycle_s,
            ))))
        assert np.median(red_errs) <= 10.0
        assert np.median(chg_errs) <= 6.0

    def test_insufficient_data_raises(self, partitions):
        p = next(iter(partitions.values()))
        empty = p.time_window(0.0, 1.0)
        with pytest.raises(InsufficientDataError):
            identify_light(empty, 5400.0)

    def test_paper_literal_config_runs(self, partitions):
        from repro.core.cycle import CycleConfig
        cfg = PipelineConfig(
            cycle=CycleConfig(n_candidates=1, refine=False, stop_end_weight=0.0),
            fusion_weight=0.0,
            refine_red=False,
        )
        key = (0, Approach.EW)
        est = identify_light(partitions[key], 5400.0, config=cfg)
        assert est.schedule.cycle_s > 0


class TestMeasuredInterval:
    def test_in_plausible_range(self, partitions):
        for p in partitions.values():
            iv = measured_mean_interval(p)
            assert 5.0 <= iv <= 60.0

    def test_fallback_on_empty(self, partitions):
        p = next(iter(partitions.values())).time_window(0.0, 1.0)
        assert measured_mean_interval(p, default_s=20.14) == 20.14


class TestIdentifyMany:
    def test_estimates_for_every_light(self, partitions):
        ests, fails = identify_many(partitions, 5400.0, serial=True)
        assert len(ests) + len(fails) == len(partitions)
        assert len(ests) >= 6

    @pytest.mark.slow
    def test_parallel_equals_serial(self, partitions):
        serial, _ = identify_many(partitions, 5400.0, serial=True)
        parallel, _ = identify_many(partitions, 5400.0, max_workers=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].cycle_s == pytest.approx(parallel[key].cycle_s)
            assert serial[key].red_s == pytest.approx(parallel[key].red_s)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(window_s=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(phase_window_s=-5.0)


class TestNoSharedDefaultConfig:
    """Regression: ``config=PipelineConfig()`` *in the signature* is one
    shared instance for every call — mutating it (even through
    ``object.__setattr__`` on the frozen dataclass) would leak into all
    later calls.  The defaults must be constructed per call.
    """

    def test_signature_defaults_are_none(self):
        import inspect

        from repro.core.cycle import identify_cycle, identify_cycle_from_samples
        from repro.eval.harness import evaluate_at_times, simulate_and_partition

        for fn, name in [
            (identify_light, "config"),
            (identify_many, "config"),
            (identify_cycle, "config"),
            (identify_cycle_from_samples, "config"),
            (evaluate_at_times, "config"),
            (simulate_and_partition, "match_config"),
        ]:
            default = inspect.signature(fn).parameters[name].default
            assert default is None, (
                f"{fn.__name__}({name}=...) must default to None, "
                f"not a shared instance"
            )

    def test_mutated_config_cannot_leak_between_calls(self, partitions):
        key = sorted(partitions)[0]
        ref = identify_many(partitions, 5400.0, serial=True)

        # a caller passes (and then corrupts) its own config ...
        cfg = PipelineConfig()
        identify_many({key: partitions[key]}, 5400.0, serial=True, config=cfg)
        object.__setattr__(cfg, "window_s", 1.0)
        object.__setattr__(cfg, "use_enhancement", False)

        # ... later default-config calls must be unaffected
        out = identify_many(partitions, 5400.0, serial=True)
        assert sorted(out[0]) == sorted(ref[0])
        assert sorted(out[1]) == sorted(ref[1])
        for k in ref[0]:
            assert out[0][k].cycle_s == ref[0][k].cycle_s
            assert out[0][k].red_s == ref[0][k].red_s
