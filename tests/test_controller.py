"""Unit tests for repro.lights.controller."""

import pytest

from repro.lights.controller import (
    SECONDS_PER_DAY,
    ManualController,
    PlanSwitch,
    PreProgrammedController,
    StaticController,
)
from repro.lights.schedule import LightSchedule, Phase


OFFPEAK = LightSchedule(90, 40, 0)
PEAK = LightSchedule(140, 70, 0)


class TestStatic:
    def test_same_schedule_forever(self):
        c = StaticController(OFFPEAK)
        assert c.schedule_at(0.0) is OFFPEAK
        assert c.schedule_at(1e7) is OFFPEAK

    def test_no_plan_switches(self):
        c = StaticController(OFFPEAK)
        assert c.plan_switch_times(0.0, 10 * SECONDS_PER_DAY) == []

    def test_phase_delegation(self):
        c = StaticController(LightSchedule(100, 40, 0))
        assert c.is_red(10.0) and c.phase(10.0) == Phase.RED
        assert c.is_green(50.0)
        assert c.wait_if_arriving(10.0) == pytest.approx(30.0)


class TestPreProgrammed:
    def make(self):
        return PreProgrammedController(
            [
                PlanSwitch(7 * 3600.0, PEAK),      # 07:00 peak
                PlanSwitch(10 * 3600.0, OFFPEAK),  # 10:00 off-peak
            ]
        )

    def test_plan_by_time_of_day(self):
        c = self.make()
        assert c.schedule_at(8 * 3600.0) is PEAK
        assert c.schedule_at(12 * 3600.0) is OFFPEAK

    def test_wraps_before_first_switch(self):
        c = self.make()
        # 02:00 precedes the first switch -> last plan of the day applies
        assert c.schedule_at(2 * 3600.0) is OFFPEAK

    def test_repeats_daily(self):
        c = self.make()
        t = 8 * 3600.0
        assert c.schedule_at(t + 3 * SECONDS_PER_DAY) is PEAK

    def test_plan_switch_times(self):
        c = self.make()
        times = c.plan_switch_times(0.0, 2 * SECONDS_PER_DAY)
        assert times == [
            7 * 3600.0,
            10 * 3600.0,
            SECONDS_PER_DAY + 7 * 3600.0,
            SECONDS_PER_DAY + 10 * 3600.0,
        ]

    def test_single_plan_has_no_switches(self):
        c = PreProgrammedController([PlanSwitch(0.0, OFFPEAK)])
        assert c.plan_switch_times(0.0, SECONDS_PER_DAY) == []

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PreProgrammedController([])

    def test_rejects_duplicate_starts(self):
        with pytest.raises(ValueError):
            PreProgrammedController(
                [PlanSwitch(0.0, PEAK), PlanSwitch(0.0, OFFPEAK)]
            )

    def test_rejects_out_of_day_start(self):
        with pytest.raises(ValueError):
            PlanSwitch(SECONDS_PER_DAY + 1, PEAK)


class TestManual:
    def test_override_window(self):
        base = StaticController(OFFPEAK)
        c = ManualController(base, [(100.0, 200.0, PEAK)])
        assert c.schedule_at(50.0) is OFFPEAK
        assert c.schedule_at(150.0) is PEAK
        assert c.schedule_at(200.0) is OFFPEAK  # end exclusive

    def test_switch_times_include_override_edges(self):
        base = StaticController(OFFPEAK)
        c = ManualController(base, [(100.0, 200.0, PEAK)])
        assert c.plan_switch_times(0.0, 300.0) == [100.0, 200.0]

    def test_rejects_overlapping_overrides(self):
        base = StaticController(OFFPEAK)
        with pytest.raises(ValueError):
            ManualController(base, [(0.0, 100.0, PEAK), (50.0, 150.0, PEAK)])

    def test_rejects_inverted_window(self):
        base = StaticController(OFFPEAK)
        with pytest.raises(ValueError):
            ManualController(base, [(100.0, 100.0, PEAK)])

    def test_base_switches_merged(self):
        base = PreProgrammedController(
            [PlanSwitch(7 * 3600.0, PEAK), PlanSwitch(10 * 3600.0, OFFPEAK)]
        )
        c = ManualController(base, [(3600.0, 7200.0, PEAK)])
        times = c.plan_switch_times(0.0, SECONDS_PER_DAY)
        assert times == [3600.0, 7200.0, 7 * 3600.0, 10 * 3600.0]
