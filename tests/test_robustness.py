"""Failure injection and robustness tests.

The paper's raw feed contains packet loss, duplicated reports, GPS
dropouts and outliers; a production pipeline must shrug these off
rather than crash or silently corrupt estimates.
"""

import numpy as np
import pytest

from repro.core import (
    InsufficientDataError,
    PipelineConfig,
    identify_light,
    identify_many,
)
from repro.core.interpolation import regularize
from repro.matching import MatchConfig, match_trace, partition_by_light
from repro.matching.partition import LightPartition
from repro.trace.records import TraceArrays


def corrupt(trace: TraceArrays, rng, *, dup_frac=0.1, jitter_frac=0.1,
            dropout_frac=0.1) -> TraceArrays:
    """Inject duplicates, GPS dropouts, and wild outlier positions."""
    n = len(trace)
    # duplicated reports (same taxi re-sends the same fix)
    dup_idx = rng.choice(n, int(dup_frac * n), replace=False)
    dup = trace.subset(dup_idx)

    out = TraceArrays.concat([trace, dup])
    m = len(out)
    # GPS dropouts: flag a slice unavailable
    bad = rng.choice(m, int(dropout_frac * m), replace=False)
    out.gps_ok[bad] = False
    # wild outliers: teleport some fixes kilometers away
    wild = rng.choice(m, int(jitter_frac * m), replace=False)
    out.lon[wild] += rng.normal(0.0, 0.05, wild.size)
    out.lat[wild] += rng.normal(0.0, 0.05, wild.size)
    return out.sorted_by_time()


class TestCorruptedTraces:
    def test_pipeline_survives_corruption(self, city, trace, rng):
        dirty = corrupt(trace, rng)
        matched = match_trace(dirty, city.net)
        parts = partition_by_light(matched, city.net)
        assert parts, "partitions must survive corruption"
        ests, fails = identify_many(parts, 5400.0, serial=True)
        assert ests, "identification must survive corruption"
        # accuracy should degrade gracefully, not collapse
        good = sum(1 for e in ests.values() if abs(e.cycle_s - 98.0) <= 3.0)
        assert good >= len(ests) // 2

    def test_unavailable_gps_never_matched(self, city, trace, rng):
        dirty = corrupt(trace, rng, dropout_frac=1.0)
        matched = match_trace(dirty, city.net)
        assert len(matched.trace) == 0  # every record flagged bad

    def test_teleported_fixes_unmatched(self, city, trace):
        far = trace.subset(np.arange(min(100, len(trace))))
        far.lon[:] += 1.0  # ~100 km away
        matched = match_trace(far, city.net, MatchConfig())
        assert (matched.segment_id == -1).all()


class TestDegenerateInputs:
    def test_identify_empty_partition(self, partitions):
        p = next(iter(partitions.values()))
        empty = p.time_window(1e9, 1e9 + 1)
        with pytest.raises(InsufficientDataError):
            identify_light(empty, 1e9 + 1)

    def test_identify_single_taxi_single_report(self, partitions):
        p = next(iter(partitions.values()))
        one = LightPartition(
            p.intersection_id, p.approach,
            p.trace.subset([0]), p.segment_id[:1], p.dist_to_stopline_m[:1],
        )
        with pytest.raises(InsufficientDataError):
            identify_light(one, float(one.trace.t[0]) + 1800.0)

    def test_constant_speed_partition(self, partitions):
        """All-identical speeds carry no periodicity: must raise or
        produce a finite estimate, never crash or loop."""
        p = next(iter(partitions.values()))
        # subset with a fancy index, not slice(None): slicing returns
        # *views*, and writing through them would corrupt the shared
        # session fixture for every later test
        frozen = LightPartition(
            p.intersection_id, p.approach,
            p.trace.subset(np.arange(len(p.trace))), p.segment_id.copy(),
            p.dist_to_stopline_m.copy(),
        )
        frozen.trace.speed_kmh[:] = 25.0
        try:
            est = identify_light(frozen, 5400.0)
            assert np.isfinite(est.cycle_s)
        except InsufficientDataError:
            pass

    def test_regularize_with_identical_timestamps(self):
        t = np.full(50, 100.0)
        v = np.arange(50.0)
        with pytest.raises(InsufficientDataError):
            regularize(t, v, 0.0, 1800.0)

    def test_nonfinite_speeds_rejected_upstream(self):
        with pytest.raises(ValueError):
            TraceArrays(
                taxi_id=[1], t=[0.0], lon=[[114.0]], lat=[22.5], speed_kmh=[1.0]
            )


class TestClockAnomalies:
    def test_out_of_order_reports_tolerated(self, city, trace, rng):
        shuffled = trace.subset(rng.permutation(len(trace)))
        parts = partition_by_light(match_trace(shuffled, city.net), city.net)
        for p in parts.values():
            assert np.all(np.diff(p.trace.t) >= 0), "partitions must re-sort"

    def test_future_timestamps_isolated(self, city, trace):
        warped = trace.subset(np.arange(len(trace)))
        k = len(warped) // 100
        warped.t[:k] += 1e7  # a batch of far-future records
        parts = partition_by_light(match_trace(warped, city.net), city.net)
        ests, _ = identify_many(parts, 5400.0, serial=True)
        good = sum(1 for e in ests.values() if abs(e.cycle_s - 98.0) <= 3.0)
        assert good >= len(ests) // 2
