"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        a = build_parser().parse_args(
            ["simulate", "--scenario", "small", "--hours", "0.5", "--out", "/tmp/x"]
        )
        assert a.command == "simulate" and a.hours == 0.5

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


@pytest.fixture(scope="module")
def city_prefix(tmp_path_factory):
    prefix = str(tmp_path_factory.mktemp("cli") / "city")
    rc = main(["simulate", "--scenario", "small", "--hours", "1.0",
               "--seed", "3", "--out", prefix])
    assert rc == 0
    return prefix


class TestPipelineCommands:
    def test_simulate_outputs(self, city_prefix):
        assert os.path.exists(f"{city_prefix}.trace.txt")
        assert os.path.exists(f"{city_prefix}.net.json")
        assert os.path.getsize(f"{city_prefix}.trace.txt") > 10_000

    def test_stats(self, city_prefix, capsys):
        rc = main(["stats", f"{city_prefix}.trace.txt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "update interval" in out
        assert "stationary" in out

    def test_identify_with_truth(self, city_prefix, capsys):
        rc = main(["identify", "--city", city_prefix, "--at", "3600",
                   "--serial"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dCycle" in out  # ground truth present -> scored output
        assert "cycle" in out

    def test_identify_writes_report(self, city_prefix, capsys, tmp_path):
        import json

        path = str(tmp_path / "report.json")
        rc = main(["identify", "--city", city_prefix, "--at", "3600",
                   "--serial", "--report", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote run report" in out
        doc = json.loads(open(path).read())
        assert doc["schema"] == "repro.run_report/v1"
        assert doc["lights"]["total"] > 0
        assert doc["stages"]  # per-stage wall times present
        assert doc["counters"]["samples_primary"] > 0

    def test_navigate(self, capsys):
        rc = main(["navigate", "--cols", "4", "--rows", "4", "--trips", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall saving" in out


class TestEvaluateCommand:
    def test_evaluate(self, city_prefix, capsys):
        rc = main(["evaluate", "--city", city_prefix, "--times", "2700", "3600",
                   "--serial"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle length" in out and "cycle-locked" in out


class TestStreamCommand:
    def test_stream_replay(self, city_prefix, capsys, tmp_path):
        import json

        path = str(tmp_path / "stream_report.json")
        rc = main(["stream", "--city", city_prefix, "--chunk", "900",
                   "--report", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "chunk   0" in out
        assert "final estimates" in out
        assert "true cycle" in out  # ground truth present -> scored output
        doc = json.loads(open(path).read())
        assert doc["schema"] == "repro.run_report/v1"
        assert len(doc["chunks"]) >= 3
        assert sum(c["n_records"] for c in doc["chunks"]) > 0

    def test_stream_backend_flag_on_identify(self, city_prefix, capsys):
        rc = main(["identify", "--city", city_prefix, "--at", "3600",
                   "--backend", "stream"])
        assert rc == 0
        assert "cycle" in capsys.readouterr().out


class TestServeBenchCommand:
    def test_serve_bench_meets_slo(self, capsys, tmp_path):
        import json

        json_path = str(tmp_path / "serve.json")
        report_path = str(tmp_path / "serve_report.json")
        rc = main(["serve-bench", "--tenants", "2", "--chunks", "3",
                   "--intersections", "1", "--evaluates-per-chunk", "2",
                   "--json", json_path, "--report", report_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLOs met" in out
        assert "0 stale, 0 torn, 0 parity mismatches" in out
        doc = json.loads(open(json_path).read())
        assert doc["n_tenants"] == 2
        assert doc["stale_violations"] == 0
        report = json.loads(open(report_path).read())
        assert report["schema"] == "repro.run_report/v1"
        assert len(report["services"]) == 2

    def test_serve_bench_flags_slo_violation(self, capsys):
        rc = main(["serve-bench", "--tenants", "1", "--chunks", "2",
                   "--intersections", "1", "--evaluates-per-chunk", "1",
                   "--p99-slo-ms", "0.000001"])
        assert rc == 1
        assert "SLO FAILED" in capsys.readouterr().out


class TestMonitorCommand:
    def test_monitor(self, city_prefix, capsys):
        rc = main(["monitor", "--city", city_prefix, "--light", "0:NS",
                   "--every", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "windows" in out and "cycle=" in out

    def test_monitor_bad_light(self, city_prefix, capsys):
        assert main(["monitor", "--city", city_prefix, "--light", "zzz"]) == 2
        assert main(["monitor", "--city", city_prefix, "--light", "99:NS"]) == 2
