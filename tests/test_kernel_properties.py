"""Property + bitwise-parity tests for the batched kernels.

Two layers of evidence back the batched backend:

* **mathematical properties** of the underlying statistics — epoch
  folding is invariant to whole-cycle time shifts, the circular moving
  average commutes with circular rolls, and the DFT recovers a square
  wave's period exactly when it divides the window; and
* **bitwise parity** of every vectorized kernel in
  :mod:`repro.core.batch` against its serial counterpart, on randomized
  inputs — the guarantee ``identify_many(backend="batched")`` builds on.
"""

import numpy as np
import pytest

from repro.core.batch import (
    circular_moving_average_batch,
    cycle_profile_batch,
    fold_zscore_grid,
    scan_fold_vec,
    spectra_batch,
)
from repro.core.changepoint import circular_moving_average
from repro.core.cycle import _scan_fold, fold_zscore, spectrum
from repro.core.superposition import cycle_profile


def _samples(rng, n=400, span=3600.0, period=98.0, noise=3.0):
    """Noisy periodic speed samples on a 0.25 s grid (exact arithmetic)."""
    t = np.sort(rng.choice(np.arange(0.0, span, 0.25), size=n, replace=False))
    v = np.clip(
        25.0 + 20.0 * np.cos(2 * np.pi * t / period)
        + rng.normal(0.0, noise, n),
        0.0, None,
    )
    return t, v


class TestFoldShiftInvariance:
    """Folding must not care *where* the window sits on the time axis."""

    def test_whole_cycle_shifts_leave_zscore_unchanged(self):
        rng = np.random.default_rng(0)
        cycle = 96.0  # exactly representable; 0.25 s grid keeps t + k*cycle exact
        t, v = _samples(rng, period=cycle)
        base = fold_zscore(t, v, cycle, 4.0)
        assert np.isfinite(base)
        for k in (1, 3, 17):
            # global shift by k whole cycles
            assert fold_zscore(t + k * cycle, v, cycle, 4.0) == base
        # independent per-sample shifts by whole cycles: the fold stacks
        # every sample into the same in-cycle second regardless.  The
        # earliest sample anchors the fold (t - t.min()), so it keeps
        # shift 0; everything else may jump any whole number of cycles.
        shifts = rng.integers(0, 8, t.shape[0]).astype(float) * cycle
        shifts[0] = 0.0
        assert fold_zscore(t + shifts, v, cycle, 4.0) == base

    def test_grid_kernel_shares_the_invariance(self):
        rng = np.random.default_rng(1)
        cycle = 96.0
        t, v = _samples(rng, period=cycle)
        cycles = np.array([48.0, 96.0, 100.0, 192.0])
        base = fold_zscore_grid(t, v, cycles, 4.0)
        shifted = fold_zscore_grid(t + 5 * 96.0, v, cycles, 4.0)
        # only the commensurate candidates are invariant — which is the point
        assert shifted[1] == base[1]
        assert shifted[0] == base[0]  # 48 divides 96
        assert np.argmax(base) == 1  # true period wins


class TestCircularMovingAverageProperties:
    def test_commutes_with_circular_roll(self):
        rng = np.random.default_rng(2)
        profile = rng.normal(10.0, 4.0, 98)
        for w in (1, 5, 39, 98):
            ref = circular_moving_average(profile, w)
            for s in (1, 17, 49, 97):
                rolled = circular_moving_average(np.roll(profile, s), w)
                np.testing.assert_allclose(
                    rolled, np.roll(ref, s), rtol=0, atol=1e-9
                )

    def test_full_window_is_global_mean(self):
        rng = np.random.default_rng(3)
        profile = rng.normal(0.0, 1.0, 60)
        out = circular_moving_average(profile, 60)
        np.testing.assert_allclose(out, np.full(60, profile.mean()), atol=1e-12)


class TestDftSquareWaveRecovery:
    def test_exact_recovery_over_40_random_draws(self):
        """§V's core claim: the DFT peak sits at the true cycle.

        40 random (cycle, phase, noise) draws; every cycle divides the
        1800 s window so its DFT bin exists exactly — recovery must be
        exact, not approximate, and the whole batch runs through one rfft.
        """
        rng = np.random.default_rng(4)
        n = 1800
        tt = np.arange(n, dtype=float)
        ks = rng.integers(6, 46, size=40)  # cycle = 1800/k in [40, 300] s
        cycles_true = n / ks
        sigs = np.empty((40, n))
        for i, (_k, cyc) in enumerate(zip(ks, cycles_true)):
            phase = rng.uniform(0.0, cyc)
            red_frac = rng.uniform(0.3, 0.6)
            in_red = np.mod(tt + phase, cyc) < red_frac * cyc
            sigs[i] = np.where(in_red, 2.0, 30.0) + rng.normal(
                0.0, rng.uniform(0.1, 1.0), n
            )
        periods, mags = spectra_batch(sigs)
        in_band = (periods >= 40.0) & (periods <= 320.0)
        for i, cyc in enumerate(cycles_true):
            band = np.where(in_band, mags[i], -np.inf)
            assert periods[np.argmax(band)] == cyc, f"draw {i}"


class TestBitwiseKernelParity:
    """Each batched kernel must equal its serial counterpart bit-for-bit."""

    def test_spectra_batch_rows_match_spectrum(self):
        rng = np.random.default_rng(5)
        sigs = rng.normal(20.0, 8.0, (7, 901))
        periods_b, mags_b = spectra_batch(sigs)
        for i in range(7):
            periods_s, mag_s = spectrum(sigs[i])
            np.testing.assert_array_equal(periods_b, periods_s)
            np.testing.assert_array_equal(mags_b[i], mag_s)

    def test_fold_zscore_grid_matches_scalar_kernel(self):
        rng = np.random.default_rng(6)
        t, v = _samples(rng)
        cycles = np.concatenate([
            np.arange(40.0, 320.0, 7.3),
            [97.9, 98.0, 98.1],
        ])
        z = fold_zscore_grid(t, v, cycles, 4.0)
        for j, c in enumerate(cycles):
            assert z[j] == fold_zscore(t, v, float(c), 4.0), c

    @pytest.mark.parametrize("with_ends", [False, True])
    def test_scan_fold_vec_matches_serial_scan(self, with_ends):
        rng = np.random.default_rng(7)
        ends = np.sort(rng.uniform(0.0, 3600.0, 24)) if with_ends else None
        ew = 0.3 if with_ends else 0.0
        for seed in range(6):
            t, v = _samples(np.random.default_rng(100 + seed))
            for args in [
                (98.0, 4.0, 0.5, 4.0, 40.0, 320.0),
                (98.0, 1.5, 0.05, 1.0, 40.0, 320.0),
                (49.0, 2.5, 0.05, 1.0, 40.0, 320.0),  # subharmonic probe
                (41.0, 4.0, 0.5, 4.0, 40.0, 320.0),   # clipped at the band edge
            ]:
                ref = _scan_fold(t, v, *args, ends=ends, end_weight=ew)
                out = scan_fold_vec(t, v, *args, ends=ends, end_weight=ew)
                assert out == ref, (seed, args)

    def test_scan_fold_vec_degenerate_inputs(self):
        t = np.array([0.0, 10.0, 20.0])  # < 4 samples: every z is -inf
        v = np.array([1.0, 2.0, 3.0])
        args = (98.0, 4.0, 0.5, 4.0, 40.0, 320.0)
        assert scan_fold_vec(t, v, *args) == _scan_fold(t, v, *args)
        flat = np.full(50, 7.0)  # zero variance
        tt = np.linspace(0.0, 3000.0, 50)
        assert scan_fold_vec(tt, flat, *args) == _scan_fold(tt, flat, *args)

    def test_cycle_profile_batch_matches_serial(self):
        rng = np.random.default_rng(8)
        entries = []
        for i in range(6):
            t, v = _samples(np.random.default_rng(200 + i), n=300)
            entries.append((t, v, float(rng.uniform(60.0, 130.0)), 3600.0))
        profiles = cycle_profile_batch(entries)
        for (t, v, cyc, anchor), prof in zip(entries, profiles):
            ref = cycle_profile(t, v, cyc, anchor)
            np.testing.assert_array_equal(prof, ref)

    def test_cycle_profile_batch_contains_empty_lights(self):
        t, v = _samples(np.random.default_rng(9), n=200)
        empty = (np.empty(0), np.empty(0), 98.0, 0.0)
        profiles = cycle_profile_batch([(t, v, 98.0, 0.0), empty])
        assert profiles[1] is None  # contained, not raised
        np.testing.assert_array_equal(profiles[0], cycle_profile(t, v, 98.0, 0.0))

    def test_circular_moving_average_batch_matches_serial(self):
        rng = np.random.default_rng(10)
        profiles = [rng.normal(15.0, 5.0, n) for n in (98, 60, 131, 40)]
        windows = [39, 1, 131, 7]  # includes the w == 1 and w == n edges
        outs = circular_moving_average_batch(profiles, windows)
        for p, w, out in zip(profiles, windows, outs):
            np.testing.assert_array_equal(out, circular_moving_average(p, w))

    def test_circular_moving_average_batch_validates_windows(self):
        p = np.ones(10)
        with pytest.raises(ValueError):
            circular_moving_average_batch([p], [0])
        with pytest.raises(ValueError):
            circular_moving_average_batch([p], [11])
